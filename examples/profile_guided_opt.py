#!/usr/bin/env python3
"""Future-work demo: profile-guided optimization from VIProf profiles.

Pass 1 profiles a benchmark with VIProf.  Because VIProf resolves JIT
samples to concrete methods (stock OProfile cannot), the profile directly
yields the hot-method set.  Pass 2 reruns the benchmark with an adaptive
system that compiles those methods at a high optimization tier on their
*first* invocation, skipping the warm-up ladder.  Same work budget, more
transactions — the feedback loop the paper's §5 proposes.

Usage::

    python examples/profile_guided_opt.py [--benchmark ps] [--scale 0.5]
"""

import argparse

from repro.jvm.compiler import CompilerTier
from repro.pgo import run_pgo_experiment
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="ps")
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--tier", choices=["O1", "O2"], default="O1")
    args = ap.parse_args()

    tier = CompilerTier.OPT2 if args.tier == "O2" else CompilerTier.OPT1
    result = run_pgo_experiment(
        lambda: by_name(args.benchmark),
        time_scale=args.scale,
        direct_tier=tier,
    )

    print(result.format_summary())
    print(f"compilation events: {result.baseline_compilations} (ladder) -> "
          f"{result.guided_compilations} (guided)")
    gain = 100 * (result.throughput_gain - 1)
    print(f"\nSame workload-cycle budget, {gain:+.1f}% application "
          f"throughput: hot methods ran {tier.label}-quality code from "
          f"their first invocation.")


if __name__ == "__main__":
    main()
