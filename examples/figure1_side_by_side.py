#!/usr/bin/env python3
"""Reproduce the paper's Figure 1: VIProf vs stock OProfile on DaCapo ps.

The same workload is run twice, once per profiler, with identical seeds.
VIProf (top) attributes every sample — JIT application methods appear under
``JIT.App`` and Jikes RVM internals under ``RVM.map``.  Stock OProfile
(bottom) shows the identical execution as anonymous memory ranges and an
unsymbolized boot image, which is the limitation the paper sets out to fix.

Usage::

    python examples/figure1_side_by_side.py [--scale 0.5]
"""

import argparse

from repro.system.experiment import run_case_study


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="ps")
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--rows", type=int, default=14)
    args = ap.parse_args()

    result = run_case_study(
        args.benchmark, time_scale=args.scale, limit=args.rows
    )
    print(result.side_by_side())

    v = result.viprof_run
    o = result.oprofile_run
    print(f"\nVIProf logged {v.daemon_stats.samples_logged} samples "
          f"({v.daemon_stats.jit_samples} via the JIT fast path); "
          f"OProfile logged {o.daemon_stats.samples_logged} "
          f"({o.daemon_stats.anon_samples} through the anonymous path).")


if __name__ == "__main__":
    main()
