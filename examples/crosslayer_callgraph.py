#!/usr/bin/env python3
"""Cross-layer call-graph profiling.

The paper (§4.2) notes that VIProf "extends the call graph functionality of
Oprofile to include call sequence profiles across layers" but omits the
results for brevity.  This example shows what that capability produces: the
arcs whose endpoints sit in *different* vertical layers — JIT application
code calling into libc, the VM dispatching into JIT code, GC work invoked
on behalf of allocating application methods.  A single-layer profiler
cannot observe any of these.

Usage::

    python examples/crosslayer_callgraph.py [--scale 0.3]
"""

import argparse

from repro import viprof_profile
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="pseudojbb")
    ap.add_argument("--scale", type=float, default=0.3)
    args = ap.parse_args()

    result = viprof_profile(
        by_name(args.benchmark),
        period=45_000,
        time_scale=args.scale,
        record_callgraph=True,
    )
    graph = result.callgraph
    assert graph is not None
    event = "GLOBAL_POWER_EVENTS"

    print("=== Cross-layer call arcs (time samples) ===")
    print(graph.format_cross_layer_table(event, limit=15))

    print("\n=== Layer transition matrix ===")
    matrix = graph.layer_transition_matrix(event)
    for (l_from, l_to), n in sorted(matrix.items(), key=lambda kv: -kv[1]):
        print(f"{l_from.value:>8} -> {l_to.value:<8} {n:6d} samples")


if __name__ == "__main__":
    main()
