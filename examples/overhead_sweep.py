#!/usr/bin/env python3
"""Reproduce the paper's Figure 2/3: overhead sweep over the full suite.

Runs every benchmark unprofiled (Figure 3 base times), then under OProfile
at the 90 K period and VIProf at 45 K / 90 K / 450 K (Figure 2), and prints
both tables plus the §4.3 headline numbers.

Full scale takes a minute or two; pass ``--scale 0.1`` for a quick look.

Usage::

    python examples/overhead_sweep.py [--scale 1.0] [--benchmarks ps antlr]
"""

import argparse

from repro.system.experiment import run_overhead_matrix
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--benchmarks", nargs="*", default=None,
                    help="subset of benchmark names (default: full suite)")
    args = ap.parse_args()

    workloads = (
        [by_name(n) for n in args.benchmarks] if args.benchmarks else None
    )
    matrix = run_overhead_matrix(workloads, time_scale=args.scale)

    print("=== Figure 2: normalized slowdown ===")
    print(matrix.format_figure2())
    print("\n=== Figure 3: base execution times ===")
    print(matrix.format_figure3())

    avg_o = matrix.average_slowdown("oprofile", 90_000)
    avg_v = matrix.average_slowdown("viprof", 90_000)
    print(f"\nOProfile @90K average slowdown: {100 * (avg_o - 1):.1f}%")
    print(f"VIProf   @90K average slowdown: {100 * (avg_v - 1):.1f}%")
    v90 = matrix.slowdowns("viprof", 90_000)
    over10 = [n for n, s in v90.items() if s >= 1.10]
    under5 = [n for n, s in v90.items() if s < 1.05]
    print(f"Above 10% at 90K: {over10 or 'none'}")
    print(f"Below  5% at 90K: {under5 or 'none'}")


if __name__ == "__main__":
    main()
