#!/usr/bin/env python3
"""Future-work demo: profiling multiple virtualized stacks (XenoProf).

Two complete guest stacks — each with its own kernel, Jikes-RVM-like VM,
heap, code maps, and workload — run time-sliced over one CPU under a
Xen-like hypervisor.  XenoProf owns the hardware counters and tags every
sample with the running domain, so post-processing produces:

* a per-domain vertically integrated profile (kernel → VM → JIT code of
  that one guest), and
* one unified horizontal+vertical profile of the whole physical machine,
  hypervisor included.

This is the system the paper's §5 sketches as future work.

Usage::

    python examples/multistack_xen.py [--scale 0.3]
"""

import argparse

from repro.workloads import by_name
from repro.xen import GuestSpec, MultiStackEngine


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.3)
    ap.add_argument("--period", type=int, default=45_000)
    args = ap.parse_args()

    engine = MultiStackEngine(
        [
            GuestSpec(by_name("fop"), weight=256),
            GuestSpec(by_name("ps"), weight=512),  # double CPU share
        ],
        period=args.period,
        time_scale=args.scale,
    )
    result = engine.run()

    print(f"Simulated {result.wall_cycles:,} cycles; "
          f"{result.hypervisor.world_switches} world switches; "
          f"{len(result.buffer)} samples "
          f"({100 * result.xen_share():.2f}% in the hypervisor)\n")

    for dom in result.hypervisor.domains:
        print(f"=== Domain {dom.domain_id} ({dom.name}), "
              f"{dom.cpu_cycles:,} cycles ===")
        print(result.domain_report(dom.domain_id).format_table(limit=6))
        print()

    print("=== Unified cross-stack profile ===")
    print(result.unified_report().format_table(limit=14))


if __name__ == "__main__":
    main()
