#!/usr/bin/env python3
"""Analysis workflows on top of VIProf profiles.

A vertically integrated profile is the *input* to the paper's long-term
goal (online adaptation).  This example walks the toolbox end to end on
one benchmark:

1. profile two configurations and **archive** the sessions (oparchive);
2. **diff** them — which methods' shares moved;
3. **annotate** the hottest JIT method at bytecode granularity;
4. build a **timeline** and detect phase transitions;
5. **export** the profile as CSV for external tools.

Usage::

    python examples/analysis_workflows.py [--benchmark pmd] [--scale 0.3]
"""

import argparse
import tempfile
from pathlib import Path

from repro import viprof_profile
from repro.analysis.timeline import build_timeline
from repro.oprofile.archive import SessionStore
from repro.profiling.export import report_to_csv
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="pmd")
    ap.add_argument("--scale", type=float, default=0.3)
    args = ap.parse_args()

    store = SessionStore(Path(tempfile.mkdtemp(prefix="viprof-sessions-")))

    # 1. Two configurations, archived.
    dense = viprof_profile(
        by_name(args.benchmark), period=45_000, time_scale=args.scale
    )
    sparse = viprof_profile(
        by_name(args.benchmark), period=90_000, time_scale=args.scale, seed=11
    )
    store.archive(dense, "dense")
    store.archive(sparse, "sparse")
    print(f"archived sessions: {[s.label for s in store.sessions()]} "
          f"under {store.root}\n")

    # 2. Cross-session diff.
    diff = store.diff("dense", "sparse")
    print("=== top share movements (dense -> sparse) ===")
    print(diff.format_table(limit=8))

    # 3. Bytecode-level annotation of the hottest JIT method.
    vr = dense.viprof_report()
    hot = next(r for r in vr.report.sorted_rows() if r.image == "JIT.App")
    ann = vr.post.annotate_jit(hot.symbol, bucket_bytes=64)
    print(f"\n=== inside {hot.symbol} ===")
    print(ann.format_table(limit=8))

    # 4. Phase timeline.
    resolved = [vr.post.resolve(s) for s in vr.post.read_samples()]
    tl = build_timeline(resolved, window_cycles=dense.wall_cycles // 10 or 1)
    print("\n=== phase timeline (10 windows) ===")
    print(tl.format_table(top=1))
    print(f"transitions at windows: {tl.transitions() or 'none'}")

    # 5. CSV export.
    csv_text = report_to_csv(vr.report)
    out = store.root / "dense.csv"
    out.write_text(csv_text)
    print(f"\nCSV export: {out} ({len(csv_text.splitlines())} rows)")


if __name__ == "__main__":
    main()
