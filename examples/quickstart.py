#!/usr/bin/env python3
"""Quickstart: profile one benchmark with VIProf and read the profile.

Runs DaCapo ``ps`` (the paper's Figure 1 case study) under the simulated
full system with VIProf attached, then prints:

1. the vertically integrated symbol profile (JIT methods, VM internals,
   native libraries, kernel — all in one listing);
2. how the JIT samples were resolved through the epoch code maps;
3. the same run's ground truth, so you can see the profile is *right*.

Usage::

    python examples/quickstart.py [--scale 0.25] [--period 90000]
"""

import argparse

from repro import viprof_profile
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="ps", help="benchmark name")
    ap.add_argument("--scale", type=float, default=0.25,
                    help="fraction of the paper-scale run length")
    ap.add_argument("--period", type=int, default=90_000,
                    help="sampling period in cycles")
    args = ap.parse_args()

    workload = by_name(args.benchmark)
    print(f"Profiling {workload.name} "
          f"({workload.base_time_s:.1f}s nominal, scale {args.scale}) "
          f"with VIProf @ 1/{args.period} cycles ...\n")

    result = viprof_profile(workload, period=args.period,
                            time_scale=args.scale)

    vr = result.viprof_report()
    print("=== VIProf profile (top 15) ===")
    print(vr.report.format_table(limit=15))

    stats = vr.jit_stats
    print(f"\nJIT sample resolution: {stats.jit_samples} samples, "
          f"{100 * stats.resolution_rate:.1f}% resolved "
          f"({stats.resolved_in_own_epoch} in their own epoch, "
          f"{stats.resolved_in_earlier_epoch} via backward traversal)")

    print(f"\nRun: {result.seconds:.2f}s simulated wall time, "
          f"{result.gc_stats.collections} GCs, "
          f"{result.vm_stats.compilations} compilations, "
          f"{result.agent_stats.maps_written} code maps written")

    print("\n=== Simulator ground truth (top 10, for comparison) ===")
    print(result.ledger.format_table(limit=10))


if __name__ == "__main__":
    main()
