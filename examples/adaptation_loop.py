#!/usr/bin/env python3
"""The VIVA loop, end to end: observe -> detect -> re-optimize.

The paper builds VIProf as "a first step toward enabling dynamic
customization": profiles that are accurate enough, cheap enough, and
*vertically resolved* enough to drive optimization decisions while the
system runs.  This example closes that loop with the pieces in this
repository:

1. **Observe** — profile a phased workload with VIProf;
2. **Detect**  — build a timeline from the samples and find the phase
   transitions (possible only because JIT samples resolve to methods);
3. **Decide**  — extract each phase's hot-method set from its window;
4. **Act**     — rerun with a profile-guided adaptive system that
   compiles the union of per-phase hot sets at a high tier immediately,
   and measure the throughput gain.

Usage::

    python examples/adaptation_loop.py [--benchmark xalan] [--scale 0.4]
"""

import argparse

from repro import viprof_profile
from repro.analysis.timeline import build_timeline
from repro.jvm.compiler import CompilerTier
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.pgo.guided import PgoAdaptiveSystem
from repro.system.api import base_run
from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine
from repro.workloads import by_name


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--benchmark", default="xalan")
    ap.add_argument("--scale", type=float, default=0.4)
    args = ap.parse_args()

    # 1. Observe.
    print(f"[1/4] profiling {args.benchmark} with VIProf ...")
    prof = viprof_profile(
        by_name(args.benchmark), period=45_000, time_scale=args.scale,
        noise=False,
    )
    post = prof.viprof_report().post
    resolved = [post.resolve(s) for s in post.read_samples()]

    # 2. Detect phases.
    window = max(1, prof.wall_cycles // 12)
    tl = build_timeline(resolved, window_cycles=window)
    transitions = tl.transitions(min_divergence=0.35)
    print(f"[2/4] {len(tl.windows)} windows, "
          f"phase transitions at {transitions or 'none'}")

    # 3. Per-phase hot sets (union across phases).
    hot: set[str] = set()
    for w in tl.windows:
        for (image, symbol), n in w.counts.items():
            if image == JIT_APP_IMAGE_LABEL and n / max(1, w.total) >= 0.05:
                hot.add(symbol)
    print(f"[3/4] union of per-phase hot sets: {len(hot)} methods")

    # 4. Act: guided rerun vs plain baseline, same work budget.
    baseline = base_run(
        by_name(args.benchmark), time_scale=args.scale, noise=False
    )
    cfg = EngineConfig(
        mode=ProfilerMode.NONE, time_scale=args.scale, noise=False,
        adaptive_factory=lambda: PgoAdaptiveSystem(
            hot_names=frozenset(hot), direct_tier=CompilerTier.OPT1
        ),
    )
    guided = SystemEngine(by_name(args.benchmark), cfg).run()

    gain = guided.vm_stats.invocations / max(1, baseline.vm_stats.invocations)
    print(f"[4/4] throughput: {baseline.vm_stats.invocations} -> "
          f"{guided.vm_stats.invocations} invocations "
          f"({100 * (gain - 1):+.1f}%) at equal workload-cycle budget")
    print(f"      compilations: {baseline.vm_stats.compilations} -> "
          f"{guided.vm_stats.compilations}")


if __name__ == "__main__":
    main()
