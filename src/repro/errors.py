"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the more
specific subclasses below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "HardwareError",
    "CounterError",
    "AddressSpaceError",
    "LoaderError",
    "SymbolError",
    "JvmError",
    "HeapExhaustedError",
    "CompilationError",
    "ProfilerError",
    "SampleFormatError",
    "CodeMapError",
    "ArenaError",
    "WorkloadError",
    "StatCheckError",
    "AnalysisError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value (bad sampling period, cache geometry, ...)."""


class HardwareError(ReproError):
    """Base class for simulated-hardware failures."""


class CounterError(HardwareError):
    """Invalid hardware-performance-counter operation or programming."""


class AddressSpaceError(ReproError):
    """Virtual-memory-area conflicts or unmapped-address lookups."""


class LoaderError(ReproError):
    """Program/image loading failure (overlap, exhausted layout region)."""


class SymbolError(ReproError):
    """Symbol-table construction or lookup failure."""


class JvmError(ReproError):
    """Base class for JVM substrate failures."""


class HeapExhaustedError(JvmError):
    """The JVM heap cannot satisfy an allocation even after collection."""


class CompilationError(JvmError):
    """JIT compilation was asked to do something inconsistent."""


class ProfilerError(ReproError):
    """Base class for OProfile/VIProf failures."""


class SampleFormatError(ProfilerError):
    """A sample file is truncated, corrupt, or has a bad magic/version."""


class CodeMapError(ProfilerError):
    """Code-map file inconsistency (bad epoch ordering, overlap, ...)."""


class ArenaError(CodeMapError):
    """A compiled code-map arena is unusable: missing, torn, checksum-
    mismatched, or stale against its source maps.  Always recoverable —
    callers degrade to text-map parsing (:mod:`repro.viprof.arena`)."""


class WorkloadError(ReproError):
    """Unknown benchmark name or invalid workload specification."""


class StatCheckError(ReproError):
    """Static artifact/source analysis could not run (bad session dir,
    unreadable artifact, unknown rule id, ...).  Findings are *results*,
    not errors; this is raised only when the analyzer itself fails."""


class AnalysisError(ReproError):
    """Session-summary or analyze-layer failure: malformed summary JSON,
    unsupported schema version, incomparable summaries, or a bad panel/
    threshold configuration (:mod:`repro.metrics`)."""


class InjectedFault(ReproError):
    """A deterministic crash raised by an armed fault plan
    (:mod:`repro.faults`).  Simulates the process dying at a named
    failure point: whatever damage the point's effect wrote to disk is
    exactly what a real crash there would have left behind.  Never raised
    unless a test armed the injector."""

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(
            f"injected fault at {point!r} (hit #{hit})"
        )
        self.point = point
        self.hit = hit
