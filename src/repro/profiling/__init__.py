"""Shared profiling data model and report machinery.

Used by both the OProfile baseline and VIProf:

* :mod:`repro.profiling.model` — raw samples, resolved samples, layers, and
  ground-truth labels;
* :mod:`repro.profiling.record_codec` — the versioned header/record codec
  registry behind every packed sample file (core and domain-tagged);
* :mod:`repro.profiling.samplefile` — the core ``VPRS`` on-disk sample
  format the daemon writes and the post-processors read;
* :mod:`repro.profiling.report` — streaming aggregation into per-symbol
  rows and the opreport-style table formatter.
"""

from repro.profiling.model import (
    Layer,
    RawSample,
    ResolvedSample,
    TruthLabel,
)
from repro.profiling.record_codec import (
    RecordCodec,
    RecordFileReader,
    RecordFileWriter,
    SampleRecord,
    codec_for_magic,
    open_sample_record_file,
    register_codec,
)
from repro.profiling.samplefile import SampleFileReader, SampleFileWriter
from repro.profiling.report import (
    ProfileReport,
    StreamingAggregator,
    SymbolRow,
    build_report,
)
from repro.profiling.annotate import SymbolAnnotation, annotate_symbol
from repro.profiling.diff import ProfileDiff, diff_reports
from repro.profiling.export import report_to_csv, report_to_json, report_to_xml

__all__ = [
    "Layer",
    "RawSample",
    "ResolvedSample",
    "TruthLabel",
    "RecordCodec",
    "RecordFileReader",
    "RecordFileWriter",
    "SampleRecord",
    "codec_for_magic",
    "open_sample_record_file",
    "register_codec",
    "SampleFileReader",
    "SampleFileWriter",
    "ProfileReport",
    "StreamingAggregator",
    "SymbolRow",
    "build_report",
    "SymbolAnnotation",
    "annotate_symbol",
    "ProfileDiff",
    "diff_reports",
    "report_to_csv",
    "report_to_json",
    "report_to_xml",
]
