"""Profile differencing.

OProfile ships session management precisely so profiles can be compared
across runs; VIProf makes that comparison *meaningful* for JVM workloads
because JIT methods keep their names across runs even though their
addresses never repeat.  :func:`diff_reports` aligns two reports by
(image, symbol) and reports share deltas — the raw material for regression
hunting and for the paper's adaptation loop (did the optimization move the
bottleneck?).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.metrics.analyze import SymbolDelta, align_shares
from repro.profiling.report import ProfileReport

__all__ = ["DiffRow", "ProfileDiff", "diff_reports"]

#: The aligned-row type is the unified model's
#: :class:`~repro.metrics.analyze.SymbolDelta` — ``diff`` rows and
#: ``analyze`` rows are the same shape by construction.
DiffRow = SymbolDelta


@dataclass
class ProfileDiff:
    """All aligned rows plus convenience selectors."""

    event: str
    rows: list[DiffRow]

    def sorted_by_delta(self) -> list[DiffRow]:
        return sorted(self.rows, key=lambda r: (-abs(r.delta), r.image, r.symbol))

    def regressions(self, min_delta: float = 0.5) -> list[DiffRow]:
        """Symbols whose share *grew* by at least ``min_delta`` points."""
        return [r for r in self.sorted_by_delta() if r.delta >= min_delta]

    def improvements(self, min_delta: float = 0.5) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.delta <= -min_delta]

    def appeared(self) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.appeared]

    def vanished(self) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.vanished]

    def format_table(self, limit: int = 15) -> str:
        lines = [
            f"{'before %':>9} {'after %':>9} {'delta':>8}  image : symbol "
            f"({self.event})"
        ]
        for r in self.sorted_by_delta()[:limit]:
            lines.append(
                f"{r.before_pct:9.3f} {r.after_pct:9.3f} {r.delta:+8.3f}  "
                f"{r.image} : {r.symbol}"
            )
        return "\n".join(lines)


def diff_reports(
    before: ProfileReport,
    after: ProfileReport,
    event: str | None = None,
) -> ProfileDiff:
    """Align two reports on (image, symbol) and compute share deltas.

    Args:
        before / after: the two profiles (typically same workload, two
            configurations or two code versions).
        event: which event's shares to compare; defaults to the first
            event both reports carry.

    Raises:
        ConfigError: when the reports share no event.
    """
    if event is None:
        common = [e for e in before.events if e in after.events]
        if not common:
            raise ConfigError("reports share no event to compare")
        event = common[0]
    if event not in before.events or event not in after.events:
        raise ConfigError(f"event {event!r} missing from one report")

    def shares(report: ProfileReport) -> dict[tuple[str, str], float]:
        # Unlike SessionSummary.symbol_shares this keeps zero-count rows,
        # preserving the historical row set (a 0 -> 0 pair still lists).
        return {
            (r.image, r.symbol): report.percent(r, event) for r in report.rows
        }

    rows = align_shares(shares(before), shares(after))
    return ProfileDiff(event=event, rows=rows)
