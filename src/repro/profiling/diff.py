"""Profile differencing.

OProfile ships session management precisely so profiles can be compared
across runs; VIProf makes that comparison *meaningful* for JVM workloads
because JIT methods keep their names across runs even though their
addresses never repeat.  :func:`diff_reports` aligns two reports by
(image, symbol) and reports share deltas — the raw material for regression
hunting and for the paper's adaptation loop (did the optimization move the
bottleneck?).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.profiling.report import ProfileReport

__all__ = ["DiffRow", "ProfileDiff", "diff_reports"]


@dataclass(frozen=True, slots=True)
class DiffRow:
    """Share movement of one (image, symbol) between two profiles."""

    image: str
    symbol: str
    before_pct: float
    after_pct: float

    @property
    def delta(self) -> float:
        return self.after_pct - self.before_pct

    @property
    def appeared(self) -> bool:
        return self.before_pct == 0.0 and self.after_pct > 0.0

    @property
    def vanished(self) -> bool:
        return self.before_pct > 0.0 and self.after_pct == 0.0


@dataclass
class ProfileDiff:
    """All aligned rows plus convenience selectors."""

    event: str
    rows: list[DiffRow]

    def sorted_by_delta(self) -> list[DiffRow]:
        return sorted(self.rows, key=lambda r: (-abs(r.delta), r.image, r.symbol))

    def regressions(self, min_delta: float = 0.5) -> list[DiffRow]:
        """Symbols whose share *grew* by at least ``min_delta`` points."""
        return [r for r in self.sorted_by_delta() if r.delta >= min_delta]

    def improvements(self, min_delta: float = 0.5) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.delta <= -min_delta]

    def appeared(self) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.appeared]

    def vanished(self) -> list[DiffRow]:
        return [r for r in self.sorted_by_delta() if r.vanished]

    def format_table(self, limit: int = 15) -> str:
        lines = [
            f"{'before %':>9} {'after %':>9} {'delta':>8}  image : symbol "
            f"({self.event})"
        ]
        for r in self.sorted_by_delta()[:limit]:
            lines.append(
                f"{r.before_pct:9.3f} {r.after_pct:9.3f} {r.delta:+8.3f}  "
                f"{r.image} : {r.symbol}"
            )
        return "\n".join(lines)


def diff_reports(
    before: ProfileReport,
    after: ProfileReport,
    event: str | None = None,
) -> ProfileDiff:
    """Align two reports on (image, symbol) and compute share deltas.

    Args:
        before / after: the two profiles (typically same workload, two
            configurations or two code versions).
        event: which event's shares to compare; defaults to the first
            event both reports carry.

    Raises:
        ConfigError: when the reports share no event.
    """
    if event is None:
        common = [e for e in before.events if e in after.events]
        if not common:
            raise ConfigError("reports share no event to compare")
        event = common[0]
    if event not in before.events or event not in after.events:
        raise ConfigError(f"event {event!r} missing from one report")

    def shares(report: ProfileReport) -> dict[tuple[str, str], float]:
        return {
            (r.image, r.symbol): report.percent(r, event) for r in report.rows
        }

    b, a = shares(before), shares(after)
    rows = [
        DiffRow(
            image=img, symbol=sym,
            before_pct=b.get((img, sym), 0.0),
            after_pct=a.get((img, sym), 0.0),
        )
        for (img, sym) in sorted(set(b) | set(a))
    ]
    return ProfileDiff(event=event, rows=rows)
