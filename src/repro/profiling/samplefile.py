"""Packed on-disk sample files (the core ``VPRS`` format).

OProfile's daemon periodically drains the kernel sample buffer to per-image
sample files; the post-processing tools read them back.  We reproduce that
boundary with a compact binary format (struct-packed records behind a small
header), because the *existence* of the on-disk handoff is load-bearing for
the paper: the daemon's write path is part of the overhead model, and the
post-processors operate strictly on files, never on live state.

The header/record layout lives in :mod:`repro.profiling.record_codec`,
which both this module and the domain-tagged XenoProf flavour
(:mod:`repro.xen.samplefile`) share; this module pins the core ``VPRS``
codec (no domain column).  Readers stream records in constant memory and
report corruption with the file path and byte offset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.profiling.model import RawSample
from repro.profiling.record_codec import (
    CORE_CODEC,
    RecordFileReader,
    RecordFileWriter,
)

__all__ = ["SampleFileWriter", "SampleFileReader", "MAGIC", "VERSION"]

MAGIC = CORE_CODEC.magic
VERSION = CORE_CODEC.version


class SampleFileWriter(RecordFileWriter):
    """Streams :class:`RawSample` records for one hardware event to disk."""

    def __init__(
        self,
        path: Path | str,
        event_name: str,
        period: int,
        buffer_bytes: int | None = None,
    ) -> None:
        super().__init__(
            path, CORE_CODEC, event_name, period, buffer_bytes=buffer_bytes
        )

    def write_many(self, samples: Iterable[RawSample]) -> int:
        """Write every sample of any iterable (bulk-encoded in one batch)."""
        return self.write_batch(samples)

    def __enter__(self) -> "SampleFileWriter":
        return self


class SampleFileReader(RecordFileReader):
    """Reads a core-format sample file back; validates header and record
    integrity on construction, then streams records on iteration."""

    def __init__(self, path: Path | str) -> None:
        super().__init__(path, codec=CORE_CODEC)

    def __iter__(self) -> Iterator[RawSample]:
        for record in super().__iter__():
            yield record.sample
