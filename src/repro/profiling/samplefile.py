"""Packed on-disk sample files.

OProfile's daemon periodically drains the kernel sample buffer to per-image
sample files; the post-processing tools read them back.  We reproduce that
boundary with a compact binary format (struct-packed records behind a small
header), because the *existence* of the on-disk handoff is load-bearing for
the paper: the daemon's write path is part of the overhead model, and the
post-processors operate strictly on files, never on live state.

Format (little endian)::

    header:  4s magic "VPRS" | H version | H event-name length | name bytes
             Q sampling period
    record:  Q pc | I task_id | B kernel_mode | Q cycle | q epoch

Files are append-only; a reader tolerates a clean EOF between records but
rejects torn records and bad magic.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample

__all__ = ["SampleFileWriter", "SampleFileReader", "MAGIC", "VERSION"]

MAGIC = b"VPRS"
VERSION = 2

_HEADER_FIXED = struct.Struct("<4sHH")
_HEADER_PERIOD = struct.Struct("<Q")
_RECORD = struct.Struct("<QIBQq")


class SampleFileWriter:
    """Streams :class:`RawSample` records for one hardware event to disk."""

    def __init__(self, path: Path | str, event_name: str, period: int) -> None:
        if period <= 0:
            raise SampleFormatError(f"non-positive period {period}")
        self.path = Path(path)
        self.event_name = event_name
        self.period = period
        self._fh = open(self.path, "wb")
        name = event_name.encode("utf-8")
        self._fh.write(_HEADER_FIXED.pack(MAGIC, VERSION, len(name)))
        self._fh.write(name)
        self._fh.write(_HEADER_PERIOD.pack(period))
        self.samples_written = 0

    def write(self, sample: RawSample) -> None:
        self._fh.write(
            _RECORD.pack(
                sample.pc,
                sample.task_id,
                1 if sample.kernel_mode else 0,
                sample.cycle,
                sample.epoch,
            )
        )
        self.samples_written += 1

    def write_many(self, samples: Iterator[RawSample]) -> int:
        n = 0
        for s in samples:
            self.write(s)
            n += 1
        return n

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SampleFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SampleFileReader:
    """Reads a sample file back; validates header and record integrity."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        data = self.path.read_bytes()
        if len(data) < _HEADER_FIXED.size:
            raise SampleFormatError(f"{self.path}: truncated header")
        magic, version, name_len = _HEADER_FIXED.unpack_from(data, 0)
        if magic != MAGIC:
            raise SampleFormatError(f"{self.path}: bad magic {magic!r}")
        if version != VERSION:
            raise SampleFormatError(
                f"{self.path}: version {version}, expected {VERSION}"
            )
        off = _HEADER_FIXED.size
        if len(data) < off + name_len + _HEADER_PERIOD.size:
            raise SampleFormatError(f"{self.path}: truncated header")
        self.event_name = data[off : off + name_len].decode("utf-8")
        off += name_len
        (self.period,) = _HEADER_PERIOD.unpack_from(data, off)
        off += _HEADER_PERIOD.size
        body = data[off:]
        if len(body) % _RECORD.size:
            raise SampleFormatError(
                f"{self.path}: torn record ({len(body)} bytes of records, "
                f"record size {_RECORD.size})"
            )
        self._body = body

    def __iter__(self) -> Iterator[RawSample]:
        for (pc, task, kmode, cycle, epoch) in _RECORD.iter_unpack(self._body):
            yield RawSample(
                pc=pc,
                event_name=self.event_name,
                task_id=task,
                kernel_mode=bool(kmode),
                cycle=cycle,
                epoch=epoch,
            )

    def __len__(self) -> int:
        return len(self._body) // _RECORD.size
