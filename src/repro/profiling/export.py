"""Machine-readable report exports.

Real ``opreport`` grew ``--xml`` for downstream tooling; we provide XML in
that spirit plus CSV for spreadsheets/pandas.  Exports are pure functions
of a :class:`~repro.profiling.report.ProfileReport`, so they work for any
profiler variant (stock, VIProf, XenoProf-unified).
"""

from __future__ import annotations

import csv
import io
import json
from xml.etree import ElementTree as ET

from repro.profiling.report import ProfileReport

__all__ = ["report_to_xml", "report_to_csv", "report_to_json"]


def report_to_xml(report: ProfileReport) -> str:
    """Serialize a report to an ``opreport --xml``-flavoured document::

        <profile>
          <events><event name="..." total="..."/></events>
          <symbols>
            <symbol image="..." name="...">
              <count event="..." samples="..." percent="..."/>
            </symbol>
          </symbols>
        </profile>
    """
    root = ET.Element("profile")
    events_el = ET.SubElement(root, "events")
    for ev in report.events:
        ET.SubElement(
            events_el, "event",
            name=ev, total=str(report.totals.get(ev, 0)),
        )
    symbols_el = ET.SubElement(root, "symbols")
    for row in report.sorted_rows():
        sym_el = ET.SubElement(
            symbols_el, "symbol", image=row.image, name=row.symbol
        )
        for ev in report.events:
            n = row.count(ev)
            if n:
                ET.SubElement(
                    sym_el, "count",
                    event=ev, samples=str(n),
                    percent=f"{report.percent(row, ev):.4f}",
                )
    return ET.tostring(root, encoding="unicode")


def report_to_json(
    report: ProfileReport, stats: dict[str, object] | None = None
) -> str:
    """Serialize a report (and optionally the resolver chain's per-stage
    counters, as returned by
    :meth:`~repro.pipeline.resolver.ResolverChain.stats_dict`) to JSON::

        {"schema_version": 1,
         "events": {...totals...},
         "symbols": [{"image": ..., "symbol": ..., "counts": {...},
                      "percent": {...}}, ...],
         "panels": {"layers": {...}, ...},     # unified-model panels
         "resolution": {"stages": [...]}}      # when stats given

    The document is built by
    :func:`repro.metrics.build.report_json_doc` — the historical keys
    (``events``/``symbols``/``resolution``) are unchanged;
    ``schema_version`` and ``panels`` are the unified session-metrics
    model's additive fields, and ``viprof analyze`` accepts the document
    directly.
    """
    from repro.metrics.build import report_json_doc

    return json.dumps(report_json_doc(report, stats=stats), indent=2)


def report_to_csv(report: ProfileReport) -> str:
    """Serialize a report to CSV: one row per symbol, one sample and one
    percent column per event."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    header = ["image", "symbol"]
    for ev in report.events:
        header += [f"{ev}_samples", f"{ev}_percent"]
    writer.writerow(header)
    for row in report.sorted_rows():
        record = [row.image, row.symbol]
        for ev in report.events:
            record += [row.count(ev), f"{report.percent(row, ev):.4f}"]
        writer.writerow(record)
    return buf.getvalue()
