"""Core profiling records.

Two stages of sample mirror OProfile's pipeline:

* :class:`RawSample` — what the kernel module captures at NMI time: a PC, the
  event, the task, and (VIProf only) the GC epoch stamped at logging time.
* :class:`ResolvedSample` — after daemon/post-processing: the sample has an
  image label and (possibly) a symbol.

:class:`TruthLabel` is the simulator's omniscient attribution for the same
execution — the thing a real profiler can never observe directly — used to
score profile accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Layer", "TruthLabel", "RawSample", "ResolvedSample"]


class Layer(Enum):
    """Vertical layer of the software stack a cycle belongs to."""

    APP_JIT = "app-jit"  # JIT-compiled application code (in the JVM heap)
    VM = "vm"  # JVM internals (boot image)
    NATIVE = "native"  # shared libraries (libc & co.)
    KERNEL = "kernel"
    AGENT = "agent"  # VIProf VM-agent library work
    DAEMON = "daemon"  # profiler daemon work
    OTHER = "other"  # unrelated system processes (X server, ...)


@dataclass(frozen=True, slots=True)
class TruthLabel:
    """Ground-truth attribution of a slice of execution."""

    layer: Layer
    image: str
    symbol: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.image, self.symbol)


@dataclass(frozen=True, slots=True)
class RawSample:
    """One hardware sample as captured in the kernel buffer.

    Attributes:
        pc: interrupted program counter.
        event_name: hardware event whose counter overflowed.
        task_id: pid of the interrupted task.
        kernel_mode: True when the PC is a kernel address.
        cycle: simulated time of capture.
        epoch: GC epoch stamped by VIProf's runtime profiler at logging
            time; -1 for stock OProfile samples (no epoch concept).
    """

    pc: int
    event_name: str
    task_id: int
    kernel_mode: bool
    cycle: int
    epoch: int = -1


@dataclass(frozen=True, slots=True)
class ResolvedSample:
    """A sample after image/symbol attribution.

    ``offset`` is the sample PC's byte offset *within the resolved symbol*
    (or code body, for JIT samples); -1 when unknown (stripped images,
    anonymous regions).  Annotation tools bucket on it.
    """

    raw: RawSample
    image: str
    symbol: str
    offset: int = -1

    @property
    def key(self) -> tuple[str, str]:
        return (self.image, self.symbol)
