"""Shared struct-packed record codec for on-disk sample files.

Both sample-file flavours in the tree — the core OProfile/VIProf format
(magic ``VPRS``) and the domain-tagged XenoProf format (magic ``XPRS``) —
share one header layout and one core record definition; the XenoProf
record merely appends a domain-id column.  This module holds that single
definition behind a small versioned registry, so
:mod:`repro.profiling.samplefile` and :mod:`repro.xen.samplefile` are thin
format-pinning wrappers and the streaming pipeline
(:mod:`repro.pipeline.source`) can open *any* sample file by sniffing the
magic.

Layout (little endian)::

    header:  4s magic | H version | H event-name length | name bytes
             Q sampling period
    record:  Q pc | I task_id | B kernel_mode | Q cycle | q epoch
             [ H domain        -- codecs with has_domain only ]

Files are append-only; a reader tolerates a clean EOF between records but
rejects torn records and bad magic.  Reader errors always name the file
and the byte offset of the failure, so a corrupt artifact can be located
with ``dd``/``xxd`` without re-running anything.

The reader streams: it validates the header and the body length up front
(via ``stat``, not by slurping the file) and then decodes records in
fixed-size chunks, so memory stays constant in the number of samples.
Chunk decode is batched — one :meth:`struct.Struct.iter_unpack` call per
chunk (:meth:`RecordFileReader.iter_field_chunks`), so the per-record
Python work is object construction only, and the streaming pipeline's
fast path (:mod:`repro.pipeline.parallel`) can skip even that on
resolution-cache hits.  A reader holds one open handle for its lifetime
(it is a context manager); shard workers read disjoint record ranges of
the same file via ``start_record``/``n_records``.

The write path mirrors the batched decode: :meth:`RecordCodec.pack_many`
bulk-encodes a whole batch in one grow-and-append pack loop over a single
``bytearray``, and :class:`RecordFileWriter` buffers encoded records
behind a configurable high-water mark (``buffer_bytes``), spilling to the
OS in large contiguous writes.  Batching is strictly a throughput knob:
``write_batch``/``pack_many`` output is byte-identical to a per-record
``write`` loop over the same stream (property-tested in
``tests/profiling/test_batch_write.py``), and a writer is a context
manager symmetric with the reader — exit flushes and closes, so a closed
file never holds back buffered records.

Spills are **record-aligned and crash-safe**: the writer holds a raw
(unbuffered) handle, so the only byte boundaries the OS ever sees are the
writer's own, and if an OS write fails mid-spill the file is truncated
back to the last whole record before the error propagates — an exception
escaping between a watermark spill and ``flush()`` can no longer leave a
partial record on disk (regression-tested in
``tests/profiling/test_writer_recovery.py``).  The one producer of torn
files left is a genuine crash *during* a spill, which is exactly what the
``writer.spill`` fault point (:mod:`repro.faults`) simulates and
:func:`probe_sample_file` + ``viprof recover`` repair.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.errors import SampleFormatError
from repro.faults import injector as faults
from repro.profiling.model import RawSample

__all__ = [
    "SampleRecord",
    "RecordCodec",
    "CORE_CODEC",
    "DOMAIN_CODEC",
    "codec_for_magic",
    "register_codec",
    "RecordFileWriter",
    "RecordFileReader",
    "open_sample_record_file",
    "probe_sample_file",
    "SampleFileProbe",
    "DEFAULT_WRITE_BUFFER_BYTES",
    "CORE_RECORD_SIZE",
    "DOMAIN_RECORD_SIZE",
]

_HEADER_FIXED = struct.Struct("<4sHH")
_HEADER_PERIOD = struct.Struct("<Q")

#: Core record columns shared by every codec.
_CORE_RECORD_FORMAT = "<QIBQq"
#: The optional trailing domain-id column.
_DOMAIN_COLUMN = "H"
#: Full layout of a domain-tagged record (``XPRS``).
_DOMAIN_RECORD_FORMAT = _CORE_RECORD_FORMAT + _DOMAIN_COLUMN

#: Declared record sizes, cross-checked against the formats above by the
#: SL207 codec-consistency lint.  Deliberately prime (PR 5): any slicing
#: stride that silently agrees with a power-of-two assumption breaks.
CORE_RECORD_SIZE = 29
DOMAIN_RECORD_SIZE = 31

#: Records decoded per read when streaming a file body.
_CHUNK_RECORDS = 4096

#: Default writer high-water mark in bytes: encoded records accumulate in
#: the writer's pending buffer and spill to the file once it crosses this.
#: 0 spills after every append — the pre-batching per-record behaviour.
DEFAULT_WRITE_BUFFER_BYTES = 1 << 20


@dataclass(frozen=True, slots=True)
class SampleRecord:
    """One decoded record: the core sample plus the optional domain tag.

    ``domain_id`` is None for codecs without a domain column (the core
    ``VPRS`` format); consumers that do not care about domains can read
    ``.sample`` uniformly.
    """

    sample: RawSample
    domain_id: int | None = None


@dataclass(frozen=True)
class RecordCodec:
    """One on-disk record layout: a magic, a version, and the columns."""

    magic: bytes
    version: int
    has_domain: bool

    def __post_init__(self) -> None:
        if len(self.magic) != 4:
            raise SampleFormatError(f"codec magic must be 4 bytes: {self.magic!r}")
        fmt = _DOMAIN_RECORD_FORMAT if self.has_domain else _CORE_RECORD_FORMAT
        object.__setattr__(self, "_record", struct.Struct(fmt))

    @property
    def record_struct(self) -> struct.Struct:
        return self._record  # type: ignore[attr-defined]

    @property
    def record_size(self) -> int:
        return self.record_struct.size

    def pack(self, sample: RawSample, domain_id: int | None = None) -> bytes:
        """Encode one record; ``domain_id`` is required iff the codec has
        a domain column."""
        core = (
            sample.pc,
            sample.task_id,
            1 if sample.kernel_mode else 0,
            sample.cycle,
            sample.epoch,
        )
        if self.has_domain:
            if domain_id is None:
                raise SampleFormatError(
                    f"codec {self.magic!r} requires a domain id"
                )
            return self.record_struct.pack(*core, domain_id)
        return self.record_struct.pack(*core)

    def pack_many(
        self,
        samples: Iterable[RawSample],
        domain_ids: Iterable[int] | None = None,
    ) -> bytes:
        """Bulk-encode a batch of records into one contiguous buffer.

        Byte-identical to concatenating :meth:`pack` over the same stream
        — one pack loop appending into a single ``bytearray``, so the
        per-record Python work is field access only.  ``domain_ids`` is
        required iff the codec has a domain column (and, like
        :meth:`pack`, ignored when it does not) and must yield exactly
        one id per sample.
        """
        if not isinstance(samples, (list, tuple)):
            samples = list(samples)
        pack = self.record_struct.pack
        buf = bytearray()
        if self.has_domain:
            if domain_ids is None:
                raise SampleFormatError(
                    f"codec {self.magic!r} requires a domain id"
                )
            if not isinstance(domain_ids, (list, tuple)):
                domain_ids = list(domain_ids)
            if len(domain_ids) != len(samples):
                raise SampleFormatError(
                    f"codec {self.magic!r}: {len(samples)} samples but "
                    f"{len(domain_ids)} domain ids"
                )
            for s, d in zip(samples, domain_ids):
                buf += pack(
                    s.pc, s.task_id, 1 if s.kernel_mode else 0,
                    s.cycle, s.epoch, d,
                )
        else:
            for s in samples:
                buf += pack(
                    s.pc, s.task_id, 1 if s.kernel_mode else 0,
                    s.cycle, s.epoch,
                )
        return bytes(buf)

    def unpack_fields(self, fields: tuple, event_name: str) -> SampleRecord:
        """Decode one tuple of struct fields into a :class:`SampleRecord`."""
        pc, task, kmode, cycle, epoch = fields[:5]
        return SampleRecord(
            sample=RawSample(
                pc=pc,
                event_name=event_name,
                task_id=task,
                kernel_mode=bool(kmode),
                cycle=cycle,
                epoch=epoch,
            ),
            domain_id=fields[5] if self.has_domain else None,
        )


#: The core sample-file codec (stock OProfile and VIProf sessions).
CORE_CODEC = RecordCodec(magic=b"VPRS", version=2, has_domain=False)

#: The domain-tagged XenoProf codec.
DOMAIN_CODEC = RecordCodec(magic=b"XPRS", version=1, has_domain=True)

#: Registry of known codecs, keyed by magic.  Versioning is per magic: a
#: reader finding a known magic with an unknown version fails with a
#: version error, not a bad-magic error.
_CODECS: dict[bytes, RecordCodec] = {}


def register_codec(codec: RecordCodec) -> RecordCodec:
    """Register a codec so :func:`open_sample_record_file` can sniff it."""
    existing = _CODECS.get(codec.magic)
    if existing is not None and existing != codec:
        raise SampleFormatError(
            f"codec magic {codec.magic!r} already registered"
        )
    _CODECS[codec.magic] = codec
    return codec


register_codec(CORE_CODEC)
register_codec(DOMAIN_CODEC)


def codec_for_magic(magic: bytes) -> RecordCodec | None:
    """Look up a registered codec by its 4-byte magic."""
    return _CODECS.get(magic)


class RecordFileWriter:
    """Streams records for one hardware event to disk in a codec's format.

    Encoded records accumulate in a pending buffer and are written to the
    file in one contiguous ``write`` each time the buffer crosses the
    ``buffer_bytes`` high-water mark (``None`` selects
    :data:`DEFAULT_WRITE_BUFFER_BYTES`; ``0`` spills after every append,
    reproducing the per-record behaviour).  Buffering never reorders:
    records land in exactly the order they were appended, so batched and
    per-record use produce byte-identical files.  The writer is a context
    manager symmetric with :class:`RecordFileReader` — exit (or
    :meth:`close`) flushes before closing.
    """

    def __init__(
        self,
        path: Path | str,
        codec: RecordCodec,
        event_name: str,
        period: int,
        buffer_bytes: int | None = None,
    ) -> None:
        if period <= 0:
            raise SampleFormatError(f"non-positive period {period}")
        self.path = Path(path)
        self.codec = codec
        self.event_name = event_name
        self.period = period
        self.buffer_bytes = (
            DEFAULT_WRITE_BUFFER_BYTES if buffer_bytes is None
            else max(0, buffer_bytes)
        )
        self._pending = bytearray()
        self._crashed = False
        # Raw (unbuffered) handle: every write below is a real OS write,
        # so the only byte boundaries that can ever land on disk are the
        # writer's own — a prerequisite for record-aligned crash safety.
        self._fh: BinaryIO = open(self.path, "wb", buffering=0)
        name = event_name.encode("utf-8")
        header = bytearray(
            _HEADER_FIXED.pack(codec.magic, codec.version, len(name))
        )
        header += name
        header += _HEADER_PERIOD.pack(period)
        self._fh.write(bytes(header))
        self._data_start = len(header)
        self.samples_written = 0

    def write(self, sample: RawSample, domain_id: int | None = None) -> None:
        self._pending += self.codec.pack(sample, domain_id)
        self.samples_written += 1
        if len(self._pending) >= self.buffer_bytes:
            self._spill()

    def write_batch(
        self,
        samples: Iterable[RawSample],
        domain_ids: Iterable[int] | None = None,
    ) -> int:
        """Encode and append a whole batch of samples in one pass.

        Returns the number of records appended.  Output is byte-identical
        to calling :meth:`write` per sample in the same order.
        """
        if not isinstance(samples, (list, tuple)):
            samples = list(samples)
        return self.write_packed(
            self.codec.pack_many(samples, domain_ids), len(samples)
        )

    def write_packed(self, data: bytes | bytearray, n_records: int) -> int:
        """Append ``n_records`` pre-encoded records (from
        :meth:`RecordCodec.pack_many`).

        Lets a caller that emits the same record run repeatedly — the
        benchmark synthesizers replicating a seed session — pay the encode
        cost once per distinct run instead of once per written record.
        """
        if len(data) != n_records * self.codec.record_size:
            raise SampleFormatError(
                f"{self.path}: packed batch is {len(data)} bytes, expected "
                f"{n_records} records x {self.codec.record_size} bytes"
            )
        self._pending += data
        self.samples_written += n_records
        if len(self._pending) >= self.buffer_bytes:
            self._spill()
        return n_records

    def _spill(self) -> None:
        """Hand the pending buffer to the OS in whole records (ordered).

        Crash-safe: if the underlying write raises partway through, the
        file is truncated back to the last whole record before the error
        propagates, so an exception escaping between a watermark spill
        and :meth:`flush` never leaves a partial record on disk.
        """
        if self._crashed:
            # A simulated crash already abandoned this writer: buffered
            # records die with the process, exactly like a real kill.
            self._pending = bytearray()
            return
        if not self._pending:
            return
        data, self._pending = self._pending, bytearray()
        if faults.armed():
            faults.fire(
                faults.WRITER_SPILL,
                effect=lambda rng: self._torn_spill(data, rng),
            )
        view = memoryview(data)
        written = 0
        try:
            while written < len(data):
                n = self._fh.write(view[written:])
                written += n if n is not None else 0
        except OSError:
            self._truncate_to_record_boundary()
            raise

    def _truncate_to_record_boundary(self) -> None:
        """Drop any partial trailing record left by a failed OS write."""
        try:
            fd = self._fh.fileno()
            size = os.fstat(fd).st_size
            excess = (size - self._data_start) % self.codec.record_size
            if excess:
                os.ftruncate(fd, size - excess)
            self._fh.seek(0, os.SEEK_END)
        except OSError:  # pragma: no cover - double-fault: keep original
            pass

    def _torn_spill(self, data: bytearray, rng) -> None:
        """Fault effect (``writer.spill``): the crash lands mid-``write``,
        so a prefix of the pending buffer — cut *inside* a record — is
        what reaches the file.  Poisons the writer so no later flush can
        repair the tear (the process is considered dead)."""
        rsize = self.codec.record_size
        cut = rng.randrange(1, len(data)) if len(data) > 1 else 1
        if cut % rsize == 0:
            cut = cut + 1 if cut + 1 <= len(data) else cut - 1
        self._fh.write(bytes(data[:cut]))
        self.abandon()

    def abandon(self) -> None:
        """Simulate this writer's process dying: buffered records are
        dropped and every later spill/flush/close is a no-op apart from
        releasing the handle.  Only fault effects call this."""
        self._crashed = True
        self._pending = bytearray()

    def flush(self) -> None:
        """Spill the pending buffer and flush to the OS (idempotent)."""
        self._spill()
        if not self._crashed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "RecordFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RecordFileReader:
    """Streaming reader: validates the header and body length up front,
    then decodes records chunk by chunk on iteration.

    Args:
        path: the sample file.
        codec: pin the expected format; None sniffs the magic against the
            registry (any known format accepted).

    Raises:
        SampleFormatError: truncated header, unknown or unexpected magic,
            version mismatch, or a torn trailing record — always naming
            the file and the byte offset of the failure.
    """

    def __init__(self, path: Path | str, codec: RecordCodec | None = None) -> None:
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
            fh = open(self.path, "rb")
        except OSError as e:
            raise SampleFormatError(f"{self.path}: unreadable: {e}") from None
        try:
            head = fh.read(_HEADER_FIXED.size)
            if len(head) < _HEADER_FIXED.size:
                raise SampleFormatError(
                    f"{self.path}: truncated header at byte offset "
                    f"{len(head)} (fixed header is {_HEADER_FIXED.size} bytes)"
                )
            magic, version, name_len = _HEADER_FIXED.unpack(head)
            known = codec_for_magic(magic)
            if codec is not None and magic != codec.magic:
                raise SampleFormatError(
                    f"{self.path}: bad magic {magic!r} at byte offset 0 "
                    f"(expected {codec.magic!r})"
                )
            if known is None:
                raise SampleFormatError(
                    f"{self.path}: bad magic {magic!r} at byte offset 0"
                )
            self.codec = known
            if version != self.codec.version:
                raise SampleFormatError(
                    f"{self.path}: version {version}, expected "
                    f"{self.codec.version} (magic {magic!r})"
                )
            rest = fh.read(name_len + _HEADER_PERIOD.size)
            if len(rest) < name_len + _HEADER_PERIOD.size:
                raise SampleFormatError(
                    f"{self.path}: truncated header at byte offset "
                    f"{_HEADER_FIXED.size + len(rest)}"
                )
            try:
                self.event_name = rest[:name_len].decode("utf-8")
            except UnicodeDecodeError as e:
                raise SampleFormatError(
                    f"{self.path}: undecodable event name at byte offset "
                    f"{_HEADER_FIXED.size}: {e}"
                ) from None
            (self.period,) = _HEADER_PERIOD.unpack_from(rest, name_len)
        except (OSError, SampleFormatError):
            # Header parsing can only fail with a read error or one of
            # the format errors raised above; anything else would mask a
            # real bug behind a closed handle.
            fh.close()
            raise
        self._data_start = _HEADER_FIXED.size + name_len + _HEADER_PERIOD.size
        body = size - self._data_start
        rsize = self.codec.record_size
        if body % rsize:
            fh.close()
            torn_at = self._data_start + (body // rsize) * rsize
            raise SampleFormatError(
                f"{self.path}: torn record at byte offset {torn_at} "
                f"({body % rsize} trailing bytes, record size {rsize})"
            )
        self._n_records = body // rsize
        # The header handle stays open for iteration; close() (or the
        # context manager) releases it.  A busy handle (an iteration in
        # flight) makes a concurrent iteration open its own.
        self._fh: BinaryIO | None = fh
        self._busy = False

    def __len__(self) -> int:
        return self._n_records

    def close(self) -> None:
        """Release the reader's file handle (idempotent; safe to call on
        a reader whose constructor failed before the handle was kept —
        failed constructors close their handle themselves)."""
        fh = getattr(self, "_fh", None)
        if fh is not None:
            self._fh = None
            if not fh.closed:
                fh.close()

    def __enter__(self) -> "RecordFileReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def iter_field_chunks(
        self, start_record: int = 0, n_records: int | None = None
    ) -> Iterator[list[tuple]]:
        """Stream the body as lists of raw struct-field tuples.

        Each yielded list is one decode chunk, materialized with a single
        ``list(Struct.iter_unpack(chunk))`` — one C call per
        ``_CHUNK_RECORDS`` records instead of one Python call per record.
        ``start_record``/``n_records`` select a sub-range, which is how
        shard workers split one large file without re-reading it whole.

        The reader's own handle is reused (seek) when free; a second
        concurrent iteration opens a private handle, so a reader can be
        iterated more than once without holding the body in memory.
        """
        if start_record < 0 or start_record > self._n_records:
            raise SampleFormatError(
                f"{self.path}: shard start {start_record} outside "
                f"0..{self._n_records}"
            )
        count = (
            self._n_records - start_record
            if n_records is None
            else n_records
        )
        if count < 0 or start_record + count > self._n_records:
            raise SampleFormatError(
                f"{self.path}: shard range {start_record}+{count} outside "
                f"{self._n_records} records"
            )
        unpack = self.codec.record_struct.iter_unpack
        rsize = self.codec.record_size
        chunk_bytes = _CHUNK_RECORDS * rsize
        remaining = count * rsize
        if self._fh is not None and not self._fh.closed and not self._busy:
            fh, own = self._fh, False
            self._busy = True
        else:
            fh, own = open(self.path, "rb"), True
        try:
            fh.seek(self._data_start + start_record * rsize)
            while remaining > 0:
                chunk = fh.read(min(chunk_bytes, remaining))
                if len(chunk) % rsize:
                    torn_at = (
                        self._data_start
                        + (start_record + count) * rsize
                        - remaining
                        + (len(chunk) // rsize) * rsize
                    )
                    raise SampleFormatError(
                        f"{self.path}: torn record at byte offset {torn_at} "
                        f"(file shrank while reading)"
                    )
                if not chunk:
                    break
                remaining -= len(chunk)
                yield list(unpack(chunk))
        finally:
            if own:
                fh.close()
            else:
                self._busy = False

    def iter_records(
        self, start_record: int = 0, n_records: int | None = None
    ) -> Iterator[SampleRecord]:
        """Stream decoded records for a record range (whole file by default)."""
        codec = self.codec
        unpack_fields = codec.unpack_fields
        event_name = self.event_name
        for fields_chunk in self.iter_field_chunks(start_record, n_records):
            for fields in fields_chunk:
                yield unpack_fields(fields, event_name)

    def __iter__(self) -> Iterator[SampleRecord]:
        """Stream every record; a reader can be iterated more than once."""
        return self.iter_records()


def open_sample_record_file(path: Path | str) -> RecordFileReader:
    """Open a sample file of *any* registered format by sniffing its magic."""
    return RecordFileReader(path, codec=None)


@dataclass(frozen=True, slots=True)
class SampleFileProbe:
    """Torn-record diagnosis of one sample file (either magic).

    ``n_records`` whole records survive; ``trailing_bytes`` is the length
    of the partial record after them (0 for a clean file).  Truncating the
    file to ``truncate_to`` makes it a valid record-aligned prefix.
    """

    path: Path
    magic: bytes
    event_name: str
    period: int
    record_size: int
    data_start: int
    n_records: int
    trailing_bytes: int

    @property
    def torn(self) -> bool:
        return self.trailing_bytes > 0

    @property
    def truncate_to(self) -> int:
        return self.data_start + self.n_records * self.record_size


def probe_sample_file(path: Path | str) -> SampleFileProbe:
    """Diagnose a possibly-torn sample file without rejecting the tear.

    Validates the header exactly like :class:`RecordFileReader` — header
    damage still raises :class:`~repro.errors.SampleFormatError` (such a
    file identifies no codec, so nothing can be salvaged from it) — but a
    torn *body* is returned as a measurement instead of an error.  This is
    the detection half of ``viprof recover``: the salvager truncates torn
    files at ``truncate_to``, the last whole-record boundary.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            head = fh.read(_HEADER_FIXED.size)
            if len(head) < _HEADER_FIXED.size:
                raise SampleFormatError(
                    f"{path}: truncated header at byte offset {len(head)} "
                    f"(fixed header is {_HEADER_FIXED.size} bytes)"
                )
            magic, version, name_len = _HEADER_FIXED.unpack(head)
            codec = codec_for_magic(magic)
            if codec is None:
                raise SampleFormatError(
                    f"{path}: bad magic {magic!r} at byte offset 0"
                )
            if version != codec.version:
                raise SampleFormatError(
                    f"{path}: version {version}, expected "
                    f"{codec.version} (magic {magic!r})"
                )
            rest = fh.read(name_len + _HEADER_PERIOD.size)
            if len(rest) < name_len + _HEADER_PERIOD.size:
                raise SampleFormatError(
                    f"{path}: truncated header at byte offset "
                    f"{_HEADER_FIXED.size + len(rest)}"
                )
            try:
                event_name = rest[:name_len].decode("utf-8")
            except UnicodeDecodeError as e:
                raise SampleFormatError(
                    f"{path}: undecodable event name at byte offset "
                    f"{_HEADER_FIXED.size}: {e}"
                ) from None
            (period,) = _HEADER_PERIOD.unpack_from(rest, name_len)
    except OSError as e:
        raise SampleFormatError(f"{path}: unreadable: {e}") from None
    data_start = _HEADER_FIXED.size + name_len + _HEADER_PERIOD.size
    body = size - data_start
    rsize = codec.record_size
    return SampleFileProbe(
        path=path,
        magic=magic,
        event_name=event_name,
        period=period,
        record_size=rsize,
        data_start=data_start,
        n_records=body // rsize,
        trailing_bytes=body % rsize,
    )
