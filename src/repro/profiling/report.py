"""Profile aggregation and opreport-style tables.

The paper's Figure 1 is an ``opreport --symbols``-style listing with one row
per (image, symbol) and one percentage column per profiled event — for the
case study, time (GLOBAL_POWER_EVENTS) and L2 data misses
(BSQ_CACHE_REFERENCE).  :func:`build_report` aggregates resolved samples into
that shape and :meth:`ProfileReport.format_table` renders it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable

from repro.profiling.model import ResolvedSample

__all__ = ["SymbolRow", "ProfileReport", "StreamingAggregator", "build_report"]


@dataclass
class SymbolRow:
    """Aggregated samples for one (image, symbol) pair."""

    image: str
    symbol: str
    counts: dict[str, int] = field(default_factory=dict)

    def count(self, event: str) -> int:
        return self.counts.get(event, 0)

    def add(self, event: str, n: int = 1) -> None:
        self.counts[event] = self.counts.get(event, 0) + n


@dataclass
class ProfileReport:
    """A full profile: rows plus per-event totals.

    ``events`` fixes column order; the first event is the primary sort key
    (descending), matching opreport's behaviour.
    """

    events: tuple[str, ...]
    rows: list[SymbolRow]
    totals: dict[str, int]

    def sorted_rows(self) -> list[SymbolRow]:
        primary = self.events[0]
        return sorted(
            self.rows,
            key=lambda r: tuple(-r.count(e) for e in (primary, *self.events[1:])),
        )

    def percent(self, row: SymbolRow, event: str) -> float:
        total = self.totals.get(event, 0)
        return 100.0 * row.count(event) / total if total else 0.0

    def row_for(self, image: str, symbol: str) -> SymbolRow | None:
        for r in self.rows:
            if r.image == image and r.symbol == symbol:
                return r
        return None

    def image_share(self, image: str, event: str | None = None) -> float:
        """Fraction (0..1) of an event's samples attributed to ``image``."""
        ev = event or self.events[0]
        total = self.totals.get(ev, 0)
        if not total:
            return 0.0
        return sum(r.count(ev) for r in self.rows if r.image == image) / total

    def image_totals(self) -> list[tuple[str, dict[str, int]]]:
        """Aggregate rows per image (opreport's default, symbol-less view),
        sorted by the primary event, descending."""
        per_image: dict[str, dict[str, int]] = {}
        for r in self.rows:
            acc = per_image.setdefault(r.image, {})
            for ev, n in r.counts.items():
                acc[ev] = acc.get(ev, 0) + n
        primary = self.events[0]
        return sorted(
            per_image.items(), key=lambda kv: (-kv[1].get(primary, 0), kv[0])
        )

    def format_image_summary(self, limit: int | None = None) -> str:
        """The image-level listing opreport prints without ``-l``."""
        primary = self.events[0]
        total = max(1, self.totals.get(primary, 0))
        lines = [f"{'samples':>8} {'%':>9}  image name"]
        items = self.image_totals()
        if limit is not None:
            items = items[:limit]
        for image, counts in items:
            n = counts.get(primary, 0)
            lines.append(f"{n:8d} {100 * n / total:9.4f}  {image}")
        return "\n".join(lines)

    def format_table(
        self, limit: int | None = None, column_labels: dict[str, str] | None = None
    ) -> str:
        """Render the Figure-1-style listing.

        Args:
            limit: show at most this many rows.
            column_labels: optional event -> short header (defaults to
                ``Time %`` for the first column, ``Dmiss %`` for a cache-miss
                event, else the event name).
        """
        labels = []
        for e in self.events:
            if column_labels and e in column_labels:
                labels.append(column_labels[e])
            elif e == "GLOBAL_POWER_EVENTS":
                labels.append("Time %")
            elif "CACHE" in e:
                labels.append("Dmiss %")
            else:
                labels.append(f"{e} %")
        header = "  ".join(f"{lbl:>8}" for lbl in labels)
        header += "  {:<24}  {}".format("Image name", "Symbol name")
        lines = [header]
        rows = self.sorted_rows()
        if limit is not None:
            rows = rows[:limit]
        for r in rows:
            cells = "  ".join(f"{self.percent(r, e):8.4f}" for e in self.events)
            lines.append(f"{cells}  {r.image:<24}  {r.symbol}")
        return "\n".join(lines)


class StreamingAggregator:
    """Single-pass, constant-memory aggregation of resolved samples.

    State is one :class:`SymbolRow` per distinct (image, symbol) pair plus
    per-event totals — independent of the number of samples consumed, so a
    session of any size aggregates in constant memory.  This is the *only*
    aggregation implementation in the tree: :func:`build_report` and the
    streaming pipeline (:mod:`repro.pipeline`) both run through it.

    ``events`` fixes the column order and drops samples for other events
    (matching opreport's event selection); None accepts every event in
    first-seen order.
    """

    def __init__(self, events: tuple[str, ...] | None = None) -> None:
        self._fixed_events = events
        self._rows: dict[tuple[str, str], SymbolRow] = {}
        self._totals: dict[str, int] = (
            {e: 0 for e in events} if events is not None else {}
        )
        self.samples_seen = 0

    def add_counts(
        self, event: str, image: str, symbol: str, n: int = 1
    ) -> None:
        """Fold ``n`` samples attributed to (image, symbol) under one
        event — the object-free fast path the pipeline uses on
        resolution-cache hits, and the primitive :meth:`add` and
        :meth:`merge` are built on."""
        self.samples_seen += n
        if self._fixed_events is not None and event not in self._totals:
            return
        key = (image, symbol)
        row = self._rows.get(key)
        if row is None:
            row = SymbolRow(image=image, symbol=symbol)
            self._rows[key] = row
        row.add(event, n)
        self._totals[event] = self._totals.get(event, 0) + n

    def add(self, sample: ResolvedSample) -> None:
        """Fold one resolved sample into the aggregate."""
        self.add_counts(sample.raw.event_name, sample.image, sample.symbol)

    def extend(self, samples: Iterable[ResolvedSample]) -> "StreamingAggregator":
        for s in samples:
            self.add(s)
        return self

    def merge(self, other: "StreamingAggregator") -> "StreamingAggregator":
        """Fold another aggregator (a later shard of the same stream) into
        this one, in place.

        Merging is *order-preserving*: the other aggregator's rows and
        events are appended in their first-seen order, so merging shard
        aggregates in shard order reproduces the sequential pass exactly —
        row insertion order (the sort tie-break) included.  Aggregating a
        concatenated stream and merging per-shard aggregates are therefore
        byte-identical (property-tested).
        """
        if other._fixed_events != self._fixed_events:
            from repro.errors import ProfilerError

            raise ProfilerError(
                f"cannot merge aggregators with different event selections: "
                f"{self._fixed_events!r} vs {other._fixed_events!r}"
            )
        # samples_seen also counts samples dropped by the event filter,
        # which add_counts would re-filter; account for the drops first.
        dropped = other.samples_seen - sum(other._totals.values())
        self.samples_seen += dropped
        # Seed unseen events from the other's totals *in its key order*,
        # which is its first-seen event order — row iteration below is
        # row-major and must not dictate event column order.
        for ev in other._totals:
            if ev not in self._totals:
                self._totals[ev] = 0
        for row in other._rows.values():
            for ev, n in row.counts.items():
                self.add_counts(ev, row.image, row.symbol, n)
        return self

    def __add__(self, other: "StreamingAggregator") -> "StreamingAggregator":
        out = StreamingAggregator(self._fixed_events)
        return out.merge(self).merge(other)

    # ------------------------------------------------------------------
    # flat binary transport (shared-memory shard results)
    # ------------------------------------------------------------------

    def pack_rows(self) -> bytes:
        """Serialize this aggregate as a flat binary blob — the shard
        workers' shared-memory result format (no pickle, no per-row
        Python objects on the receiving side until absorption).

        Layout (all little-endian):
        ``samples_seen:u64, n_events:u32, [len:u16 + utf8]*,
        n_rows:u32, [image len:u16 + utf8, symbol len:u16 + utf8,
        n_counts:u16, (event index:u32, count:u64)*]*``.
        Events and rows are emitted in first-seen order, which is exactly
        what :meth:`absorb_packed_rows` must replay.
        """
        out = bytearray()
        events = list(self._totals)
        event_index = {ev: i for i, ev in enumerate(events)}
        out += struct.pack("<QI", self.samples_seen, len(events))
        for ev in events:
            b = ev.encode("utf-8")
            out += struct.pack("<H", len(b)) + b
        out += struct.pack("<I", len(self._rows))
        for row in self._rows.values():
            bi = row.image.encode("utf-8")
            bs = row.symbol.encode("utf-8")
            out += struct.pack("<H", len(bi)) + bi
            out += struct.pack("<H", len(bs)) + bs
            out += struct.pack("<H", len(row.counts))
            for ev, n in row.counts.items():
                out += struct.pack("<IQ", event_index[ev], n)
        return bytes(out)

    def absorb_packed_rows(self, data: bytes | memoryview) -> None:
        """Fold a :meth:`pack_rows` blob (a later shard of the same
        stream) into this aggregate, with :meth:`merge` semantics:
        event order is seeded first, rows replay through
        :meth:`add_counts` in first-seen order, and samples the packed
        side counted but its event filter dropped stay counted."""
        unpack_from = struct.unpack_from
        samples_seen, n_events = unpack_from("<QI", data, 0)
        off = 12
        events: list[str] = []
        for _ in range(n_events):
            (ln,) = unpack_from("<H", data, off)
            off += 2
            events.append(bytes(data[off:off + ln]).decode("utf-8"))
            off += ln
        # merge() accounting: drops first, then event-order seeding.
        counted = 0
        for ev in events:
            if ev not in self._totals:
                self._totals[ev] = 0
        (n_rows,) = unpack_from("<I", data, off)
        off += 4
        for _ in range(n_rows):
            (ln,) = unpack_from("<H", data, off)
            off += 2
            image = bytes(data[off:off + ln]).decode("utf-8")
            off += ln
            (ln,) = unpack_from("<H", data, off)
            off += 2
            symbol = bytes(data[off:off + ln]).decode("utf-8")
            off += ln
            (n_counts,) = unpack_from("<H", data, off)
            off += 2
            for _ in range(n_counts):
                ev_i, n = unpack_from("<IQ", data, off)
                off += 12
                self.add_counts(events[ev_i], image, symbol, n)
                counted += n
        self.samples_seen += samples_seen - counted

    def report(self) -> ProfileReport:
        """Snapshot the aggregate as a :class:`ProfileReport`."""
        events = (
            self._fixed_events
            if self._fixed_events is not None
            else tuple(self._totals)
        )
        return ProfileReport(
            events=events,
            rows=list(self._rows.values()),
            totals=dict(self._totals),
        )


def build_report(
    samples: Iterable[ResolvedSample], events: tuple[str, ...] | None = None
) -> ProfileReport:
    """Aggregate resolved samples (possibly spanning several events) into a
    report.  ``events`` fixes the column order; by default events appear in
    first-seen order."""
    return StreamingAggregator(events).extend(samples).report()
