"""Within-symbol sample annotation (the ``opannotate`` capability).

``opreport`` answers *which function* is hot; ``opannotate`` answers
*where inside it*.  We bucket each resolved sample's symbol-relative
offset and render the per-bucket histogram — the assembly-annotation view,
minus the disassembly (our binaries are synthetic).

For VIProf-resolved JIT samples the offset is relative to the *code body*,
and because the code map records the compiler tier, offsets convert to
approximate **bytecode indices** through the tier's expansion factor —
letting a vertically integrated profile point at a hot loop inside a Java
method, not just at the method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.profiling.model import ResolvedSample

__all__ = ["AnnotationRow", "SymbolAnnotation", "annotate_symbol"]


@dataclass(frozen=True, slots=True)
class AnnotationRow:
    """One bucket of a symbol's body."""

    offset: int  # bucket start, symbol-relative bytes
    counts: dict[str, int]
    bytecode_index: int | None = None  # JIT bodies only

    def count(self, event: str) -> int:
        return self.counts.get(event, 0)


@dataclass
class SymbolAnnotation:
    """Offset histogram for one (image, symbol)."""

    image: str
    symbol: str
    bucket_bytes: int
    rows: list[AnnotationRow] = field(default_factory=list)
    unknown_offset_samples: int = 0
    totals: dict[str, int] = field(default_factory=dict)

    def hottest(self, event: str) -> AnnotationRow | None:
        candidates = [r for r in self.rows if r.count(event)]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.count(event), -r.offset))

    def format_table(self, limit: int | None = None) -> str:
        events = sorted(self.totals)
        head = "  ".join(f"{e[:12]:>12}" for e in events)
        lines = [f"{self.image}:{self.symbol} (bucket {self.bucket_bytes}B)"]
        lines.append(f"{'offset':>10}  {head}  bytecode")
        rows = self.rows if limit is None else self.rows[:limit]
        for r in rows:
            cells = "  ".join(f"{r.count(e):>12}" for e in events)
            bc = f"~bc {r.bytecode_index}" if r.bytecode_index is not None else ""
            lines.append(f"{r.offset:>10}  {cells}  {bc}")
        return "\n".join(lines)


def annotate_symbol(
    samples: list[ResolvedSample],
    image: str,
    symbol: str,
    bucket_bytes: int = 16,
    expansion: int | None = None,
) -> SymbolAnnotation:
    """Build the offset histogram for one symbol.

    Args:
        samples: resolved samples (any mix; non-matching ones are skipped).
        image / symbol: the target.
        bucket_bytes: histogram granularity.
        expansion: machine-code bytes per bytecode — when given, each row
            also reports the approximate bytecode index (JIT bodies).
    """
    if bucket_bytes <= 0:
        raise ConfigError("bucket_bytes must be positive")
    ann = SymbolAnnotation(image=image, symbol=symbol, bucket_bytes=bucket_bytes)
    buckets: dict[int, dict[str, int]] = {}
    for s in samples:
        if s.image != image or s.symbol != symbol:
            continue
        ev = s.raw.event_name
        ann.totals[ev] = ann.totals.get(ev, 0) + 1
        if s.offset < 0:
            ann.unknown_offset_samples += 1
            continue
        b = (s.offset // bucket_bytes) * bucket_bytes
        counts = buckets.setdefault(b, {})
        counts[ev] = counts.get(ev, 0) + 1
    for off in sorted(buckets):
        bc = off // expansion if expansion else None
        ann.rows.append(
            AnnotationRow(offset=off, counts=buckets[off], bytecode_index=bc)
        )
    return ann
