"""Declarative analysis configuration: metric panels and regression gates.

``viprof analyze`` evaluates a pair of summaries against an
:class:`AnalysisConfig` — which derived metrics to compute per panel, and
which deltas count as regressions.  Configs are plain data loaded from
TOML (Python ≥ 3.11, :mod:`tomllib`) or JSON (always available); the
built-in :data:`DEFAULT_CONFIG` gates the metrics every summary kind
carries.

Config document shape (TOML shown; the JSON shape is isomorphic)::

    [symbols]
    event = "GLOBAL_POWER_EVENTS"   # optional; default: primary event
    max_gain_points = 5.0           # share growth that flags a symbol
    max_appear_points = 1.0         # share at which a new symbol flags

    [[thresholds]]
    metric = "cache.hit_rate_pct"   # "<panel>.<derived metric>"
    direction = "down"              # bad direction: "up" | "down"
    max_delta = 10.0                # |percentage-point| tolerance
    # max_ratio = 1.5               # alternative: b/a ratio tolerance

Thresholds only fire when both summaries actually carry the metric —
a config can gate panels that some producers never emit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError

try:
    import tomllib
except ImportError:  # Python < 3.11: TOML configs unavailable, JSON works
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "SymbolRules",
    "Threshold",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "load_config",
]

DIRECTION_UP = "up"
DIRECTION_DOWN = "down"


@dataclass(frozen=True)
class SymbolRules:
    """When a per-symbol share shift counts as a regression.

    ``max_gain_points``: a symbol whose share grew by more than this many
    percentage points flags (hot code got hotter).  ``max_appear_points``:
    a symbol absent from the baseline flags once its share exceeds this.
    ``event`` pins the event column; None uses each pair's common primary
    event.  Either limit may be None to disable that check.
    """

    event: str | None = None
    max_gain_points: float | None = 5.0
    max_appear_points: float | None = 1.0


@dataclass(frozen=True)
class Threshold:
    """One regression gate over a derived panel metric.

    ``metric`` is ``"<panel>.<metric>"`` (split on the first dot);
    ``direction`` names the *bad* direction.  ``max_delta`` bounds the
    absolute change in the bad direction; ``max_ratio`` bounds the
    after/before ratio (> 1 means growth).  At least one bound must be
    set.
    """

    metric: str
    direction: str = DIRECTION_UP
    max_delta: float | None = None
    max_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.direction not in (DIRECTION_UP, DIRECTION_DOWN):
            raise AnalysisError(
                f"threshold {self.metric!r}: direction must be "
                f"'up' or 'down', got {self.direction!r}"
            )
        if "." not in self.metric:
            raise AnalysisError(
                f"threshold metric {self.metric!r} must be "
                "'<panel>.<metric>'"
            )
        if self.max_delta is None and self.max_ratio is None:
            raise AnalysisError(
                f"threshold {self.metric!r} sets neither max_delta "
                "nor max_ratio"
            )

    @property
    def panel(self) -> str:
        return self.metric.split(".", 1)[0]

    @property
    def key(self) -> str:
        return self.metric.split(".", 1)[1]


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything ``viprof analyze`` needs to judge a summary pair."""

    symbols: SymbolRules = field(default_factory=SymbolRules)
    thresholds: tuple[Threshold, ...] = ()


#: The gates applied when no config file is given: symbol share growth,
#: resolution-cache effectiveness, and the kernel/unresolved layer shares
#: (the paper's headline axes).
DEFAULT_CONFIG = AnalysisConfig(
    symbols=SymbolRules(max_gain_points=5.0, max_appear_points=1.0),
    thresholds=(
        Threshold(
            metric="cache.hit_rate_pct",
            direction=DIRECTION_DOWN,
            max_delta=10.0,
        ),
        Threshold(
            metric="layers.kernel_pct", direction=DIRECTION_UP, max_delta=5.0
        ),
        Threshold(
            metric="layers.unresolved_pct",
            direction=DIRECTION_UP,
            max_delta=2.0,
        ),
    ),
)


def _number_or_none(
    d: dict[str, object], key: str, where: str
) -> float | None:
    v = d.get(key)
    if v is None:
        return None
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise AnalysisError(
            f"analysis config: {where}.{key} must be a number, got {v!r}"
        )
    return float(v)


def _parse_config(doc: object, source: str) -> AnalysisConfig:
    if not isinstance(doc, dict):
        raise AnalysisError(
            f"{source}: analysis config must be an object/table at top level"
        )
    symbols = SymbolRules()
    raw_symbols = doc.get("symbols")
    if raw_symbols is not None:
        if not isinstance(raw_symbols, dict):
            raise AnalysisError(f"{source}: [symbols] must be a table")
        event = raw_symbols.get("event")
        if event is not None and not isinstance(event, str):
            raise AnalysisError(
                f"{source}: symbols.event must be a string, got {event!r}"
            )
        symbols = SymbolRules(
            event=event,
            max_gain_points=_number_or_none(
                raw_symbols, "max_gain_points", "symbols"
            ),
            max_appear_points=_number_or_none(
                raw_symbols, "max_appear_points", "symbols"
            ),
        )
    thresholds: list[Threshold] = []
    raw_thresholds = doc.get("thresholds", [])
    if not isinstance(raw_thresholds, list):
        raise AnalysisError(f"{source}: thresholds must be an array of tables")
    for i, raw in enumerate(raw_thresholds):
        where = f"thresholds[{i}]"
        if not isinstance(raw, dict):
            raise AnalysisError(f"{source}: {where} must be a table")
        metric = raw.get("metric")
        if not isinstance(metric, str):
            raise AnalysisError(
                f"{source}: {where}.metric must be a string, got {metric!r}"
            )
        direction = raw.get("direction", DIRECTION_UP)
        if not isinstance(direction, str):
            raise AnalysisError(
                f"{source}: {where}.direction must be a string"
            )
        thresholds.append(
            Threshold(
                metric=metric,
                direction=direction,
                max_delta=_number_or_none(raw, "max_delta", where),
                max_ratio=_number_or_none(raw, "max_ratio", where),
            )
        )
    return AnalysisConfig(symbols=symbols, thresholds=tuple(thresholds))


def load_config(path: Path | str) -> AnalysisConfig:
    """Load an analysis config from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as e:
        raise AnalysisError(f"{path}: unreadable analysis config: {e}") \
            from None
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise AnalysisError(
                f"{path}: TOML configs need Python >= 3.11 (tomllib); "
                "use a JSON config on this interpreter"
            )
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as e:
            raise AnalysisError(f"{path}: bad TOML: {e}") from None
    else:
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise AnalysisError(f"{path}: bad JSON: {e}") from None
    return _parse_config(doc, str(path))
