"""Builders: each metrics producer's native stats → :class:`SessionSummary`.

This is the refactor seam of the unified-metrics model: the resolver
chain, the streaming aggregator, the collection daemon, salvage, and the
benchmark harnesses all keep their own counter structures (they are hot
paths), and this module is the *only* place that knows how each shape
maps onto summary panels.  Everything here emits raw counters — derived
rates belong to :mod:`repro.metrics.analyze`.

Panel vocabulary (all counters, mergeable by summation):

``layers``
    Per-resolver-stage hit counts (``kernel``, ``jit_epoch``,
    ``boot_image``, ``task_vma``, ``unresolved``, ...) plus ``total`` —
    the per-layer attribution the paper's vertical integration exists to
    provide.
``jit``
    The JIT epoch-walk split (own epoch / earlier epoch / unresolved /
    blocked at quarantine).
``cache``
    Resolution-cache ``hits``/``misses``.
``degraded``
    Post-salvage degradation counters (samples blocked at quarantine
    barriers).
``gc``
    GC-epoch cost: collections, code bodies moved/promoted, bytes
    promoted.
``collection``
    Daemon-side sample accounting (kernel/file/anon/jit classification,
    wakeups, buffer loss).
``daemon``
    Daemon overhead: cycles charged to ``oprofiled`` symbols.
``salvage``
    Crash-recovery loss accounting (files truncated/quarantined, records
    kept, bytes dropped, epochs fenced off).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.errors import AnalysisError, CodeMapError, SampleFormatError
from repro.metrics.model import (
    KIND_ARTIFACTS,
    KIND_COLLECTION,
    KIND_PROFILE,
    SCHEMA_VERSION,
    SUMMARY_NAME,
    SessionSummary,
    SymbolEntry,
)
from repro.profiling.record_codec import open_sample_record_file
from repro.profiling.report import ProfileReport

__all__ = [
    "resolution_panels",
    "gc_panel",
    "collection_panel",
    "salvage_panel",
    "summary_from_report",
    "summary_from_run",
    "collection_summary",
    "derive_summary",
    "load_session_summary",
    "report_json_doc",
    "write_session_summary",
]


def _int_counters(d: dict[str, object]) -> dict[str, int]:
    """The integer counters of a stats mapping (drops derived floats —
    panels hold raw counters only, so merging stays exact)."""
    return {
        k: v
        for k, v in d.items()
        if isinstance(v, int) and not isinstance(v, bool)
    }


def resolution_panels(
    stats: dict[str, object],
) -> dict[str, dict[str, int | float]]:
    """Panels from :meth:`repro.pipeline.resolver.ResolverChain.stats_dict`.

    Builds ``layers`` (per-stage hit counts + ``total``), ``jit`` (the
    epoch-walk detail), ``cache`` (hits/misses) and, for degraded
    post-salvage chains, ``degraded``.
    """
    panels: dict[str, dict[str, int | float]] = {}
    layers: dict[str, int | float] = {}
    jit: dict[str, int | float] = {}
    degraded: dict[str, int | float] = {}
    stages = stats.get("stages")
    if isinstance(stages, list):
        for entry in stages:
            if not isinstance(entry, dict):
                continue
            name = str(entry.get("stage", "?")).replace("-", "_")
            hits = entry.get("hits", 0)
            if isinstance(hits, int) and not isinstance(hits, bool):
                layers[name] = layers.get(name, 0) + hits
            detail = entry.get("detail")
            if isinstance(detail, dict):
                for k, v in _int_counters(detail).items():
                    jit[k] = jit.get(k, 0) + v
            deg = entry.get("degraded")
            if isinstance(deg, dict):
                for k, v in _int_counters(deg).items():
                    degraded[k] = degraded.get(k, 0) + v
    total = stats.get("total_samples")
    if isinstance(total, int) and not isinstance(total, bool):
        layers["total"] = total
    if layers:
        panels["layers"] = layers
    if jit:
        panels["jit"] = jit
    if degraded:
        panels["degraded"] = degraded
    cache = stats.get("cache")
    if isinstance(cache, dict):
        panels["cache"] = _int_counters(
            {"hits": cache.get("hits", 0), "misses": cache.get("misses", 0)}
        )
    return panels


def gc_panel(gc_stats: object) -> dict[str, int | float]:
    """GC-epoch cost counters from :class:`repro.jvm.gc.GcStats`."""
    fields = (
        "minor_collections",
        "major_collections",
        "code_bodies_moved",
        "code_bodies_promoted",
        "obsolete_bodies_reclaimed",
        "data_bytes_promoted",
    )
    out: dict[str, int | float] = {}
    for f in fields:
        v = getattr(gc_stats, f, None)
        if isinstance(v, int) and not isinstance(v, bool):
            out[f] = v
    return out


def collection_panel(
    daemon_stats: object, buffer_lost: int = 0
) -> dict[str, int | float]:
    """Daemon-side sample accounting from
    :class:`repro.oprofile.daemon.DaemonStats`."""
    fields = (
        "samples_logged",
        "kernel_samples",
        "file_samples",
        "anon_samples",
        "jit_samples",
        "wakeups",
    )
    out: dict[str, int | float] = {}
    for f in fields:
        v = getattr(daemon_stats, f, None)
        if isinstance(v, int) and not isinstance(v, bool):
            out[f] = v
    out["buffer_lost"] = buffer_lost
    return out


def salvage_panel(manifest: dict[str, object]) -> dict[str, int | float]:
    """Loss accounting from a ``salvage.json`` manifest dict (version 1).

    Computed from the per-artifact entries, so statcheck's VP110 can
    re-derive it and cross-check the embedded copy against the manifest's
    own claims.
    """
    panel: dict[str, int | float] = {
        "files_intact": 0,
        "files_truncated": 0,
        "files_quarantined": 0,
        "maps_intact": 0,
        "maps_quarantined": 0,
        "records_kept": 0,
        "bytes_dropped": 0,
        "quarantined_epochs": 0,
    }
    entries = manifest.get("sample_files")
    if isinstance(entries, list):
        for e in entries:
            if not isinstance(e, dict):
                continue
            action = e.get("action")
            if action == "intact":
                panel["files_intact"] += 1
            elif action == "truncated":
                panel["files_truncated"] += 1
            elif action == "quarantined":
                panel["files_quarantined"] += 1
            kept = e.get("records_kept")
            if isinstance(kept, int) and not isinstance(kept, bool):
                panel["records_kept"] += kept
            dropped = e.get("bytes_dropped")
            if isinstance(dropped, int) and not isinstance(dropped, bool):
                panel["bytes_dropped"] += dropped
    maps = manifest.get("maps")
    if isinstance(maps, list):
        for m in maps:
            if not isinstance(m, dict):
                continue
            if m.get("action") == "intact":
                panel["maps_intact"] += 1
            elif m.get("action") == "quarantined":
                panel["maps_quarantined"] += 1
    quarantined = manifest.get("quarantined_epochs")
    if isinstance(quarantined, list):
        panel["quarantined_epochs"] = len(quarantined)
    return panel


def summary_from_report(
    report: ProfileReport,
    stats: dict[str, object] | None = None,
    kind: str = KIND_PROFILE,
    meta: dict[str, object] | None = None,
    extra_panels: dict[str, dict[str, int | float]] | None = None,
) -> SessionSummary:
    """A resolved profile (and optionally its chain stats) as a summary.

    Symbols appear in report order (primary event descending, the
    opreport sort), so two summaries of the same run serialize
    identically.
    """
    symbols = [
        SymbolEntry(
            image=row.image,
            symbol=row.symbol,
            counts={
                ev: row.count(ev) for ev in report.events if row.count(ev)
            },
        )
        for row in report.sorted_rows()
    ]
    panels = resolution_panels(stats) if stats is not None else {}
    if extra_panels:
        for name, metrics in extra_panels.items():
            panels[name] = dict(metrics)
    return SessionSummary(
        kind=kind,
        events=tuple(report.events),
        totals={ev: report.totals.get(ev, 0) for ev in report.events},
        symbols=symbols,
        panels=panels,
        meta=dict(meta or {}),
    )


def summary_from_run(run: object, vr: object | None = None) -> SessionSummary:
    """The full-stack summary of one engine run
    (:class:`repro.system.engine.RunResult`).

    Combines the resolution-side panels (when a
    :class:`~repro.system.engine.ViprofReportResult` is given) with the
    run's collection-side accounting: daemon classification counters,
    daemon overhead cycles, and GC-epoch cost.
    """
    extra: dict[str, dict[str, int | float]] = {}
    daemon_stats = getattr(run, "daemon_stats", None)
    if daemon_stats is not None:
        extra["collection"] = collection_panel(
            daemon_stats, buffer_lost=getattr(run, "buffer_lost", 0)
        )
    session = getattr(run, "viprof_session", None)
    daemon = getattr(session, "daemon", None)
    overhead = getattr(daemon, "overhead_panel", None)
    if callable(overhead):
        extra["daemon"] = overhead()
    gc_stats = getattr(run, "gc_stats", None)
    if gc_stats is not None:
        panel = gc_panel(gc_stats)
        if panel:
            extra["gc"] = panel
    meta: dict[str, object] = {
        "workload": getattr(run, "workload_name", None),
        "mode": getattr(getattr(run, "mode", None), "value", None),
        "wall_cycles": getattr(run, "wall_cycles", None),
        "workload_cycles": getattr(run, "workload_cycles", None),
    }
    meta = {k: v for k, v in meta.items() if v is not None}
    if vr is not None:
        return summary_from_report(
            vr.report, stats=vr.stage_stats, meta=meta, extra_panels=extra
        )
    report = ProfileReport(events=(), rows=[], totals={})
    return summary_from_report(report, meta=meta, extra_panels=extra)


def _event_totals(sample_dir: Path) -> dict[str, int]:
    """Per-event record counts from the sample files' headers (skips the
    quarantine subdirectory, like the pipeline's directory source)."""
    totals: dict[str, int] = {}
    if not sample_dir.is_dir():
        return totals
    for path in sorted(sample_dir.glob("*.samples")):
        try:
            with open_sample_record_file(path) as reader:
                ev = reader.event_name
                totals[ev] = totals.get(ev, 0) + len(reader)
        except SampleFormatError:
            # A torn file is salvage's problem; the collection summary
            # counts what is readable.
            continue
    return totals


def collection_summary(
    sample_dir: Path | str,
    daemon_stats: object,
    buffer_lost: int = 0,
    overhead: dict[str, int | float] | None = None,
    registration: object | None = None,
) -> SessionSummary:
    """The collection-side summary a live session writes at teardown.

    Per-event totals come from the sample files actually on disk (the
    daemon's ``samples_logged`` may exceed them when a crash dropped
    buffered records — VP110 checks exactly that agreement).
    """
    sample_dir = Path(sample_dir)
    totals = _event_totals(sample_dir)
    panels: dict[str, dict[str, int | float]] = {
        "collection": collection_panel(daemon_stats, buffer_lost=buffer_lost)
    }
    if overhead:
        panels["daemon"] = dict(overhead)
    meta: dict[str, object] = {}
    task_id = getattr(registration, "task_id", None)
    if isinstance(task_id, int):
        meta["registration"] = {
            "task_id": task_id,
            "heap_low": getattr(registration, "heap_low", 0),
            "heap_high": getattr(registration, "heap_high", 0),
        }
    return SessionSummary(
        kind=KIND_COLLECTION,
        events=tuple(totals),
        totals=totals,
        panels=panels,
        meta=meta,
    )


def _registration_bounds(
    session_dir: Path,
) -> tuple[int, int, int] | None:
    """(task_id, heap_low, heap_high) from the session's own metadata —
    ``meta.json`` (archives, fixtures) or the embedded collection
    summary."""
    meta_path = session_dir / "meta.json"
    candidates: list[object] = []
    if meta_path.is_file():
        try:
            candidates.append(
                json.loads(meta_path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError):
            pass
    summary_path = session_dir / SUMMARY_NAME
    if summary_path.is_file():
        try:
            candidates.append(
                SessionSummary.load(summary_path).meta
            )
        except AnalysisError:
            pass
    for cand in candidates:
        if not isinstance(cand, dict):
            continue
        reg = cand.get("registration")
        if not isinstance(reg, dict):
            continue
        try:
            return (
                int(reg["task_id"]),
                int(reg["heap_low"]),
                int(reg["heap_high"]),
            )
        except (KeyError, TypeError, ValueError):
            continue
    return None


def derive_summary(session_dir: Path | str) -> SessionSummary:
    """Derive a summary offline from a session directory's artifacts alone.

    No kernel or boot image is available here, so the per-layer split is
    coarser than a full report: ``kernel`` is the kernel-mode sample
    count, ``jit`` the user samples inside the registered VM heap (when a
    registration is on record), ``user`` the rest.  JIT samples *are*
    symbolized — the epoch code maps are in the directory, and the
    backward walk needs nothing else — which is what makes two session
    directories diffable by (image, symbol) without re-running anything.
    """
    from repro.jvm.machine import JIT_APP_IMAGE_LABEL
    from repro.pipeline.stages import UNRESOLVED_JIT
    from repro.viprof.codemap import CodeMapIndex, RESOLVE_BLOCKED

    session_dir = Path(session_dir)
    if not session_dir.is_dir():
        raise AnalysisError(f"{session_dir}: not a session directory")
    sample_dir = session_dir / "samples"
    map_dir = session_dir / "jit-maps"
    if not sample_dir.is_dir() and not map_dir.is_dir():
        raise AnalysisError(
            f"{session_dir}: no samples/ or jit-maps/ — not a VIProf "
            "session directory"
        )

    quarantined: tuple[int, ...] = ()
    salvage: dict[str, object] | None = None
    salvage_path = session_dir / "salvage.json"
    if salvage_path.is_file():
        try:
            loaded = json.loads(salvage_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            raise AnalysisError(
                f"{salvage_path}: unreadable salvage manifest: {e}"
            ) from None
        if isinstance(loaded, dict):
            salvage = loaded
            q = loaded.get("quarantined_epochs")
            if isinstance(q, list):
                quarantined = tuple(e for e in q if isinstance(e, int))

    codemaps = None
    if map_dir.is_dir():
        try:
            codemaps = CodeMapIndex.load_dir(map_dir, quarantined=quarantined)
        except CodeMapError as e:
            raise AnalysisError(
                f"{map_dir}: unreadable code maps: {e} — salvage the "
                "session first (viprof recover)"
            ) from None

    bounds = _registration_bounds(session_dir)
    totals: dict[str, int] = {}
    events: list[str] = []
    layers: dict[str, int | float] = {
        "kernel": 0,
        "jit": 0,
        "user": 0,
        "total": 0,
    }
    jit_detail: dict[str, int | float] = {
        "resolved": 0,
        "unresolved": 0,
        "blocked_at_quarantine": 0,
    }
    symbols: dict[tuple[str, str], SymbolEntry] = {}

    def _count(image: str, symbol: str, ev: str, n: int = 1) -> None:
        entry = symbols.get((image, symbol))
        if entry is None:
            entry = SymbolEntry(image=image, symbol=symbol)
            symbols[(image, symbol)] = entry
        entry.counts[ev] = entry.counts.get(ev, 0) + n

    if sample_dir.is_dir():
        for path in sorted(sample_dir.glob("*.samples")):
            try:
                with open_sample_record_file(path) as reader:
                    ev = reader.event_name
                    if ev not in totals:
                        totals[ev] = 0
                        events.append(ev)
                    for rec in reader:
                        s = rec.sample
                        totals[ev] += 1
                        layers["total"] += 1
                        if s.kernel_mode:
                            layers["kernel"] += 1
                            continue
                        in_heap = (
                            bounds is not None
                            and s.task_id == bounds[0]
                            and bounds[1] <= s.pc < bounds[2]
                        )
                        if not in_heap:
                            layers["user"] += 1
                            continue
                        layers["jit"] += 1
                        if codemaps is None:
                            jit_detail["unresolved"] += 1
                            _count(JIT_APP_IMAGE_LABEL, UNRESOLVED_JIT, ev)
                            continue
                        hit = codemaps.resolve(s.epoch, s.pc)
                        if hit is None:
                            jit_detail["unresolved"] += 1
                            _count(JIT_APP_IMAGE_LABEL, UNRESOLVED_JIT, ev)
                        elif hit is RESOLVE_BLOCKED:
                            jit_detail["blocked_at_quarantine"] += 1
                            _count(JIT_APP_IMAGE_LABEL, UNRESOLVED_JIT, ev)
                        else:
                            record, _epoch = hit
                            jit_detail["resolved"] += 1
                            _count(JIT_APP_IMAGE_LABEL, record.name, ev)
            except SampleFormatError as e:
                raise AnalysisError(
                    f"{path}: unreadable sample file: {e} — salvage the "
                    "session first (viprof recover)"
                ) from None

    panels: dict[str, dict[str, int | float]] = {"layers": layers}
    if layers["jit"]:
        panels["jit"] = jit_detail
    if salvage is not None:
        panels["salvage"] = salvage_panel(salvage)

    ordered = sorted(
        symbols.values(),
        key=lambda e: tuple(-e.count(ev) for ev in events),
    )
    return SessionSummary(
        kind=KIND_ARTIFACTS,
        events=tuple(events),
        totals=totals,
        symbols=ordered,
        panels=panels,
        meta={"session_dir": session_dir.name},
    )


def load_session_summary(session_dir: Path | str) -> SessionSummary:
    """A session directory's summary: the embedded ``summary.json`` when
    the session wrote one at teardown, else derived on demand from the
    artifacts."""
    session_dir = Path(session_dir)
    embedded = session_dir / SUMMARY_NAME
    if embedded.is_file():
        return SessionSummary.load(embedded)
    return derive_summary(session_dir)


def report_json_doc(
    report: ProfileReport, stats: dict[str, object] | None = None
) -> dict[str, object]:
    """The ``report --json`` document: the legacy shape (``events`` /
    ``symbols`` with percents / ``resolution``) plus the unified model's
    additive fields (``schema_version``, ``panels``).

    :func:`repro.profiling.export.report_to_json` serializes this — the
    legacy keys are untouched so existing consumers keep parsing.
    """
    summary = summary_from_report(report, stats=stats)
    doc: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "events": {ev: report.totals.get(ev, 0) for ev in report.events},
        "symbols": [
            {
                "image": row.image,
                "symbol": row.symbol,
                "counts": {ev: row.count(ev) for ev in report.events},
                "percent": {
                    ev: round(report.percent(row, ev), 4)
                    for ev in report.events
                },
            }
            for row in report.sorted_rows()
        ],
        "panels": {k: dict(v) for k, v in summary.panels.items()},
    }
    if stats is not None:
        doc["resolution"] = stats
    return doc


def _commit_hash() -> str | None:
    """The working tree's commit hash, when running from a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and len(commit) == 40 else None


def write_session_summary(session_dir: Path | str) -> Path:
    """Derive a session directory's summary from its artifacts and write
    it as canonical ``summary.json`` (the tool statcheck fixtures use)."""
    session_dir = Path(session_dir)
    summary = derive_summary(session_dir)
    return summary.save(session_dir / SUMMARY_NAME)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.metrics.build <session-dir> [...]`` — write the
    derived ``summary.json`` into each session directory."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.metrics.build SESSION_DIR...",
              file=sys.stderr)
        return 2
    for p in paths:
        out = write_session_summary(p)
        print(out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
