"""Session comparison: align two summaries, derive rates, judge deltas.

``viprof analyze A B`` loads two :class:`~repro.metrics.model.SessionSummary`
inputs (summary files, ``BENCH_*.json`` artifacts, legacy ``report --json``
documents, or session directories — directories are re-derived from their
artifacts on demand), aligns them by (image, symbol) and by panel metric,
and evaluates the share deltas against an
:class:`~repro.metrics.panels.AnalysisConfig`.  The result is
deterministic: the same pair of inputs always produces the same JSON
bytes (floats are rounded at serialization, keys sorted).

Raw panels hold counters; comparison happens on **derived metrics**
(:func:`derived_metrics`), which add rates generically:

* a panel with a positive ``total`` gets ``<key>_pct`` for every other
  counter (``layers.kernel_pct``, ...);
* a panel with ``hits``/``misses`` gets ``hit_rate_pct``.

Symbol alignment mirrors :func:`repro.profiling.diff.diff_reports` — that
function is now a thin wrapper over :func:`align_shares` — with
``appeared``/``vanished`` flags for methods present on only one side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError
from repro.metrics.build import derive_summary
from repro.metrics.model import SessionSummary
from repro.metrics.panels import (
    DEFAULT_CONFIG,
    DIRECTION_DOWN,
    DIRECTION_UP,
    AnalysisConfig,
)

__all__ = [
    "SymbolDelta",
    "MetricDelta",
    "Regression",
    "AnalysisResult",
    "align_shares",
    "derived_metrics",
    "analyze",
    "load_input",
]


@dataclass(frozen=True, slots=True)
class SymbolDelta:
    """Share movement of one (image, symbol) between two summaries."""

    image: str
    symbol: str
    before_pct: float
    after_pct: float

    @property
    def delta(self) -> float:
        return self.after_pct - self.before_pct

    @property
    def appeared(self) -> bool:
        return self.before_pct == 0.0 and self.after_pct > 0.0

    @property
    def vanished(self) -> bool:
        return self.before_pct > 0.0 and self.after_pct == 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "image": self.image,
            "symbol": self.symbol,
            "before_pct": round(self.before_pct, 4),
            "after_pct": round(self.after_pct, 4),
            "delta": round(self.delta, 4),
            "appeared": self.appeared,
            "vanished": self.vanished,
        }


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """Movement of one derived panel metric between two summaries."""

    panel: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> float | None:
        """after/before, None when the baseline is zero."""
        return self.after / self.before if self.before else None

    def to_dict(self) -> dict[str, object]:
        ratio = self.ratio
        return {
            "panel": self.panel,
            "metric": self.metric,
            "before": round(self.before, 4),
            "after": round(self.after, 4),
            "delta": round(self.delta, 4),
            "ratio": round(ratio, 4) if ratio is not None else None,
        }


@dataclass(frozen=True, slots=True)
class Regression:
    """One tripped gate: a symbol share shift or a threshold violation."""

    kind: str  # "symbol" | "metric"
    subject: str
    message: str
    before: float
    after: float
    limit: float

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "message": self.message,
            "before": round(self.before, 4),
            "after": round(self.after, 4),
            "limit": self.limit,
        }


def align_shares(
    before: dict[tuple[str, str], float],
    after: dict[tuple[str, str], float],
) -> list[SymbolDelta]:
    """Align two (image, symbol) → share maps over their key union, in
    sorted key order (the deterministic row order ``diff`` has always
    used)."""
    return [
        SymbolDelta(
            image=img,
            symbol=sym,
            before_pct=before.get((img, sym), 0.0),
            after_pct=after.get((img, sym), 0.0),
        )
        for (img, sym) in sorted(set(before) | set(after))
    ]


def derived_metrics(summary: SessionSummary) -> dict[str, dict[str, float]]:
    """Every panel's counters plus generically derived rates.

    Derivation is shape-driven, not panel-name-driven, so any producer's
    panel gets rates for free: ``total`` yields per-key percentages,
    ``hits``/``misses`` yield ``hit_rate_pct``.
    """
    out: dict[str, dict[str, float]] = {}
    for name, panel in summary.panels.items():
        metrics: dict[str, float] = {
            k: float(v) for k, v in panel.items()
        }
        total = panel.get("total")
        if isinstance(total, (int, float)) and total > 0:
            for k, v in panel.items():
                if k != "total":
                    metrics[f"{k}_pct"] = 100.0 * v / total
        hits = panel.get("hits")
        misses = panel.get("misses")
        if (
            isinstance(hits, (int, float))
            and isinstance(misses, (int, float))
            and hits + misses > 0
        ):
            metrics["hit_rate_pct"] = 100.0 * hits / (hits + misses)
        out[name] = metrics
    return out


@dataclass
class AnalysisResult:
    """Everything one analyze pass computed, JSON-able and renderable."""

    a_label: str
    b_label: str
    kind: str
    event: str | None
    symbols: list[SymbolDelta] = field(default_factory=list)
    metrics: list[MetricDelta] = field(default_factory=list)
    regressions: list[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def sorted_symbols(self) -> list[SymbolDelta]:
        return sorted(
            self.symbols, key=lambda s: (-abs(s.delta), s.image, s.symbol)
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "kind": self.kind,
            "event": self.event,
            "symbols": [s.to_dict() for s in self.sorted_symbols()],
            "metrics": [m.to_dict() for m in self.metrics],
            "regressions": [r.to_dict() for r in self.regressions],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-stable across repeated runs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def format_table(self, limit: int = 15) -> str:
        lines = [f"analyze: {self.a_label} -> {self.b_label} [{self.kind}]"]
        if self.symbols:
            lines.append(
                f"{'before %':>9} {'after %':>9} {'delta':>8}  "
                f"image : symbol ({self.event})"
            )
            for s in self.sorted_symbols()[:limit]:
                flag = (
                    "  [appeared]" if s.appeared
                    else "  [vanished]" if s.vanished else ""
                )
                lines.append(
                    f"{s.before_pct:9.3f} {s.after_pct:9.3f} "
                    f"{s.delta:+8.3f}  {s.image} : {s.symbol}{flag}"
                )
        if self.metrics:
            lines.append(
                f"{'before':>12} {'after':>12} {'delta':>10}  panel metric"
            )
            for m in self.metrics:
                lines.append(
                    f"{m.before:12.4f} {m.after:12.4f} {m.delta:+10.4f}  "
                    f"{m.panel}.{m.metric}"
                )
        if self.regressions:
            lines.append("regressions:")
            for r in self.regressions:
                lines.append(f"  FAIL [{r.kind}] {r.subject}: {r.message}")
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def _pick_event(
    a: SessionSummary, b: SessionSummary, config: AnalysisConfig
) -> str | None:
    if config.symbols.event is not None:
        ev = config.symbols.event
        if ev in a.events and ev in b.events:
            return ev
        raise AnalysisError(
            f"configured symbols.event {ev!r} missing from one summary "
            f"(a: {list(a.events)}, b: {list(b.events)})"
        )
    common = [e for e in a.events if e in b.events]
    return common[0] if common else None


def analyze(
    a: SessionSummary,
    b: SessionSummary,
    config: AnalysisConfig | None = None,
    event: str | None = None,
    a_label: str = "a",
    b_label: str = "b",
) -> AnalysisResult:
    """Compare baseline ``a`` against candidate ``b``.

    Symbol shares are compared on one event (explicit ``event``, the
    config's pinned event, or the first event both summaries carry — no
    common event means no symbol comparison, as for collection/bench
    summaries).  Every derived metric present in *both* summaries becomes
    a :class:`MetricDelta`; the config's thresholds and symbol rules
    decide which deltas are regressions.

    Raises:
        AnalysisError: when the summaries are of different kinds (a
            profile and a bench artifact are not comparable).
    """
    if config is None:
        config = DEFAULT_CONFIG
    if a.kind != b.kind:
        raise AnalysisError(
            f"cannot analyze a {a.kind!r} summary against a {b.kind!r} "
            "summary — re-derive both from session directories or pass "
            "matching artifacts"
        )
    if event is not None:
        if event not in a.events or event not in b.events:
            raise AnalysisError(f"event {event!r} missing from one summary")
        ev = event
    else:
        ev = _pick_event(a, b, config)

    result = AnalysisResult(
        a_label=a_label, b_label=b_label, kind=a.kind, event=ev
    )

    if ev is not None:
        result.symbols = align_shares(
            a.symbol_shares(ev), b.symbol_shares(ev)
        )
        rules = config.symbols
        for s in result.sorted_symbols():
            if s.appeared:
                if (
                    rules.max_appear_points is not None
                    and s.after_pct > rules.max_appear_points
                ):
                    result.regressions.append(
                        Regression(
                            kind="symbol",
                            subject=f"{s.image}:{s.symbol}",
                            message=(
                                f"new symbol at {s.after_pct:.3f}% share "
                                f"(limit {rules.max_appear_points}%)"
                            ),
                            before=s.before_pct,
                            after=s.after_pct,
                            limit=rules.max_appear_points,
                        )
                    )
            elif (
                rules.max_gain_points is not None
                and s.delta > rules.max_gain_points
            ):
                result.regressions.append(
                    Regression(
                        kind="symbol",
                        subject=f"{s.image}:{s.symbol}",
                        message=(
                            f"share grew {s.delta:+.3f} points "
                            f"(limit +{rules.max_gain_points})"
                        ),
                        before=s.before_pct,
                        after=s.after_pct,
                        limit=rules.max_gain_points,
                    )
                )

    da, db = derived_metrics(a), derived_metrics(b)
    for panel in sorted(set(da) & set(db)):
        for metric in sorted(set(da[panel]) & set(db[panel])):
            result.metrics.append(
                MetricDelta(
                    panel=panel,
                    metric=metric,
                    before=da[panel][metric],
                    after=db[panel][metric],
                )
            )
    by_key = {(m.panel, m.metric): m for m in result.metrics}
    for th in config.thresholds:
        m = by_key.get((th.panel, th.key))
        if m is None:
            continue  # gated metric absent from this pair — not an error
        bad = m.delta > 0 if th.direction == DIRECTION_UP else m.delta < 0
        if not bad:
            continue
        if th.max_delta is not None and abs(m.delta) > th.max_delta:
            result.regressions.append(
                Regression(
                    kind="metric",
                    subject=th.metric,
                    message=(
                        f"moved {m.delta:+.4f} ({th.direction} is bad, "
                        f"limit {th.max_delta})"
                    ),
                    before=m.before,
                    after=m.after,
                    limit=th.max_delta,
                )
            )
            continue
        if th.max_ratio is not None and m.before > 0:
            ratio = m.after / m.before
            if th.direction == DIRECTION_UP:
                grew = ratio
            else:
                grew = (1.0 / ratio) if ratio > 0 else float("inf")
            if grew > th.max_ratio:
                result.regressions.append(
                    Regression(
                        kind="metric",
                        subject=th.metric,
                        message=(
                            f"ratio {ratio:.4f}x ({th.direction} is bad, "
                            f"limit {th.max_ratio}x)"
                        ),
                        before=m.before,
                        after=m.after,
                        limit=th.max_ratio,
                    )
                )
    return result


def load_input(path: Path | str) -> SessionSummary:
    """Load one analyze input, whatever its flavor.

    * a **directory** is treated as a session directory and re-derived
      from its artifacts (deterministic regardless of whether a
      ``summary.json`` is embedded — point at the file to compare the
      embedded copy itself);
    * a ``.json`` file holding ``schema_version`` is parsed as a
      serialized :class:`SessionSummary` (this covers ``summary.json``
      and the stamped ``BENCH_*.json`` artifacts, whose summary rides
      under the ``"summary"`` key);
    * a legacy ``report --json`` document (``events`` + ``symbols``) is
      converted on the fly.
    """
    path = Path(path)
    if path.is_dir():
        return derive_summary(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as e:
        raise AnalysisError(f"{path}: unreadable input: {e}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise AnalysisError(f"{path}: not valid JSON: {e}") from None
    if not isinstance(doc, dict):
        raise AnalysisError(f"{path}: not a JSON object")
    try:
        if "schema_version" in doc and "kind" in doc:
            return SessionSummary.from_dict(doc)
        embedded = doc.get("summary")
        if isinstance(embedded, dict) and "schema_version" in embedded:
            return SessionSummary.from_dict(embedded)
        if "events" in doc and "symbols" in doc:
            return _from_legacy_report_doc(doc)
    except AnalysisError as e:
        raise AnalysisError(f"{path}: {e}") from None
    raise AnalysisError(
        f"{path}: unrecognized input — expected a session directory, a "
        "summary.json, a BENCH_*.json, or a report --json document"
    )


def _from_legacy_report_doc(doc: dict[str, object]) -> SessionSummary:
    """A pre-model ``report --json`` document as a summary (best effort:
    counts and totals are exact; resolution stages become panels)."""
    from repro.metrics.build import resolution_panels
    from repro.metrics.model import SymbolEntry

    events_raw = doc.get("events")
    if not isinstance(events_raw, dict):
        raise AnalysisError("legacy report document has no events object")
    totals: dict[str, int] = {}
    for ev, n in events_raw.items():
        if not isinstance(n, int) or isinstance(n, bool):
            raise AnalysisError(
                f"legacy report total for {ev!r} is not an integer: {n!r}"
            )
        totals[ev] = n
    symbols: list[SymbolEntry] = []
    rows = doc.get("symbols")
    if not isinstance(rows, list):
        raise AnalysisError("legacy report document has no symbols list")
    for row in rows:
        if not isinstance(row, dict):
            continue
        image, symbol = row.get("image"), row.get("symbol")
        counts = row.get("counts")
        if not (
            isinstance(image, str)
            and isinstance(symbol, str)
            and isinstance(counts, dict)
        ):
            raise AnalysisError(f"bad legacy symbol row: {row!r}")
        symbols.append(
            SymbolEntry(
                image=image,
                symbol=symbol,
                counts={
                    ev: n
                    for ev, n in counts.items()
                    if isinstance(n, int) and not isinstance(n, bool) and n
                },
            )
        )
    stats = doc.get("resolution")
    panels = resolution_panels(stats) if isinstance(stats, dict) else {}
    existing = doc.get("panels")
    if isinstance(existing, dict):
        for name, metrics in existing.items():
            if isinstance(metrics, dict):
                panels[name] = {
                    k: v
                    for k, v in metrics.items()
                    if isinstance(v, (int, float))
                    and not isinstance(v, bool)
                }
    return SessionSummary(
        events=tuple(events_raw),
        totals=totals,
        symbols=symbols,
        panels=panels,
    )
