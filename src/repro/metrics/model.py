"""The unified session-metrics model: :class:`SessionSummary`.

Every metrics producer in the tree — the streaming pipeline
(``run_pipeline`` / ``report --json``), the collection daemon, salvage,
and both benchmark harnesses — emits the same versioned, mergeable shape:
per-(image, symbol) sample counts plus named **layer panels** of raw
counters (kernel/JIT/boot-image attribution, GC-epoch cost, daemon
overhead, cache hits, salvage loss accounting).  One model means two runs
can always be *compared*: ``viprof analyze`` (:mod:`repro.metrics.analyze`)
aligns two summaries by (image, symbol) and by panel metric and computes
share deltas — the paper's whole point is that vertically integrated
profiles keep JIT methods' identities across runs even though their
addresses never repeat.

Design rules:

* **Panels hold raw counters only** (hit counts, cycle counts, byte
  counts) — never derived rates.  Raw counters merge by summation, so
  :meth:`SessionSummary.merge` is exact; rates (``kernel_pct``,
  ``hit_rate_pct``) are derived at analysis time
  (:func:`repro.metrics.analyze.derived_metrics`).
* **Serialization is canonical**: :meth:`SessionSummary.to_canonical_json`
  sorts keys and fixes separators, so the same summary always produces
  the same bytes, and ``summary == SessionSummary.from_json(
  summary.to_canonical_json())`` round-trips exactly (property-tested in
  ``tests/metrics/test_model_roundtrip.py``).
* **Versioned**: every summary carries ``schema_version``; parsers reject
  versions they do not understand instead of misreading them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError

__all__ = [
    "SCHEMA_VERSION",
    "KIND_PROFILE",
    "KIND_COLLECTION",
    "KIND_ARTIFACTS",
    "KIND_BENCH",
    "SUMMARY_NAME",
    "SymbolEntry",
    "SessionSummary",
]

#: Version stamped into (and required from) every serialized summary.
SCHEMA_VERSION = 1

#: A resolved profile: symbol rows + resolution-side panels.
KIND_PROFILE = "profile"
#: Collection-side accounting a live session writes at teardown.
KIND_COLLECTION = "collection"
#: Derived offline from a session directory's artifacts alone.
KIND_ARTIFACTS = "artifacts"
#: A benchmark harness result (``BENCH_*.json``).
KIND_BENCH = "bench"

_KINDS = (KIND_PROFILE, KIND_COLLECTION, KIND_ARTIFACTS, KIND_BENCH)

#: File name a session's collection summary is stored under.
SUMMARY_NAME = "summary.json"


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise AnalysisError(f"malformed session summary: {msg}")


def _check_number(value: object, where: str) -> int | float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AnalysisError(
            f"malformed session summary: {where} must be a number, "
            f"got {value!r}"
        )
    return value


@dataclass
class SymbolEntry:
    """Aggregated sample counts for one (image, symbol) pair."""

    image: str
    symbol: str
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.image, self.symbol)

    def count(self, event: str) -> int:
        return self.counts.get(event, 0)

    def to_dict(self) -> dict[str, object]:
        return {
            "image": self.image,
            "symbol": self.symbol,
            "counts": dict(self.counts),
        }

    @classmethod
    def from_dict(cls, d: object) -> "SymbolEntry":
        _require(isinstance(d, dict), f"symbol entry is not an object: {d!r}")
        image, symbol = d.get("image"), d.get("symbol")
        _require(
            isinstance(image, str) and isinstance(symbol, str),
            f"symbol entry needs string image/symbol: {d!r}",
        )
        counts = d.get("counts")
        _require(
            isinstance(counts, dict),
            f"symbol entry {image}:{symbol} has no counts object",
        )
        out: dict[str, int] = {}
        for ev, n in counts.items():
            _require(
                isinstance(ev, str)
                and isinstance(n, int)
                and not isinstance(n, bool),
                f"symbol entry {image}:{symbol} count {ev!r}={n!r} "
                "is not an integer",
            )
            out[ev] = n
        return cls(image=image, symbol=symbol, counts=out)


@dataclass
class SessionSummary:
    """One run's metrics, in the shape every producer emits.

    ``events`` fixes column order (first event is the primary, as in
    :class:`~repro.profiling.report.ProfileReport`); ``totals`` holds
    per-event sample totals; ``symbols`` the per-(image, symbol) counts
    in report order; ``panels`` maps a panel name to raw counters
    (``{"layers": {"kernel": 812, ...}}``); ``meta`` carries
    non-mergeable provenance (workload, seed, cpu_count, commit).
    """

    kind: str = KIND_PROFILE
    schema_version: int = SCHEMA_VERSION
    events: tuple[str, ...] = ()
    totals: dict[str, int] = field(default_factory=dict)
    symbols: list[SymbolEntry] = field(default_factory=list)
    panels: dict[str, dict[str, int | float]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AnalysisError(
                f"unknown summary kind {self.kind!r} (known: {_KINDS})"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Samples across every event (the layer-share denominator)."""
        return sum(self.totals.values())

    @property
    def primary_event(self) -> str | None:
        return self.events[0] if self.events else None

    def symbol_shares(self, event: str) -> dict[tuple[str, str], float]:
        """Percent share per (image, symbol) for one event (0..100)."""
        total = self.totals.get(event, 0)
        if not total:
            return {}
        return {
            e.key: 100.0 * e.count(event) / total
            for e in self.symbols
            if e.count(event)
        }

    def panel(self, name: str) -> dict[str, int | float]:
        return self.panels.get(name, {})

    # ------------------------------------------------------------------
    # merging (exact: panels/counts are raw counters)
    # ------------------------------------------------------------------

    def merge(self, other: "SessionSummary") -> "SessionSummary":
        """Fold another summary of the same kind into this one, in place.

        Counters (totals, symbol counts, panel metrics) are summed;
        events and symbols are appended in the other's first-seen order
        (mirroring :meth:`~repro.profiling.report.StreamingAggregator.
        merge`); ``meta`` keeps only entries both sides agree on.
        """
        if other.kind != self.kind:
            raise AnalysisError(
                f"cannot merge summary kind {other.kind!r} into {self.kind!r}"
            )
        if other.schema_version != self.schema_version:
            raise AnalysisError(
                f"cannot merge schema version {other.schema_version} "
                f"into {self.schema_version}"
            )
        for ev in other.events:
            if ev not in self.events:
                self.events = (*self.events, ev)
        for ev, n in other.totals.items():
            self.totals[ev] = self.totals.get(ev, 0) + n
        by_key = {e.key: e for e in self.symbols}
        for e in other.symbols:
            mine = by_key.get(e.key)
            if mine is None:
                mine = SymbolEntry(image=e.image, symbol=e.symbol)
                by_key[e.key] = mine
                self.symbols.append(mine)
            for ev, n in e.counts.items():
                mine.counts[ev] = mine.counts.get(ev, 0) + n
        for name, metrics in other.panels.items():
            panel = self.panels.setdefault(name, {})
            for k, v in metrics.items():
                panel[k] = panel.get(k, 0) + v
        self.meta = {
            k: v for k, v in self.meta.items()
            if k in other.meta and other.meta[k] == v
        }
        return self

    def __add__(self, other: "SessionSummary") -> "SessionSummary":
        out = SessionSummary(kind=self.kind, schema_version=self.schema_version)
        return out.merge(self).merge(other)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "events": list(self.events),
            "totals": dict(self.totals),
            "symbols": [e.to_dict() for e in self.symbols],
            "panels": {k: dict(v) for k, v in self.panels.items()},
            "meta": dict(self.meta),
        }

    def to_canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, fixed separators,
        trailing newline — the same summary always yields the same bytes."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, indent=2)
            + "\n"
        )

    @classmethod
    def from_dict(cls, d: object) -> "SessionSummary":
        _require(isinstance(d, dict), f"summary is not an object: {type(d)}")
        version = d.get("schema_version")
        if version != SCHEMA_VERSION:
            raise AnalysisError(
                f"unsupported summary schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        kind = d.get("kind")
        _require(isinstance(kind, str), f"summary kind {kind!r} not a string")
        events = d.get("events", [])
        _require(
            isinstance(events, list)
            and all(isinstance(e, str) for e in events),
            "events must be a list of strings",
        )
        totals = d.get("totals", {})
        _require(isinstance(totals, dict), "totals must be an object")
        for ev, n in totals.items():
            _require(
                isinstance(n, int) and not isinstance(n, bool),
                f"total for {ev!r} is not an integer: {n!r}",
            )
        symbols_raw = d.get("symbols", [])
        _require(isinstance(symbols_raw, list), "symbols must be a list")
        panels_raw = d.get("panels", {})
        _require(isinstance(panels_raw, dict), "panels must be an object")
        panels: dict[str, dict[str, int | float]] = {}
        for name, metrics in panels_raw.items():
            _require(
                isinstance(metrics, dict),
                f"panel {name!r} is not an object",
            )
            panels[name] = {
                k: _check_number(v, f"panel {name!r} metric {k!r}")
                for k, v in metrics.items()
            }
        meta = d.get("meta", {})
        _require(isinstance(meta, dict), "meta must be an object")
        return cls(
            kind=kind,
            schema_version=version,
            events=tuple(events),
            totals=dict(totals),
            symbols=[SymbolEntry.from_dict(s) for s in symbols_raw],
            panels=panels,
            meta=dict(meta),
        )

    @classmethod
    def from_json(cls, text: str) -> "SessionSummary":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as e:
            raise AnalysisError(f"summary is not valid JSON: {e}") from None
        return cls.from_dict(d)

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(self.to_canonical_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SessionSummary":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as e:
            raise AnalysisError(f"{path}: unreadable summary: {e}") from None
        try:
            return cls.from_json(text)
        except AnalysisError as e:
            raise AnalysisError(f"{path}: {e}") from None
