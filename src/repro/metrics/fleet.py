"""Cross-domain fleet metrics: per-domain summaries and the fleet rollup.

A fleet run produces one :class:`~repro.metrics.model.SessionSummary` per
guest domain plus a merged *rollup*.  Three rules make the rollup exact
and order-independent:

* every per-domain summary carries its panels twice — once under the
  shared names (``layers``, ``jit``, ``cache``, ...) and once prefixed
  ``dom<N>.<panel>`` — so the merged summary keeps both the fleet-wide
  totals (shared panels sum across domains) and each domain's own
  counters (prefixed names are unique per domain, so merging passes them
  through untouched);
* every per-domain summary carries a ``fleet`` panel of ``{"domains": 1}``
  — domain counting is itself a mergeable counter, not post-hoc metadata;
* :func:`fleet_rollup` normalizes event and symbol order
  (:func:`normalize_summary`), because ``SessionSummary.merge`` appends
  in first-seen order — the *counters* are order-independent but the
  serialization would not be.  After normalization, merging the
  per-domain summaries in any order yields byte-identical rollups
  (property-tested in ``tests/xen/test_fleet_properties.py``).

``viprof analyze`` needs no fleet-specific support: its derived metrics
iterate panels generically, so ``dom3.jit`` regressions gate exactly like
``jit`` regressions.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AnalysisError
from repro.metrics.build import resolution_panels, summary_from_report
from repro.metrics.model import SessionSummary
from repro.profiling.report import ProfileReport

__all__ = [
    "per_domain_stats",
    "domain_summary",
    "normalize_summary",
    "fleet_rollup",
    "fleet_report_doc",
]


def per_domain_stats(stats: dict[str, object]) -> dict[int, dict[str, object]]:
    """Each domain's inner-chain ``stats_dict`` out of a fleet chain's.

    The multi-stack chain's dispatch stage reports its inner chains
    under ``detail`` keyed ``dom<N>`` (see
    :meth:`~repro.pipeline.stages.DomainDispatchStage.detail_dict`);
    this returns them keyed by integer domain id, sorted.
    """
    stages = stats.get("stages")
    if not isinstance(stages, list):
        return {}
    out: dict[int, dict[str, object]] = {}
    for entry in stages:
        if not isinstance(entry, dict):
            continue
        if entry.get("stage") != "domain-dispatch":
            continue
        detail = entry.get("detail")
        if not isinstance(detail, dict):
            continue
        for key, sub in detail.items():
            if not (
                isinstance(key, str)
                and key.startswith("dom")
                and isinstance(sub, dict)
            ):
                continue
            try:
                did = int(key[3:])
            except ValueError:
                continue
            out[did] = sub
    return dict(sorted(out.items()))


def domain_summary(
    domain_id: int,
    report: ProfileReport,
    stats: dict[str, object] | None = None,
    meta: Mapping[str, object] | None = None,
) -> SessionSummary:
    """One guest domain's summary, rollup-ready.

    ``stats`` is the domain's resolving chain's ``stats_dict`` — either
    a plain VIProf chain's, or a multi-stack (hypervisor + dispatch)
    chain's, in which case this domain's *inner*-chain counters are
    flattened out of the dispatch stage's detail so the panels show the
    real kernel/JIT/boot-image layer split (and the inner cache) instead
    of one opaque ``domain_dispatch`` hit count.  Each shared panel also
    gets a ``dom<N>.``-prefixed copy, and a ``fleet`` panel counts this
    domain itself.
    """
    extra_panels: dict[str, dict[str, int | float]] = {}
    if stats is not None:
        inner = per_domain_stats(stats).get(domain_id)
        if inner is not None:
            panels = resolution_panels(stats)
            inner_panels = resolution_panels(inner)
            layers = panels.setdefault("layers", {})
            layers.pop("domain_dispatch", None)
            for k, v in inner_panels.get("layers", {}).items():
                if k != "total":
                    layers[k] = layers.get(k, 0) + v
            for name, metrics in inner_panels.items():
                if name == "layers":
                    continue
                panel = panels.setdefault(name, {})
                for k, v in metrics.items():
                    panel[k] = panel.get(k, 0) + v
            extra_panels, stats = panels, None
    summary = summary_from_report(
        report,
        stats=stats,
        meta={"domain_id": domain_id, **dict(meta or {})},
        extra_panels=extra_panels or None,
    )
    summary.panels.update(
        {
            f"dom{domain_id}.{name}": dict(panel)
            for name, panel in summary.panels.items()
        }
    )
    summary.panels["fleet"] = {"domains": 1}
    return summary


def normalize_summary(summary: SessionSummary) -> SessionSummary:
    """Canonical event and symbol order, in place.

    Events go time-event-first then alphabetical (the tree's column
    convention); symbols sort by descending counts across that event
    order with the (image, symbol) key as a total-order tiebreak.  Two
    summaries holding the same counters normalize to the same bytes no
    matter what merge order built them.
    """
    summary.events = tuple(
        sorted(summary.events, key=lambda n: (n != "GLOBAL_POWER_EVENTS", n))
    )
    summary.symbols.sort(
        key=lambda e: (
            tuple(-e.count(ev) for ev in summary.events),
            e.key,
        )
    )
    return summary


def fleet_rollup(
    summaries: Mapping[int, SessionSummary],
) -> SessionSummary:
    """Merge per-domain summaries into the fleet-wide summary.

    Exact by construction (panels are raw counters) and independent of
    ``summaries`` ordering (the result is normalized).  The inputs are
    not mutated.
    """
    if not summaries:
        raise AnalysisError("fleet rollup needs at least one domain summary")
    out: SessionSummary | None = None
    for did in sorted(summaries):
        copy = SessionSummary.from_dict(summaries[did].to_dict())
        out = copy if out is None else out.merge(copy)
    assert out is not None
    return normalize_summary(out)


def fleet_report_doc(
    summaries: Mapping[int, SessionSummary],
    rollup: SessionSummary | None = None,
    top_n: int = 10,
) -> dict[str, object]:
    """The ``viprof report --per-domain --json`` document.

    Top-``top_n`` symbols per domain and fleet-wide, per-event totals,
    and each domain's panel counters — everything the cross-domain view
    prints, in one JSON-able shape.
    """
    if rollup is None:
        rollup = fleet_rollup(summaries)

    def _top(summary: SessionSummary) -> list[dict[str, object]]:
        return [
            {
                "image": e.image,
                "symbol": e.symbol,
                "counts": dict(e.counts),
            }
            for e in summary.symbols[:top_n]
        ]

    domains: dict[str, object] = {}
    for did in sorted(summaries):
        s = normalize_summary(
            SessionSummary.from_dict(summaries[did].to_dict())
        )
        domains[f"dom{did}"] = {
            "events": list(s.events),
            "totals": dict(s.totals),
            "top_symbols": _top(s),
            "panels": {
                name: dict(panel)
                for name, panel in s.panels.items()
                if not name.startswith("dom")
            },
        }
    return {
        "schema_version": rollup.schema_version,
        "kind": "fleet",
        "domains": domains,
        "fleet": {
            "events": list(rollup.events),
            "totals": dict(rollup.totals),
            "top_symbols": _top(rollup),
            "panels": {k: dict(v) for k, v in rollup.panels.items()},
        },
    }
