"""Shared BENCH artifact writer.

Both benchmark harnesses (``benchmarks/bench_pipeline_perf.py``,
``benchmarks/bench_collection_perf.py``) used to hand-roll their JSON
layouts; they now route through :func:`write_bench_payload`, which stamps
the provenance every artifact needs for cross-run comparison —
``schema_version``, ``cpu_count``, ``python``, the ``commit`` hash — and
embeds a :class:`~repro.metrics.model.SessionSummary` (kind ``bench``)
under the ``"summary"`` key so ``viprof analyze BENCH_a.json BENCH_b.json``
works out of the box.

The summary's panels are flattened numeric leaves of the payload:
top-level scalars land in the ``headline`` panel, nested sections keep
their key as the panel name, and list sections are keyed by their
elements' discriminator fields (``codec``, ``workers``...).  Bench panels
carry measured floats, not mergeable counters — bench summaries are
compared, never merged.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.metrics.model import KIND_BENCH, SCHEMA_VERSION, SessionSummary

__all__ = ["bench_meta", "bench_summary_from_payload", "write_bench_payload"]

#: Payload keys that are provenance, not measurements.
_META_KEYS = (
    "benchmark",
    "schema_version",
    "cpu_count",
    "python",
    "commit",
    "smoke",
    "seed",
)

#: Fields used to name list elements, in preference order.
_DISCRIMINATORS = ("codec", "workers", "name", "label")


def bench_meta() -> dict[str, object]:
    """The provenance fields stamped into every BENCH artifact."""
    from repro.metrics.build import _commit_hash

    meta: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    commit = _commit_hash()
    if commit is not None:
        meta["commit"] = commit
    return meta


def _numeric(v: object) -> int | float | None:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, (int, float)):
        return v
    return None


def _flatten_into(
    panel: dict[str, int | float], prefix: str, value: object
) -> None:
    n = _numeric(value)
    if n is not None:
        panel[prefix] = n
        return
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten_into(panel, f"{prefix}_{k}" if prefix else str(k), v)


def _element_key(element: dict[str, object], index: int) -> str:
    parts = []
    for disc in _DISCRIMINATORS:
        if disc in element:
            parts.append(f"{disc}_{element[disc]}")
    for flag in ("resolve_cache", "cache", "batch", "columnar"):
        if isinstance(element.get(flag), bool):
            parts.append(f"{flag}_{'on' if element[flag] else 'off'}")
    return "_".join(parts) if parts else f"item_{index}"


def bench_summary_from_payload(
    payload: dict[str, object],
) -> SessionSummary:
    """Flatten a harness payload's numeric leaves into a bench summary."""
    panels: dict[str, dict[str, int | float]] = {}
    headline: dict[str, int | float] = {}
    for key, value in payload.items():
        if key in _META_KEYS or key == "summary":
            continue
        n = _numeric(value)
        if n is not None:
            headline[key] = n
            continue
        if isinstance(value, dict):
            panel: dict[str, int | float] = {}
            _flatten_into(panel, "", value)
            if panel:
                panels[key] = panel
            continue
        if isinstance(value, list):
            panel = {}
            for i, element in enumerate(value):
                if isinstance(element, dict):
                    _flatten_into(panel, _element_key(element, i), element)
                else:
                    n = _numeric(element)
                    if n is not None:
                        panel[f"item_{i}"] = n
            if panel:
                panels[key] = panel
    if headline:
        panels["headline"] = headline
    meta = {
        k: payload[k]
        for k in _META_KEYS
        if k in payload and payload[k] is not None
    }
    meta.pop("schema_version", None)  # the summary carries its own
    return SessionSummary(kind=KIND_BENCH, panels=panels, meta=meta)


def write_bench_payload(
    path: Path | str, payload: dict[str, object]
) -> Path:
    """Stamp provenance into a harness payload, embed its bench summary,
    and write it canonically (sorted keys, trailing newline)."""
    path = Path(path)
    doc = dict(payload)
    for k, v in bench_meta().items():
        doc.setdefault(k, v)
    doc["summary"] = bench_summary_from_payload(doc).to_dict()
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path
