"""Unified session metrics: one model, many producers, one analyzer.

* :mod:`repro.metrics.model` — the versioned, mergeable
  :class:`~repro.metrics.model.SessionSummary` every producer emits.
* :mod:`repro.metrics.build` — builders from each producer's native
  stats (resolver chain, daemon, GC, salvage, session artifacts).
* :mod:`repro.metrics.panels` — declarative analysis config (derived
  metric panels + regression thresholds, TOML/JSON).
* :mod:`repro.metrics.analyze` — ``viprof analyze``: align two
  summaries, compute share deltas, judge them against a config.
* :mod:`repro.metrics.bench` — the shared ``BENCH_*.json`` writer.

See ``docs/analysis.md`` for the schema and the gating workflow.
"""

from repro.metrics.analyze import (
    AnalysisResult,
    MetricDelta,
    Regression,
    SymbolDelta,
    align_shares,
    analyze,
    derived_metrics,
    load_input,
)
from repro.metrics.build import (
    collection_summary,
    derive_summary,
    load_session_summary,
    summary_from_report,
    summary_from_run,
    write_session_summary,
)
from repro.metrics.fleet import (
    domain_summary,
    fleet_report_doc,
    fleet_rollup,
    normalize_summary,
    per_domain_stats,
)
from repro.metrics.model import (
    KIND_ARTIFACTS,
    KIND_BENCH,
    KIND_COLLECTION,
    KIND_PROFILE,
    SCHEMA_VERSION,
    SUMMARY_NAME,
    SessionSummary,
    SymbolEntry,
)
from repro.metrics.panels import (
    DEFAULT_CONFIG,
    AnalysisConfig,
    SymbolRules,
    Threshold,
    load_config,
)

__all__ = [
    "SCHEMA_VERSION",
    "KIND_PROFILE",
    "KIND_COLLECTION",
    "KIND_ARTIFACTS",
    "KIND_BENCH",
    "SUMMARY_NAME",
    "SessionSummary",
    "SymbolEntry",
    "summary_from_report",
    "summary_from_run",
    "collection_summary",
    "derive_summary",
    "load_session_summary",
    "write_session_summary",
    "domain_summary",
    "fleet_report_doc",
    "fleet_rollup",
    "normalize_summary",
    "per_domain_stats",
    "AnalysisConfig",
    "SymbolRules",
    "Threshold",
    "DEFAULT_CONFIG",
    "load_config",
    "AnalysisResult",
    "SymbolDelta",
    "MetricDelta",
    "Regression",
    "align_shares",
    "derived_metrics",
    "analyze",
    "load_input",
]
