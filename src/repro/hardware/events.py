"""Hardware performance event definitions.

The paper profiles two Pentium 4 events: ``GLOBAL_POWER_EVENTS`` (a proxy for
elapsed time — the clock ticks while the processor is active) and
``BSQ_CACHE_REFERENCE`` with a unit mask selecting L2 data-cache read misses.
We model those plus the handful of other events OProfile commonly supports on
that microarchitecture, so counter programming and validation code paths are
exercised with a realistic event table.

Each event is tied to one field of :class:`EventCounts`, the per-quantum
delta record produced by the execution engine and consumed by the counter
bank.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError

__all__ = [
    "HardwareEvent",
    "EventCounts",
    "EVENTS",
    "event_by_name",
    "GLOBAL_POWER_EVENTS",
    "BSQ_CACHE_REFERENCE",
    "INSTR_RETIRED",
    "BRANCH_RETIRED",
    "MISPRED_BRANCH_RETIRED",
    "ITLB_REFERENCE",
]


@dataclass(frozen=True, slots=True)
class HardwareEvent:
    """A programmable hardware performance event.

    Attributes:
        name: OProfile-style event mnemonic.
        code: event-select code written to the (simulated) ESCR/CCCR pair.
        counts_field: name of the :class:`EventCounts` field this event
            accumulates.
        min_period: smallest legal reset value; real kernels refuse
            pathologically small periods because the NMI storm would lock
            the machine up.
        description: human-readable summary for report headers.
    """

    name: str
    code: int
    counts_field: str
    min_period: int
    description: str

    def validate_period(self, period: int) -> None:
        """Raise :class:`ConfigError` unless ``period`` is legal for this event."""
        if period < self.min_period:
            raise ConfigError(
                f"period {period} below minimum {self.min_period} for event "
                f"{self.name}"
            )


@dataclass(slots=True)
class EventCounts:
    """Event deltas accumulated over one execution quantum.

    The engine fills one of these per quantum; the counter bank drains it.
    ``cycles`` is always positive for a non-empty quantum; the other fields
    may be zero.
    """

    cycles: int = 0
    instructions: int = 0
    l2_references: int = 0
    l2_misses: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    itlb_misses: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if v < 0:
                raise ConfigError(f"negative event count {f.name}={v}")

    def get(self, field_name: str) -> int:
        """Return the delta for ``field_name`` (an :class:`EventCounts` field)."""
        return getattr(self, field_name)

    def __add__(self, other: "EventCounts") -> "EventCounts":
        return EventCounts(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            l2_references=self.l2_references + other.l2_references,
            l2_misses=self.l2_misses + other.l2_misses,
            branches=self.branches + other.branches,
            branch_mispredicts=self.branch_mispredicts + other.branch_mispredicts,
            itlb_misses=self.itlb_misses + other.itlb_misses,
        )

    def __iadd__(self, other: "EventCounts") -> "EventCounts":
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.l2_references += other.l2_references
        self.l2_misses += other.l2_misses
        self.branches += other.branches
        self.branch_mispredicts += other.branch_mispredicts
        self.itlb_misses += other.itlb_misses
        return self

    def scaled(self, numer: int, denom: int) -> "EventCounts":
        """Return counts scaled by ``numer/denom`` (floor), used when a
        quantum is split at a counter-overflow boundary."""
        if denom <= 0:
            raise ConfigError("scale denominator must be positive")

        def s(v: int) -> int:
            return (v * numer) // denom

        return EventCounts(
            cycles=s(self.cycles),
            instructions=s(self.instructions),
            l2_references=s(self.l2_references),
            l2_misses=s(self.l2_misses),
            branches=s(self.branches),
            branch_mispredicts=s(self.branch_mispredicts),
            itlb_misses=s(self.itlb_misses),
        )

    def minus(self, other: "EventCounts") -> "EventCounts":
        """Component-wise difference clamped at zero (split remainder)."""
        return EventCounts(
            cycles=max(0, self.cycles - other.cycles),
            instructions=max(0, self.instructions - other.instructions),
            l2_references=max(0, self.l2_references - other.l2_references),
            l2_misses=max(0, self.l2_misses - other.l2_misses),
            branches=max(0, self.branches - other.branches),
            branch_mispredicts=max(
                0, self.branch_mispredicts - other.branch_mispredicts
            ),
            itlb_misses=max(0, self.itlb_misses - other.itlb_misses),
        )


GLOBAL_POWER_EVENTS = HardwareEvent(
    name="GLOBAL_POWER_EVENTS",
    code=0x13,
    counts_field="cycles",
    min_period=3000,
    description="time during which processor is not stopped",
)

BSQ_CACHE_REFERENCE = HardwareEvent(
    name="BSQ_CACHE_REFERENCE",
    code=0x0C,
    counts_field="l2_misses",
    min_period=500,
    description="L2 cache references / read misses (unit mask 0x100)",
)

INSTR_RETIRED = HardwareEvent(
    name="INSTR_RETIRED",
    code=0x02,
    counts_field="instructions",
    min_period=3000,
    description="retired instructions",
)

BRANCH_RETIRED = HardwareEvent(
    name="BRANCH_RETIRED",
    code=0x06,
    counts_field="branches",
    min_period=3000,
    description="retired branches",
)

MISPRED_BRANCH_RETIRED = HardwareEvent(
    name="MISPRED_BRANCH_RETIRED",
    code=0x03,
    counts_field="branch_mispredicts",
    min_period=500,
    description="retired mispredicted branches",
)

ITLB_REFERENCE = HardwareEvent(
    name="ITLB_REFERENCE",
    code=0x18,
    counts_field="itlb_misses",
    min_period=500,
    description="ITLB misses (unit mask 0x02)",
)

EVENTS: dict[str, HardwareEvent] = {
    e.name: e
    for e in (
        GLOBAL_POWER_EVENTS,
        BSQ_CACHE_REFERENCE,
        INSTR_RETIRED,
        BRANCH_RETIRED,
        MISPRED_BRANCH_RETIRED,
        ITLB_REFERENCE,
    )
}


def event_by_name(name: str) -> HardwareEvent:
    """Look up an event mnemonic, raising :class:`ConfigError` if unknown."""
    try:
        return EVENTS[name]
    except KeyError:
        known = ", ".join(sorted(EVENTS))
        raise ConfigError(f"unknown hardware event {name!r} (known: {known})") from None
