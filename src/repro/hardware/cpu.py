"""The simulated CPU.

The execution engine reduces all activity (JIT code, JVM internals, kernel
work, daemon work) to :class:`Quantum` records: "the program counter swept
``code_len`` bytes starting at ``pc_start`` while these event deltas
accrued".  The CPU's job is the part a real profiler gets from hardware for
free: as each quantum is consumed, every armed performance counter counts
down, and the quantum is *split at the exact cycle of the earliest counter
overflow* so the NMI handler observes a precise program-counter value.
Events are assumed to accrue uniformly across a quantum — quanta are small
(a few hundred to a few thousand cycles), so this matches the interpolation
error of real skid-prone P4 sampling rather well.

NMI-handler execution itself consumes cycles.  Those cycles are charged to
the CPU clock (they are the dominant component of profiling overhead) and
are run through the counters with interrupts masked, so counter state stays
consistent but no nested samples are taken — overflows occurring inside the
handler are recorded as ``masked_overflows``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.counters import CounterBank
from repro.hardware.events import EventCounts
from repro.hardware.interrupts import CpuMode, InterruptFrame, NMILine

__all__ = ["Quantum", "CPU", "CpuMode"]

#: Instruction alignment used when interpolating an overflow PC.
_PC_ALIGN = 4

#: Safety valve: a single quantum may not be split more often than this.
#: (With the paper's minimum period of 45 000 cycles and quanta of ~2 000
#: cycles a quantum is split at most once or twice.)
_MAX_SPLITS = 100_000


@dataclass(frozen=True, slots=True)
class Quantum:
    """A slice of execution.

    Attributes:
        pc_start: first program-counter value covered.
        code_len: byte span swept by the PC during the quantum; the overflow
            PC is interpolated inside ``[pc_start, pc_start + code_len)``.
        counts: hardware-event deltas accrued across the quantum.
        mode: privilege mode the quantum runs in.
    """

    pc_start: int
    code_len: int
    counts: EventCounts
    mode: CpuMode = CpuMode.USER

    def __post_init__(self) -> None:
        if self.pc_start < 0:
            raise HardwareError(f"negative pc_start {self.pc_start:#x}")
        if self.code_len < 0:
            raise HardwareError(f"negative code_len {self.code_len}")


@dataclass(slots=True)
class CpuStats:
    """Counters the engine reads back after a run."""

    user_cycles: int = 0
    kernel_cycles: int = 0
    nmi_handler_cycles: int = 0
    nmi_count: int = 0
    masked_overflows: int = 0
    quanta: int = 0
    splits: int = 0

    @property
    def total_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles


class CPU:
    """Single simulated core: clock, counter bank, NMI line, current task."""

    def __init__(self, counters: CounterBank | None = None) -> None:
        self.counters = counters if counters is not None else CounterBank()
        self.nmi = NMILine()
        self.cycle = 0
        self.current_task_id = 0
        self.stats = CpuStats()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, quantum: Quantum) -> None:
        """Consume one quantum, raising NMIs at each counter overflow."""
        self.stats.quanta += 1
        kernel_mode = quantum.mode is CpuMode.KERNEL
        total_cycles = quantum.counts.cycles
        remaining = quantum.counts
        done_cycles = 0
        splits = 0

        while True:
            hit = self.counters.first_overflow(remaining, kernel_mode)
            if hit is None:
                self.counters.consume_all(remaining, kernel_mode)
                self._advance_clock(remaining.cycles, kernel_mode)
                return

            splits += 1
            self.stats.splits += 1
            if splits > _MAX_SPLITS:
                raise HardwareError(
                    f"quantum at pc={quantum.pc_start:#x} split more than "
                    f"{_MAX_SPLITS} times; sampling period too small for "
                    f"quantum size"
                )
            counter, at_events, cyc_at = hit

            # Split the quantum at the overflow cycle.  Force the firing
            # counter's field to exactly the overflow distance so rounding
            # in the proportional scaling cannot strand the overflow.
            if total_cycles > 0:
                pre = remaining.scaled(cyc_at, remaining.cycles or 1)
            else:
                pre = EventCounts()
            setattr(pre, counter.event.counts_field, at_events)
            post = remaining.minus(pre)

            self.counters.consume_all(pre, kernel_mode)
            self._advance_clock(pre.cycles, kernel_mode)
            done_cycles += pre.cycles

            pc = self._interpolate_pc(quantum, done_cycles, total_cycles)
            frame = InterruptFrame(
                pc=pc,
                mode=quantum.mode,
                event_name=counter.event.name,
                task_id=self.current_task_id,
                cycle=self.cycle,
            )
            handler_cycles = self.nmi.raise_nmi(frame)
            if handler_cycles:
                self.stats.nmi_count += 1
                self._run_masked(handler_cycles)

            remaining = post

    def idle(self, cycles: int) -> None:
        """Halt for ``cycles``: the clock advances but no events accrue
        (GLOBAL_POWER_EVENTS counts only un-halted time, so an idle CPU
        takes no samples — real OProfile behaves the same way)."""
        if cycles < 0:
            raise HardwareError(f"negative idle time {cycles}")
        self.cycle += cycles

    def _interpolate_pc(self, quantum: Quantum, done: int, total: int) -> int:
        if total <= 0 or quantum.code_len == 0:
            return quantum.pc_start
        off = (quantum.code_len * min(done, total)) // total
        off -= off % _PC_ALIGN
        if off >= quantum.code_len:
            off = quantum.code_len - (quantum.code_len % _PC_ALIGN or _PC_ALIGN)
            off = max(0, off)
        return quantum.pc_start + off

    def _advance_clock(self, cycles: int, kernel_mode: bool) -> None:
        self.cycle += cycles
        if kernel_mode:
            self.stats.kernel_cycles += cycles
        else:
            self.stats.user_cycles += cycles

    def _run_masked(self, handler_cycles: int) -> None:
        """Charge NMI-handler cycles with further NMIs masked.

        The handler runs in kernel mode; its cycles still tick the cycle
        counter (real profilers *do* sample their own handler occasionally;
        we model the P4 behaviour of the overflow being latched-and-lost),
        so overflows inside the handler reload silently.
        """
        counts = EventCounts(cycles=handler_cycles, instructions=handler_cycles // 2)
        for ctr in self.counters.counters:
            if not ctr.counts_in_mode(kernel_mode=True):
                continue
            delta = counts.get(ctr.event.counts_field)
            if delta:
                self.stats.masked_overflows += ctr.consume(delta)
        self.cycle += handler_cycles
        self.stats.kernel_cycles += handler_cycles
        self.stats.nmi_handler_cycles += handler_cycles
