"""L2 cache models.

Two interchangeable models produce the L2-miss deltas that feed the
``BSQ_CACHE_REFERENCE`` counter:

:class:`SetAssociativeCache`
    A real set-associative LRU cache simulator (numpy-backed tag array).
    Used by the engine's ``detailed_cache=True`` mode and heavily exercised
    by unit and property tests.

:class:`StatisticalCacheModel`
    The fast default: per-working-set analytic miss rates with binomially
    distributed draws from a seeded generator.  Two orders of magnitude
    faster and calibrated against the detailed model (see
    ``tests/hardware/test_cache_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hardware.memory import AddressStream, WorkingSet

__all__ = ["CacheGeometry", "SetAssociativeCache", "StatisticalCacheModel"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Size/line/associativity triple with the usual power-of-two rules.

    The paper's machine has a 1 MB L2 with 64-byte lines (Pentium 4 Xeon,
    8-way); :meth:`paper_l2` returns exactly that.
    """

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.size_bytes):
            raise ConfigError(f"cache size must be a power of two: {self.size_bytes}")
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"line size must be a power of two: {self.line_bytes}")
        if self.associativity <= 0:
            raise ConfigError("associativity must be positive")
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ConfigError("cache smaller than one set")
        if self.num_sets * self.line_bytes * self.associativity != self.size_bytes:
            raise ConfigError("geometry does not tile the cache size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @classmethod
    def paper_l2(cls) -> "CacheGeometry":
        return cls(size_bytes=1 << 20, line_bytes=64, associativity=8)


class SetAssociativeCache:
    """Set-associative cache with true-LRU replacement.

    Tags are held in an ``(num_sets, associativity)`` int64 array; a parallel
    array holds last-use timestamps, so LRU selection is a single argmin per
    access.  ``-1`` marks an invalid way.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        sets, ways = geometry.num_sets, geometry.associativity
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._stamps = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0
        # Precomputed shifts for address decomposition.
        self._line_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = sets - 1

    def reset(self) -> None:
        """Invalidate every line and zero the statistics."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        block = address >> self._line_shift
        set_idx = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        self._clock += 1
        row = self._tags[set_idx]
        ways = np.nonzero(row == tag)[0]
        if ways.size:
            self.hits += 1
            self._stamps[set_idx, ways[0]] = self._clock
            return True
        self.misses += 1
        victim = int(np.argmin(self._stamps[set_idx]))
        empty = np.nonzero(row == -1)[0]
        if empty.size:
            victim = int(empty[0])
        self._tags[set_idx, victim] = tag
        self._stamps[set_idx, victim] = self._clock
        return False

    def access_stream(self, stream: AddressStream) -> tuple[int, int]:
        """Run a whole address stream; returns ``(hits, misses)`` for it."""
        h0, m0 = self.hits, self.misses
        for a in stream.addresses:
            self.access(int(a))
        return self.hits - h0, self.misses - m0

    def resident(self, address: int) -> bool:
        """True if the line containing ``address`` is currently cached
        (no LRU update; used by tests)."""
        block = address >> self._line_shift
        set_idx = block & self._set_mask
        tag = block >> (self._set_mask.bit_length())
        return bool((self._tags[set_idx] == tag).any())


class StatisticalCacheModel:
    """Fast per-working-set miss model.

    For each working set the expected miss rate comes from
    :meth:`WorkingSet.expected_miss_rate`; actual misses for a batch of ``n``
    accesses are a binomial draw, so totals fluctuate realistically while the
    mean is controlled.  Draws use a generator seeded from ``seed`` mixed
    with the working set's own (seed, base, size) identity, so two
    identically-constructed machines produce identical miss streams even
    though working-set instance ids differ.
    """

    def __init__(self, geometry: CacheGeometry, seed: int = 0) -> None:
        self.geometry = geometry
        self._seed = seed
        self._rngs: dict[int, np.random.Generator] = {}
        self._rates: dict[int, float] = {}
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def _rng_for(self, ws: WorkingSet) -> np.random.Generator:
        rng = self._rngs.get(ws.ws_id)
        if rng is None:
            rng = np.random.default_rng(
                [self._seed, ws.seed & 0x7FFFFFFF, ws.base, ws.size]
            )
            self._rngs[ws.ws_id] = rng
        return rng

    def misses_for(self, ws: WorkingSet, n_accesses: int) -> int:
        """Return the number of L2 misses for ``n_accesses`` by ``ws``."""
        if n_accesses < 0:
            raise ConfigError(f"negative access count {n_accesses}")
        if n_accesses == 0:
            return 0
        rate = self._rates.get(ws.ws_id)
        if rate is None:
            rate = ws.expected_miss_rate(self.geometry.size_bytes)
            self._rates[ws.ws_id] = rate
        m = int(self._rng_for(ws).binomial(n_accesses, rate))
        self.hits += n_accesses - m
        self.misses += m
        return m
