"""Hardware performance counter bank.

OProfile programs each counter with a *reset value* equal to the sampling
period: the counter counts up (we model it as counting *down* from the reset
value, which is arithmetically identical) and raises an NMI when it reaches
zero, after which the kernel module reloads the reset value.

The subtle piece the CPU relies on is :meth:`HardwareCounter.events_to_overflow`:
given the event delta of an execution quantum, it reports how many events into
that quantum the *first* overflow lands, so the CPU can split the quantum and
compute a precise program-counter value for the interrupt — exactly the PC the
real NMI handler would read from the exception frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, CounterError
from repro.hardware.events import EventCounts, HardwareEvent

__all__ = ["CounterConfig", "HardwareCounter", "CounterBank"]

#: Number of general counters we expose.  The Pentium 4 has 18; OProfile on
#: that hardware typically programs a handful.  Eight is plenty for every
#: configuration in the paper while still letting tests exercise "bank full".
NUM_COUNTERS = 8


@dataclass(frozen=True, slots=True)
class CounterConfig:
    """User-visible programming of one counter.

    Attributes:
        event: the hardware event to count.
        period: reset value — an NMI fires every ``period`` events.
        count_user: count events while the CPU is in user mode.
        count_kernel: count events while the CPU is in kernel mode.
    """

    event: HardwareEvent
    period: int
    count_user: bool = True
    count_kernel: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigError(f"sampling period must be positive, got {self.period}")
        self.event.validate_period(self.period)
        if not (self.count_user or self.count_kernel):
            raise ConfigError("counter must count at least one of user/kernel mode")


@dataclass(slots=True)
class HardwareCounter:
    """One armed counter: configuration plus the live countdown state."""

    config: CounterConfig
    remaining: int = field(default=0)
    overflows: int = field(default=0)

    def __post_init__(self) -> None:
        if self.remaining == 0:
            self.remaining = self.config.period

    @property
    def event(self) -> HardwareEvent:
        return self.config.event

    def counts_in_mode(self, kernel_mode: bool) -> bool:
        """True if this counter is live in the given CPU mode."""
        return self.config.count_kernel if kernel_mode else self.config.count_user

    def events_to_overflow(self, delta: int) -> int | None:
        """Given ``delta`` upcoming events, return how many events in the
        first overflow occurs, or ``None`` if the counter survives the whole
        delta.  Does not mutate state."""
        if delta < 0:
            raise CounterError(f"negative event delta {delta}")
        if delta >= self.remaining:
            return self.remaining
        return None

    def consume(self, delta: int) -> int:
        """Consume ``delta`` events, reloading on each overflow.

        Returns the number of overflows that occurred within the delta.
        Callers that need per-overflow PCs should instead split work with
        :meth:`events_to_overflow`; this bulk form is used for counters other
        than the one that fired, and in tests.
        """
        if delta < 0:
            raise CounterError(f"negative event delta {delta}")
        fired = 0
        period = self.config.period
        if delta >= self.remaining:
            delta -= self.remaining
            fired += 1
            fired += delta // period
            self.remaining = period - (delta % period)
        else:
            self.remaining -= delta
        self.overflows += fired
        return fired

    def reload(self) -> None:
        """Explicitly reload the reset value (kernel does this in the NMI
        handler on real hardware)."""
        self.remaining = self.config.period


class CounterBank:
    """The set of armed counters on one (simulated) CPU.

    The bank enforces the physical constraints the real driver enforces:
    a bounded number of counters and one counter per event (the P4 ESCR
    allocation constraint, simplified).
    """

    def __init__(self, num_counters: int = NUM_COUNTERS) -> None:
        if num_counters <= 0:
            raise ConfigError("counter bank needs at least one counter slot")
        self._slots = num_counters
        self._counters: list[HardwareCounter] = []

    def program(self, config: CounterConfig) -> HardwareCounter:
        """Arm a counter.  Raises :class:`CounterError` when the bank is full
        or the event is already being counted."""
        if len(self._counters) >= self._slots:
            raise CounterError(f"all {self._slots} counters in use")
        if any(c.event.name == config.event.name for c in self._counters):
            raise CounterError(f"event {config.event.name} already has a counter")
        ctr = HardwareCounter(config=config)
        self._counters.append(ctr)
        return ctr

    def clear(self) -> None:
        """Disarm every counter (``opcontrol --deinit``)."""
        self._counters.clear()

    @property
    def counters(self) -> tuple[HardwareCounter, ...]:
        return tuple(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def first_overflow(
        self, counts: EventCounts, kernel_mode: bool
    ) -> tuple[HardwareCounter, int, int] | None:
        """Find the counter whose overflow lands earliest within ``counts``.

        Earliness is measured as a fraction of the quantum's cycles, assuming
        every event accrues uniformly across the quantum.  Returns
        ``(counter, events_into_quantum, cycles_into_quantum)`` for the
        earliest overflow, or ``None`` if no armed counter overflows.
        """
        best: tuple[HardwareCounter, int, int] | None = None
        cycles = counts.cycles
        for ctr in self._counters:
            if not ctr.counts_in_mode(kernel_mode):
                continue
            delta = counts.get(ctr.event.counts_field)
            at = ctr.events_to_overflow(delta)
            if at is None:
                continue
            if delta == 0:
                continue
            # Cycle position of the overflow under uniform accrual.
            cyc_at = (at * cycles) // delta if cycles else 0
            if best is None or cyc_at < best[2]:
                best = (ctr, at, cyc_at)
        return best

    def consume_all(self, counts: EventCounts, kernel_mode: bool) -> None:
        """Advance every armed counter by its event delta without raising
        interrupts (used for the post-split remainder bookkeeping of counters
        that did *not* fire, and while NMIs are masked)."""
        for ctr in self._counters:
            if not ctr.counts_in_mode(kernel_mode):
                continue
            delta = counts.get(ctr.event.counts_field)
            if delta:
                ctr.consume(delta)
