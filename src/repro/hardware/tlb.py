"""Instruction-TLB models.

The P4's ITLB holds 64 entries of 4 KB pages (~256 KB of reach).  A
workload whose live code — boot image hot paths plus compiled bodies —
exceeds that reach takes ITLB misses on control transfers, which is what
the ``ITLB_REFERENCE`` event samples.

Two models mirror the cache pair:

:class:`DirectMappedTlb`
    A real TLB simulator (per-page lookups), used in tests and available
    for detailed studies.

:class:`StatisticalTlbModel`
    The engine's default: per-step miss estimates from the span of code
    the step sweeps and the process's total hot-code footprint relative
    to TLB reach.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["DirectMappedTlb", "StatisticalTlbModel", "PAGE_BITS"]

PAGE_BITS = 12  # 4 KB pages


class DirectMappedTlb:
    """Direct-mapped TLB over virtual page numbers."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("TLB entries must be a positive power of two")
        self.entries = entries
        self._tags = np.full(entries, -1, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def reach_bytes(self) -> int:
        return self.entries << PAGE_BITS

    def access(self, address: int) -> bool:
        """Touch the page containing ``address``; True on hit."""
        vpn = address >> PAGE_BITS
        slot = vpn & (self.entries - 1)
        if self._tags[slot] == vpn:
            self.hits += 1
            return True
        self.misses += 1
        self._tags[slot] = vpn
        return False

    def reset(self) -> None:
        self._tags.fill(-1)
        self.hits = 0
        self.misses = 0


class StatisticalTlbModel:
    """Per-step ITLB miss estimate.

    A step sweeping ``code_len`` bytes touches ``ceil(code_len / 4K)``
    pages.  If the process's hot code footprint fits the TLB's reach,
    only first-touch (compulsory) misses occur — effectively none at
    steady state; beyond the reach, each page touch misses with
    probability ``1 - reach/footprint`` (uniform replacement pressure),
    and control transfers between steps re-touch entry pages.
    """

    def __init__(self, entries: int = 64, seed: int = 0) -> None:
        if entries <= 0:
            raise ConfigError("TLB entries must be positive")
        self.reach_bytes = entries << PAGE_BITS
        self._rng = np.random.default_rng(seed ^ 0x71B)
        self.misses = 0

    def misses_for_step(self, code_len: int, footprint_bytes: int) -> int:
        """ITLB misses for one step.

        Args:
            code_len: byte span the step's PC sweeps.
            footprint_bytes: the process's total hot code size.
        """
        if code_len < 0 or footprint_bytes < 0:
            raise ConfigError("negative code_len/footprint")
        pages = max(1, (code_len + (1 << PAGE_BITS) - 1) >> PAGE_BITS)
        if footprint_bytes <= self.reach_bytes:
            return 0
        rate = 1.0 - self.reach_bytes / footprint_bytes
        m = int(self._rng.binomial(pages, min(0.95, rate)))
        self.misses += m
        return m
