"""The non-maskable interrupt line.

OProfile asks the APIC to deliver counter overflows as NMIs so that samples
can be taken even inside regions that run with ordinary interrupts disabled.
We model the line as a registered handler plus the one piece of real NMI
semantics that matters to a profiler: while a handler is running, further
NMIs are latched by hardware but *at most one* is pending — overflows that
occur during handler execution are effectively dropped (the counter is
reloaded but no sample is taken).  The simulator counts those drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

__all__ = ["CpuMode", "InterruptFrame", "NMILine"]


class CpuMode(Enum):
    """Privilege mode the CPU was in when the interrupt was raised."""

    USER = "user"
    KERNEL = "kernel"


@dataclass(frozen=True, slots=True)
class InterruptFrame:
    """What the NMI handler can see: the saved program counter, the mode,
    which event's counter overflowed, and the identity of the running task
    (stand-in for ``current`` in the kernel).

    Attributes:
        pc: program counter at the instant of overflow.
        mode: user or kernel privilege mode.
        event_name: hardware event whose counter fired.
        task_id: pid of the interrupted task (0 for idle/kernel threads).
        cycle: absolute simulated cycle time of delivery.
    """

    pc: int
    mode: CpuMode
    event_name: str
    task_id: int
    cycle: int


#: An NMI handler receives the frame and returns the number of cycles its
#: execution costs (charged to the kernel as profiling overhead).
NmiHandler = Callable[[InterruptFrame], int]


class NMILine:
    """Delivery of counter-overflow NMIs to a single registered handler."""

    def __init__(self) -> None:
        self._handler: Optional[NmiHandler] = None
        self.delivered = 0
        self.dropped = 0
        self._in_handler = False

    def register(self, handler: NmiHandler) -> None:
        self._handler = handler

    def unregister(self) -> None:
        self._handler = None

    @property
    def armed(self) -> bool:
        return self._handler is not None

    def raise_nmi(self, frame: InterruptFrame) -> int:
        """Deliver an NMI.  Returns handler cost in cycles (0 when no handler
        is registered or when the NMI was dropped due to reentrancy)."""
        if self._handler is None:
            return 0
        if self._in_handler:
            self.dropped += 1
            return 0
        self._in_handler = True
        try:
            cost = self._handler(frame)
        finally:
            self._in_handler = False
        self.delivered += 1
        return cost
