"""Synthetic memory-reference streams.

Each workload method owns a :class:`WorkingSet` describing the region of the
(simulated) data heap it touches and how it touches it.  The engine asks a
working set for short address streams which it either runs through the
detailed cache simulator (:class:`repro.hardware.cache.SetAssociativeCache`)
or feeds to the fast statistical model — both produce the L2-miss event
deltas that ultimately drive ``BSQ_CACHE_REFERENCE`` sampling.

Streams are generated with a dedicated ``numpy`` generator seeded from the
working set's own seed, so a given workload produces the same miss pattern
run after run regardless of what else the simulator does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["WorkingSet", "AddressStream"]


@dataclass(frozen=True, slots=True)
class AddressStream:
    """A batch of byte addresses plus the working set that produced them."""

    addresses: np.ndarray
    working_set_id: int

    def __len__(self) -> int:
        return int(self.addresses.shape[0])


@dataclass
class WorkingSet:
    """A method's data-access behaviour.

    Attributes:
        base: lowest byte address of the region.
        size: region size in bytes.
        locality: in [0, 1]; the fraction of accesses that hit a small hot
            sub-region (sequential-ish), the rest being uniform over the full
            working set.  Higher locality => fewer cache misses.
        hot_fraction: size of the hot sub-region relative to ``size``.
        seed: RNG seed for this working set's streams.
    """

    base: int
    size: int
    locality: float = 0.8
    hot_fraction: float = 0.1
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _cursor: int = field(init=False, default=0, repr=False)
    _ws_id: int = field(init=False, default=0, repr=False)

    _next_id = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"working set size must be positive, got {self.size}")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigError(f"locality must be in [0,1], got {self.locality}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigError(
                f"hot_fraction must be in (0,1], got {self.hot_fraction}"
            )
        self._rng = np.random.default_rng(self.seed)
        self._cursor = 0
        self._ws_id = WorkingSet._next_id
        WorkingSet._next_id += 1

    @property
    def ws_id(self) -> int:
        return self._ws_id

    def stream(self, n: int, line: int = 64) -> AddressStream:
        """Generate ``n`` addresses.

        A ``locality`` fraction walk sequentially (stride = cache line)
        through the hot sub-region; the remainder land uniformly in the whole
        working set.  The sequential cursor persists across calls so
        successive streams re-traverse the same hot lines (temporal reuse).
        """
        if n <= 0:
            raise ConfigError(f"stream length must be positive, got {n}")
        hot_size = max(line, int(self.size * self.hot_fraction))
        n_hot = int(round(n * self.locality))
        n_cold = n - n_hot

        parts = []
        if n_hot:
            offs = (self._cursor + np.arange(n_hot, dtype=np.int64) * line) % hot_size
            self._cursor = int((self._cursor + n_hot * line) % hot_size)
            parts.append(self.base + offs)
        if n_cold:
            cold = self._rng.integers(0, self.size, size=n_cold, dtype=np.int64)
            parts.append(self.base + cold)
        addrs = np.concatenate(parts) if len(parts) > 1 else parts[0]
        return AddressStream(addresses=addrs, working_set_id=self._ws_id)

    def expected_miss_rate(self, cache_bytes: int) -> float:
        """Analytic L2 miss-rate estimate used by the statistical model.

        Cold (uniform) accesses miss with probability ``1 - cache/size``
        when the working set exceeds the cache (uniform-reuse
        approximation), floored at a small compulsory rate.

        Hot accesses stream cyclically through the hot sub-region: under
        LRU that hits almost always while the region fits the cache and
        misses almost always once it is ~1.5x the cache (the classic LRU
        cyclic cliff), with a linear ramp between — calibrated against the
        set-associative simulator in
        ``tests/hardware/test_cache_calibration.py``.
        """
        if cache_bytes <= 0:
            raise ConfigError("cache size must be positive")
        compulsory = 0.005
        if self.size <= cache_bytes:
            cold_rate = compulsory
        else:
            cold_rate = max(compulsory, 1.0 - cache_bytes / self.size)
        hot_size = max(64, int(self.size * self.hot_fraction))
        streaming = 0.98
        if hot_size <= cache_bytes // 2:
            hot_rate = compulsory
        elif hot_size >= cache_bytes + cache_bytes // 2:
            hot_rate = streaming
        else:
            ramp = (hot_size - cache_bytes / 2) / cache_bytes
            hot_rate = compulsory + (streaming - compulsory) * ramp
        return self.locality * hot_rate + (1.0 - self.locality) * cold_rate
