"""Simulated hardware substrate.

This package models the parts of a Pentium-4-class machine that a sampling
profiler interacts with:

* hardware performance counters (HPCs) programmed with a *reset value*
  (the sampling period) that raise a non-maskable interrupt (NMI) when the
  configured number of events has occurred (:mod:`repro.hardware.counters`),
* the NMI line itself (:mod:`repro.hardware.interrupts`),
* a set-associative cache used to generate L2-miss events
  (:mod:`repro.hardware.cache`) fed by per-workload address streams
  (:mod:`repro.hardware.memory`), and
* a CPU that executes *quanta* of work and splits them at the exact point a
  counter overflows, yielding a precise program-counter value for each
  interrupt (:mod:`repro.hardware.cpu`).

Execution is deterministic: all randomness flows from explicit seeds.
"""

from repro.hardware.events import (
    EVENTS,
    EventCounts,
    HardwareEvent,
    event_by_name,
)
from repro.hardware.counters import CounterBank, CounterConfig, HardwareCounter
from repro.hardware.interrupts import InterruptFrame, NMILine
from repro.hardware.cache import (
    CacheGeometry,
    SetAssociativeCache,
    StatisticalCacheModel,
)
from repro.hardware.memory import AddressStream, WorkingSet
from repro.hardware.cpu import CPU, CpuMode, Quantum

__all__ = [
    "EVENTS",
    "EventCounts",
    "HardwareEvent",
    "event_by_name",
    "CounterBank",
    "CounterConfig",
    "HardwareCounter",
    "InterruptFrame",
    "NMILine",
    "CacheGeometry",
    "SetAssociativeCache",
    "StatisticalCacheModel",
    "AddressStream",
    "WorkingSet",
    "CPU",
    "CpuMode",
    "Quantum",
]
