"""Command-line interface (the ``viprof`` console script).

Subcommands::

    viprof list                          # available benchmarks
    viprof report ps [--scale S] [...]   # run + print a VIProf profile
    viprof case-study [--benchmark ps]   # Figure 1 side-by-side
    viprof overhead [--benchmarks ...]   # Figure 2/3 sweep
    viprof breakdown ps                  # overhead decomposition
    viprof annotate ps [--method NAME]   # within-method (bytecode) histogram
    viprof diff ps --period 45000 90000  # profile diff across two configs
    viprof diff A/ B/                    # diff two existing sessions
    viprof analyze A B [--config F]      # session comparison + regression
                                         #   gates (--fail-on-regression)
    viprof pgo ps                        # profile-guided optimization demo
    viprof xen fop ps                    # multi-stack XenoProf demo
    viprof xen --fleet 8 --per-domain    # many-guest fleet: per-domain
                                         #   panels + merged rollup
                                         #   (--summary-out writes it)
    viprof report fop ps --per-domain    # same fleet view over named
                                         #   benchmarks as guest domains
    viprof lint SESSION...               # static artifact integrity check
                                         #   (dirs/globs, --workers N,
                                         #    --cache F, --baseline F,
                                         #    --fail-on SEV, --format sarif)
    viprof recover SESSION_DIR           # salvage a crash-damaged session
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.overhead import decompose_overhead
from repro.system.api import base_run, oprofile_profile, viprof_profile
from repro.system.experiment import run_case_study, run_overhead_matrix
from repro.workloads import by_name, paper_suite

__all__ = ["main"]


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=0.25,
                   help="fraction of paper-scale run length (default 0.25)")
    p.add_argument("--period", type=int, default=90_000,
                   help="sampling period in cycles (default 90000)")
    p.add_argument("--seed", type=int, default=7)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.workloads.specjvm98 import (
        compress, db, jack, javac, jess, mpegaudio, mtrt,
    )

    print(f"{'name':<12}{'base (s)':>9}  description")
    for wl in paper_suite():
        print(f"{wl.name:<12}{wl.base_time_s:>9.2f}  {wl.description}")
    print("\nIndividual JVM98 programs:")
    for f in (compress, jess, db, javac, mpegaudio, mtrt, jack):
        wl = f()
        print(f"{wl.name:<12}{wl.base_time_s:>9.2f}  {wl.description}")
    return 0


def _format_stage_stats(stats: dict) -> str:
    """Render a resolver chain's per-stage counters as aligned rows.

    Stages running in degraded (post-salvage) mode get one extra row per
    degradation counter, so a recovered session's losses are visible in
    the same table as its hits.
    """
    lines = [f"{'stage':<16}{'hits':>8}{'misses':>8}"]
    for entry in stats["stages"]:
        lines.append(
            f"{entry['stage']:<16}{entry['hits']:>8}{entry['misses']:>8}"
        )
        for key, value in (entry.get("degraded") or {}).items():
            lines.append(f"  degraded: {key} = {value}")
    return "\n".join(lines)


def _run_fleet_report(
    workloads: list,
    args: argparse.Namespace,
    workers: int | str = 1,
    summary_out: str | None = None,
) -> int:
    """Shared fleet engine of ``report --per-domain`` and ``xen --fleet``:
    run the guests, resolve per domain, print the cross-domain view."""
    import json

    from repro.metrics.fleet import (
        domain_summary,
        fleet_report_doc,
        fleet_rollup,
    )
    from repro.xen.fleet import run_fleet

    fs = run_fleet(
        workloads, period=args.period, time_scale=args.scale, seed=args.seed
    )
    summaries = {}
    for did in fs.domain_ids:
        drep, dchain = fs.domain_resolve(did)
        summaries[did] = domain_summary(
            did,
            drep,
            stats=dchain.stats_dict(),
            meta={"workload": fs.result.guests[did].domain.name},
        )
    rollup = fleet_rollup(summaries)
    if summary_out:
        rollup.save(summary_out)
    if args.json:
        doc = fleet_report_doc(summaries, rollup, top_n=args.rows)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    report, chain = fs.resolve(workers=workers)
    print(f"fleet: {len(fs.domain_ids)} domains, "
          f"{len(fs.result.buffer)} samples, "
          f"{100 * fs.result.xen_share():.2f}% in the hypervisor\n")
    for did in fs.domain_ids:
        s = summaries[did]
        name = s.meta.get("workload", "?")
        print(f"== dom{did} ({name}): {s.total_samples} samples ==")
        layers = s.panel("layers")
        if layers:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(layers.items()) if k != "total"
            )
            print(f"   layers: {parts}")
        for e in s.symbols[: args.rows]:
            counts = ", ".join(f"{ev}={n}" for ev, n in sorted(e.counts.items()))
            print(f"   {e.image:<14} {e.symbol}  ({counts})")
        print()
    print("== fleet rollup ==")
    print(report.format_table(limit=args.rows))
    print("\nresolution stages:")
    print(_format_stage_stats(chain.stats_dict()))
    if summary_out:
        print(f"\nwrote {summary_out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.per_domain or len(args.benchmark) > 1:
        workers = (
            args.workers if args.workers == "auto" else int(args.workers)
        )
        return _run_fleet_report(
            [by_name(n) for n in args.benchmark], args, workers=workers
        )
    result = viprof_profile(
        by_name(args.benchmark[0]), period=args.period,
        time_scale=args.scale, seed=args.seed,
    )
    workers = args.workers if args.workers == "auto" else int(args.workers)
    vr = result.viprof_report(
        workers=workers, resolve_cache=not args.no_resolve_cache,
        columnar=args.columnar,
    )
    if args.json:
        from repro.profiling.export import report_to_json

        print(report_to_json(vr.report, stats=vr.stage_stats))
        return 0
    print(vr.report.format_table(limit=args.rows))
    s = vr.jit_stats
    print(f"\n{s.jit_samples} JIT samples, "
          f"{100 * s.resolution_rate:.1f}% resolved")
    print("\nresolution stages:")
    stats = vr.stage_stats
    print(_format_stage_stats(stats))
    cache = stats.get("cache")
    if cache is not None:
        print(f"resolve cache: {cache['hits']}/{stats['total_samples']} "
              f"hits ({100 * cache['hit_rate']:.1f}%)")
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    result = run_case_study(
        args.benchmark, period=args.period, time_scale=args.scale,
        seed=args.seed, limit=args.rows,
    )
    print(result.side_by_side())
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    workloads = (
        [by_name(n) for n in args.benchmarks] if args.benchmarks else None
    )
    matrix = run_overhead_matrix(
        workloads, time_scale=args.scale, seed=args.seed
    )
    print(matrix.format_figure2())
    print()
    print(matrix.format_figure3())
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    wl = args.benchmark
    base = base_run(by_name(wl), time_scale=args.scale, seed=args.seed)
    for profiler, runner in (
        ("oprofile", oprofile_profile),
        ("viprof", viprof_profile),
    ):
        run = runner(
            by_name(wl), period=args.period,
            time_scale=args.scale, seed=args.seed,
        )
        print(decompose_overhead(base, run).format_row())
    return 0


def _cmd_annotate(args: argparse.Namespace) -> int:
    result = viprof_profile(
        by_name(args.benchmark), period=args.period,
        time_scale=args.scale, seed=args.seed,
    )
    vr = result.viprof_report()
    method = args.method
    if method is None:
        method = next(
            r.symbol for r in vr.report.sorted_rows() if r.image == "JIT.App"
        )
    ann = vr.post.annotate_jit(method, bucket_bytes=args.bucket)
    print(ann.format_table(limit=args.rows))
    hot = ann.hottest("GLOBAL_POWER_EVENTS")
    if hot is not None:
        print(f"\nhottest bucket: offset {hot.offset} "
              f"(~bytecode {hot.bytecode_index})")
    return 0


def _run_analyze(
    a: str,
    b: str,
    config_path: str | None,
    event: str | None,
    as_json: bool,
    rows: int,
    fail_on_regression: bool,
) -> int:
    """Shared engine of ``viprof analyze`` and the two-path ``diff`` mode.

    Exit codes: 0 clean, 2 on unusable inputs/config, 3 when
    ``fail_on_regression`` and a gate tripped.
    """
    from repro.errors import AnalysisError
    from repro.metrics import analyze, load_config, load_input

    try:
        config = load_config(config_path) if config_path else None
        result = analyze(
            load_input(a), load_input(b),
            config=config, event=event, a_label=a, b_label=b,
        )
    except AnalysisError as e:
        print(f"viprof analyze: {e}", file=sys.stderr)
        return 2
    if as_json:
        print(result.to_json(), end="")
    else:
        print(result.format_table(limit=rows))
    if fail_on_regression and not result.ok:
        return 3
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    return _run_analyze(
        args.a, args.b, args.config, args.event, args.json, args.rows,
        args.fail_on_regression,
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.profiling.diff import diff_reports

    if len(args.target) == 2:
        # Two existing session dirs / summary files: delegate to the
        # analyze machinery (informational — no regression gating here).
        a, b = args.target
        return _run_analyze(
            a, b, getattr(args, "config", None), None, False, args.rows,
            fail_on_regression=False,
        )
    if len(args.target) != 1:
        print(
            "viprof diff: expected one benchmark name or two "
            "session/summary paths",
            file=sys.stderr,
        )
        return 2
    benchmark = args.target[0]
    p_before, p_after = args.period
    before = viprof_profile(
        by_name(benchmark), period=p_before,
        time_scale=args.scale, seed=args.seed,
    )
    after = viprof_profile(
        by_name(benchmark), period=p_after,
        time_scale=args.scale, seed=args.seed,
    )
    d = diff_reports(
        before.viprof_report().report, after.viprof_report().report
    )
    print(f"profile diff: period {p_before} -> {p_after}")
    print(d.format_table(limit=args.rows))
    return 0


def _cmd_pgo(args: argparse.Namespace) -> int:
    from repro.pgo import run_pgo_experiment

    result = run_pgo_experiment(
        lambda: by_name(args.benchmark), time_scale=args.scale,
        period=args.period, seed=args.seed,
    )
    print(result.format_summary())
    print(f"compilation events: {result.baseline_compilations} -> "
          f"{result.guided_compilations}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import build_timeline

    result = viprof_profile(
        by_name(args.benchmark), period=args.period,
        time_scale=args.scale, seed=args.seed,
    )
    post = result.viprof_report().post
    tl = build_timeline(post.resolved_samples(), window_cycles=args.window)
    print(tl.format_table(top=args.top))
    transitions = tl.transitions(min_divergence=args.divergence)
    print(f"\nphase transitions at windows: {transitions or 'none'}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.statcheck import analyzer

    return analyzer.run(args)


def _cmd_index(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.viprof.arena import (
        ArenaError,
        CodeMapArena,
        arena_path_for,
        build_arena,
    )

    session_dir = Path(args.session_dir)
    map_dir = session_dir / "jit-maps"
    if not map_dir.is_dir():
        print(
            f"viprof index: {session_dir}: not a session directory "
            "(no jit-maps/ subdirectory)",
            file=sys.stderr,
        )
        return 2

    if args.check:
        try:
            arena = CodeMapArena.open_fresh(map_dir)
        except ArenaError as e:
            print(f"viprof index: {e}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(arena.info(), indent=2, sort_keys=True))
        else:
            print(
                f"{arena.path}: fresh ({arena.records} records, "
                f"epochs {list(arena.epochs)})"
            )
        arena.close()
        return 0

    if not args.force:
        try:
            arena = CodeMapArena.open_fresh(map_dir)
        except ArenaError:
            pass
        else:
            if args.json:
                print(json.dumps(arena.info(), indent=2, sort_keys=True))
            else:
                print(f"{arena.path}: already fresh (use --force to rebuild)")
            arena.close()
            return 0
    try:
        path = build_arena(map_dir)
    except ReproError as e:
        print(f"viprof index: {e}", file=sys.stderr)
        return 2
    if path is None:
        print(
            f"viprof index: {map_dir}: no epoch map files to compile",
            file=sys.stderr,
        )
        return 2
    arena = CodeMapArena.open(path)
    if args.json:
        print(json.dumps(arena.info(), indent=2, sort_keys=True))
    else:
        print(
            f"wrote {path} ({path.stat().st_size} bytes, "
            f"{arena.records} records, epochs {list(arena.epochs)})"
        )
    arena.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.viprof.salvage import salvage_session

    try:
        manifest = salvage_session(args.session_dir, dry_run=args.dry_run)
    except ReproError as e:
        print(f"viprof recover: {e}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "would salvage" if args.dry_run else "salvaged"
    print(f"{verb} {args.session_dir}")
    for f in manifest.sample_files:
        line = f"  {f.path}: {f.action}, {f.records_kept} records kept"
        if f.bytes_dropped:
            line += f", {f.bytes_dropped} bytes dropped"
        print(line)
    for m in manifest.maps:
        line = f"  {m.path}: {m.action} (epoch {m.epoch})"
        if m.reason:
            line += f" -- {m.reason}"
        print(line)
    print(f"  top epoch: {manifest.top_epoch}")
    quarantined = (
        ", ".join(str(e) for e in manifest.quarantined_epochs) or "none"
    )
    print(f"  quarantined epochs: {quarantined}")
    if not manifest.damaged:
        print("  session was intact; nothing repaired")
    return 0


def _cmd_xen(args: argparse.Namespace) -> int:
    from repro.xen import GuestSpec, MultiStackEngine

    if args.fleet:
        from repro.workloads.fleet import fleet_workloads

        workloads = fleet_workloads(args.fleet, seed=args.seed)
    else:
        if not args.benchmarks:
            print(
                "viprof xen: name at least one benchmark or pass --fleet N",
                file=sys.stderr,
            )
            return 2
        workloads = [by_name(n) for n in args.benchmarks]
    if args.fleet or args.per_domain or args.summary_out:
        workers = (
            args.workers if args.workers == "auto" else int(args.workers)
        )
        return _run_fleet_report(
            workloads, args, workers=workers, summary_out=args.summary_out
        )
    engine = MultiStackEngine(
        [GuestSpec(wl) for wl in workloads],
        period=args.period, time_scale=args.scale, seed=args.seed,
    )
    result = engine.run()
    print(f"{len(result.buffer)} samples, "
          f"{100 * result.xen_share():.2f}% in the hypervisor, "
          f"{result.hypervisor.world_switches} world switches\n")
    print(result.unified_report().format_table(limit=args.rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="viprof",
        description="VIProf reproduction: vertically integrated profiling "
        "on a simulated full system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")

    p = sub.add_parser("report", help="profile a benchmark with VIProf")
    p.add_argument("benchmark", nargs="+",
                   help="benchmark name; several names (or --per-domain) "
                        "run them as concurrent guest domains and print "
                        "the cross-domain fleet view")
    p.add_argument("--per-domain", action="store_true",
                   help="run the named benchmark(s) as guest domains under "
                        "the hypervisor and report per-domain panels plus "
                        "the merged fleet rollup")
    p.add_argument("--rows", type=int, default=15)
    p.add_argument("--json", action="store_true",
                   help="emit the report (plus per-stage resolution "
                        "counters) as JSON")
    p.add_argument("--workers", default="1",
                   help="shard sample resolution across N worker "
                        "processes, or 'auto' to size the pool from the "
                        "machine's core count (same output, faster; "
                        "default 1)")
    p.add_argument("--no-resolve-cache", action="store_true",
                   help="disable the epoch-aware PC resolution cache "
                        "(performance ablation; output is unchanged)")
    p.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="resolve with the columnar (deduplicated batch) "
                        "path; --no-columnar falls back to the per-sample "
                        "loop (performance ablation; output is unchanged)")
    _add_run_args(p)

    p = sub.add_parser("case-study", help="Figure 1 side-by-side")
    p.add_argument("--benchmark", default="ps")
    p.add_argument("--rows", type=int, default=14)
    _add_run_args(p)

    p = sub.add_parser("overhead", help="Figure 2/3 overhead sweep")
    p.add_argument("--benchmarks", nargs="*", default=None)
    _add_run_args(p)

    p = sub.add_parser("breakdown", help="overhead decomposition")
    p.add_argument("benchmark")
    _add_run_args(p)

    p = sub.add_parser("annotate", help="within-method sample histogram")
    p.add_argument("benchmark")
    p.add_argument("--method", default=None,
                   help="JIT method name (default: hottest)")
    p.add_argument("--bucket", type=int, default=64)
    p.add_argument("--rows", type=int, default=20)
    _add_run_args(p)

    p = sub.add_parser(
        "diff",
        help="diff one benchmark across two periods, or two existing "
        "sessions/summaries (delegates to analyze)",
    )
    p.add_argument("target", nargs="+", metavar="BENCHMARK|PATH",
                   help="one benchmark name, or two session directories / "
                        "summary JSON files")
    p.add_argument("--period", nargs=2, type=int, metavar=("BEFORE", "AFTER"),
                   default=[45_000, 90_000])
    p.add_argument("--config", default=None,
                   help="analysis config for the two-path mode (TOML/JSON)")
    p.add_argument("--rows", type=int, default=12)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "analyze",
        help="compare two sessions/summaries and gate on regressions",
    )
    p.add_argument("a", help="baseline: session dir, summary.json, "
                             "BENCH_*.json, or report --json file")
    p.add_argument("b", help="candidate (same flavors as the baseline)")
    p.add_argument("--config", default=None,
                   help="TOML/JSON analysis config (panels + regression "
                        "thresholds); default gates symbol shares, cache "
                        "hit rate, and layer shares")
    p.add_argument("--event", default=None,
                   help="event to compare symbol shares on (default: "
                        "first common event)")
    p.add_argument("--json", action="store_true",
                   help="emit the full analysis as canonical JSON "
                        "(byte-stable across runs)")
    p.add_argument("--rows", type=int, default=15)
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 3 when any configured gate trips")

    p = sub.add_parser("pgo", help="profile-guided optimization demo")
    p.add_argument("benchmark")
    _add_run_args(p)

    p = sub.add_parser("xen", help="multi-stack XenoProf demo")
    p.add_argument("benchmarks", nargs="*",
                   help="guest benchmarks (omit with --fleet N)")
    p.add_argument("--rows", type=int, default=14)
    p.add_argument("--fleet", type=int, default=0, metavar="N",
                   help="run a synthetic N-guest fleet (staggered "
                        "steady/bursty/recompile-heavy profiles) instead "
                        "of named benchmarks")
    p.add_argument("--per-domain", action="store_true",
                   help="print per-domain panels plus the fleet rollup")
    p.add_argument("--summary-out", default=None, metavar="PATH",
                   help="write the merged fleet rollup as summary JSON")
    p.add_argument("--json", action="store_true",
                   help="emit the cross-domain fleet document as JSON")
    p.add_argument("--workers", default="1",
                   help="shard fleet resolution across N worker processes "
                        "('auto' sizes from core count; default 1)")
    _add_run_args(p)

    p = sub.add_parser(
        "lint", help="statically verify a session's profile artifacts"
    )
    from repro.statcheck import analyzer as _lint_analyzer

    _lint_analyzer.configure_parser(p)

    p = sub.add_parser(
        "recover",
        help="salvage a crash-damaged session directory (truncate torn "
        "sample files, quarantine malformed maps, write salvage.json)",
    )
    p.add_argument("session_dir")
    p.add_argument("--dry-run", action="store_true",
                   help="diagnose only; do not modify the session")
    p.add_argument("--json", action="store_true",
                   help="emit the salvage manifest as JSON")

    p = sub.add_parser(
        "index",
        help="compile a session's epoch code maps into the zero-copy "
        "mmap arena (jit-maps.arena) used by viprof report",
    )
    p.add_argument("session_dir")
    p.add_argument("--check", action="store_true",
                   help="verify only: exit 0 if a fresh arena exists, "
                        "1 if it is missing, corrupt, or stale")
    p.add_argument("--force", action="store_true",
                   help="rebuild even when the existing arena is fresh")
    p.add_argument("--json", action="store_true",
                   help="emit the arena inspection payload as JSON")

    p = sub.add_parser("timeline", help="phase-behaviour timeline")
    p.add_argument("benchmark")
    p.add_argument("--window", type=int, default=2_000_000,
                   help="window size in cycles")
    p.add_argument("--top", type=int, default=2)
    p.add_argument("--divergence", type=float, default=0.4)
    _add_run_args(p)

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "report": _cmd_report,
        "case-study": _cmd_case_study,
        "overhead": _cmd_overhead,
        "breakdown": _cmd_breakdown,
        "annotate": _cmd_annotate,
        "diff": _cmd_diff,
        "analyze": _cmd_analyze,
        "pgo": _cmd_pgo,
        "xen": _cmd_xen,
        "timeline": _cmd_timeline,
        "lint": _cmd_lint,
        "recover": _cmd_recover,
        "index": _cmd_index,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # `viprof ... | head` closed the pipe: exit quietly like any
        # Unix tool.  Point stdout at devnull so the interpreter's
        # final flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
