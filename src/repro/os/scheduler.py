"""A deadline-aware round-robin scheduler.

The engine interleaves a small, fixed cast: the benchmark (JVM) process, the
profiler daemon (which sleeps and wakes on a period), and background system
processes (the X server that contributes the ``libfb``/``libxul`` samples in
Figure 1).  The scheduler picks the runnable task whose wake deadline has
passed, round-robin among ties, and charges a context-switch cost whenever
the chosen task differs from the previous one.

This is intentionally simpler than CFS/O(1) — what matters for the
reproduction is *that* daemon wakeups preempt the benchmark at the right
times and cost cycles, not the exact scheduling algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ConfigError
from repro.os.process import Process

__all__ = ["TaskState", "Task", "Scheduler", "CONTEXT_SWITCH_CYCLES"]

#: Cost of one context switch (register save/restore, TLB effects folded in).
CONTEXT_SWITCH_CYCLES = 900


class TaskState(Enum):
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    EXITED = "exited"


@dataclass
class Task:
    """A schedulable entity wrapping a process.

    Attributes:
        process: underlying process.
        wake_at: absolute cycle at which a SLEEPING task becomes runnable.
        priority: lower value = preferred on ties (the daemon runs at a
            favourable priority, as oprofiled does).
    """

    process: Process
    state: TaskState = TaskState.RUNNABLE
    wake_at: int = 0
    priority: int = 10
    scheduled_count: int = field(default=0)

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def name(self) -> str:
        return self.process.name


class Scheduler:
    """Round-robin over runnable tasks with sleep deadlines."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._last: Optional[Task] = None
        self.context_switches = 0

    def add(self, task: Task) -> None:
        if any(t.pid == task.pid for t in self._tasks):
            raise ConfigError(f"pid {task.pid} already scheduled")
        self._tasks.append(task)

    def remove(self, task: Task) -> None:
        task.state = TaskState.EXITED

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(t for t in self._tasks if t.state is not TaskState.EXITED)

    def sleep(self, task: Task, until: int) -> None:
        """Put ``task`` to sleep until absolute cycle ``until``."""
        task.state = TaskState.SLEEPING
        task.wake_at = until

    def wake_expired(self, now: int) -> None:
        for t in self._tasks:
            if t.state is TaskState.SLEEPING and t.wake_at <= now:
                t.state = TaskState.RUNNABLE

    def next_wake(self) -> Optional[int]:
        """Earliest wake deadline among sleepers, or None."""
        deadlines = [
            t.wake_at for t in self._tasks if t.state is TaskState.SLEEPING
        ]
        return min(deadlines) if deadlines else None

    def pick(self, now: int) -> tuple[Optional[Task], int]:
        """Choose the next task to run at cycle ``now``.

        Returns ``(task, switch_cost_cycles)``.  ``task`` is None when
        every live task is sleeping (the CPU would idle until
        :meth:`next_wake`).
        """
        self.wake_expired(now)
        runnable = [t for t in self._tasks if t.state is TaskState.RUNNABLE]
        if not runnable:
            return None, 0
        # Priority first; round-robin within the best priority class by
        # preferring tasks scheduled least recently (lowest count).
        best_prio = min(t.priority for t in runnable)
        pool = [t for t in runnable if t.priority == best_prio]
        task = min(pool, key=lambda t: (t.scheduled_count, t.pid))
        task.scheduled_count += 1
        cost = 0
        if self._last is not None and self._last is not task:
            cost = CONTEXT_SWITCH_CYCLES
            self.context_switches += 1
        self._last = task
        return task, cost
