"""Shared half-open integer interval index.

Several subsystems need the same primitive — "which record covers this
address?" — over sets of ``[start, end)`` ranges: per-epoch JIT code maps
(:mod:`repro.viprof.codemap`), the boot-image map, VMA lookups, and the
static artifact analyzer (:mod:`repro.statcheck`), which additionally must
*detect* overlaps inside artifacts it cannot trust to be well-formed.

:class:`IntervalIndex` therefore makes no well-formedness assumption: it
accepts overlapping input, answers stabbing queries in ``O(log n + k)``
via a sorted-start array plus a prefix-maximum of ends (a flattened static
interval tree), and reports every overlapping pair on demand so callers
can either reject bad data up front (``CodeMap``) or turn each pair into a
lint finding (``statcheck``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, TypeVar

from repro.errors import ConfigError

__all__ = ["Interval", "IntervalIndex", "PackedIntervalTable"]

P = TypeVar("P")


@dataclass(frozen=True, slots=True)
class Interval(Generic[P]):
    """A half-open range ``[start, end)`` carrying an arbitrary payload."""

    start: int
    end: int
    payload: P

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(
                f"empty interval [{self.start:#x}, {self.end:#x})"
            )

    def contains(self, point: int) -> bool:
        return self.start <= point < self.end

    def overlaps(self, other: "Interval[P]") -> bool:
        return self.start < other.end and other.start < self.end


class IntervalIndex(Generic[P]):
    """Static index over intervals; tolerant of overlapping input.

    Lookup strategy: intervals are kept sorted by ``start``.  For a point
    query we bisect to the rightmost interval starting at or before the
    point, then walk left while the *prefix maximum end* promises that an
    earlier interval could still reach the point.  For non-overlapping
    data this degenerates to the classic single-probe binary search.
    """

    def __init__(self, intervals: Iterable[Interval[P]]) -> None:
        self._intervals = sorted(
            intervals, key=lambda iv: (iv.start, iv.end)
        )
        self._starts = [iv.start for iv in self._intervals]
        self._prefix_max_end: list[int] = []
        running = 0
        for iv in self._intervals:
            running = max(running, iv.end)
            self._prefix_max_end.append(running)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval[P]]:
        return iter(self._intervals)

    @property
    def intervals(self) -> tuple[Interval[P], ...]:
        return tuple(self._intervals)

    # ------------------------------------------------------------------
    # Stabbing queries
    # ------------------------------------------------------------------

    def stab(self, point: int) -> tuple[Interval[P], ...]:
        """Every interval covering ``point``, in ascending start order."""
        hits: list[Interval[P]] = []
        i = bisect.bisect_right(self._starts, point) - 1
        while i >= 0 and self._prefix_max_end[i] > point:
            if self._intervals[i].contains(point):
                hits.append(self._intervals[i])
            i -= 1
        hits.reverse()
        return tuple(hits)

    def first_covering(self, point: int) -> Interval[P] | None:
        """The covering interval with the greatest start, or None.

        For non-overlapping data (code maps, VMAs) this is *the* covering
        interval, found with one bisect probe.
        """
        i = bisect.bisect_right(self._starts, point) - 1
        while i >= 0 and self._prefix_max_end[i] > point:
            if self._intervals[i].contains(point):
                return self._intervals[i]
            i -= 1
        return None

    def first_covering_many(
        self, points: Iterable[int]
    ) -> list[Interval[P] | None]:
        """:meth:`first_covering` over an **ascending** run of points.

        Consecutive points from a sorted run tend to land in the same
        interval (a hot method body covers many sampled PCs), so the last
        hit is re-tested before paying another bisect — the columnar
        resolver's bulk lookup.  Results are positionally aligned with the
        input and identical to calling :meth:`first_covering` per point.
        """
        starts = self._starts
        n = len(starts)
        out: list[Interval[P] | None] = []
        last: Interval[P] | None = None
        last_i = -1
        prev: int | None = None
        for p in points:
            if prev is not None and p < prev:
                raise ConfigError(
                    f"first_covering_many needs ascending points "
                    f"({p:#x} after {prev:#x})"
                )
            prev = p
            # The shortcut must preserve "greatest covering start": it is
            # only safe while no later-starting interval has reached p.
            if (
                last is not None
                and last.contains(p)
                and (last_i + 1 >= n or starts[last_i + 1] > p)
            ):
                out.append(last)
                continue
            i = bisect.bisect_right(starts, p) - 1
            last = None
            last_i = -1
            while i >= 0 and self._prefix_max_end[i] > p:
                if self._intervals[i].contains(p):
                    last = self._intervals[i]
                    last_i = i
                    break
                i -= 1
            out.append(last)
        return out

    # ------------------------------------------------------------------
    # Overlap detection
    # ------------------------------------------------------------------

    def overlapping_pairs(self) -> list[tuple[Interval[P], Interval[P]]]:
        """Every pair of overlapping intervals (sweep over sorted starts)."""
        pairs: list[tuple[Interval[P], Interval[P]]] = []
        active: list[Interval[P]] = []
        for iv in self._intervals:
            active = [a for a in active if a.end > iv.start]
            for a in active:
                pairs.append((a, iv))
            active.append(iv)
        return pairs

    def is_disjoint(self) -> bool:
        prev_end: int | None = None
        for iv in self._intervals:
            if prev_end is not None and iv.start < prev_end:
                return False
            prev_end = iv.end if prev_end is None else max(prev_end, iv.end)
        return True


class PackedIntervalTable:
    """Stabbing queries over **disjoint** ``[start, end)`` ranges stored as
    two parallel sorted integer columns — no :class:`Interval` objects.

    This is the zero-copy counterpart of :class:`IntervalIndex` for data
    whose well-formedness was proven at *build* time (the code-map arena:
    per-epoch records are validated non-overlapping before they are packed,
    so the prefix-maximum walk degenerates to a single probe).  The columns
    may be any sorted integer sequences — ``list``, ``array('q')``, or a
    ``memoryview`` cast over an ``mmap`` — which is what lets every shard
    worker bisect the same on-disk page cache without materializing
    anything.

    Queries return **row indices** (``-1`` for no cover) instead of
    payloads; the caller owns row→record materialization, so rows that
    never reach a report are never built.  Result positions are identical
    to :meth:`IntervalIndex.first_covering` /
    :meth:`IntervalIndex.first_covering_many` over the same ranges
    (property-tested in ``tests/os/test_intervals.py``).
    """

    __slots__ = ("_starts", "_ends", "_n")

    def __init__(self, starts, ends) -> None:
        if len(starts) != len(ends):
            raise ConfigError(
                f"packed table columns disagree: {len(starts)} starts "
                f"vs {len(ends)} ends"
            )
        self._starts = starts
        self._ends = ends
        self._n = len(starts)

    def __len__(self) -> int:
        return self._n

    def first_covering(self, point: int) -> int:
        """Row index of the interval covering ``point``, or ``-1``.

        Disjoint + sorted means the only candidate is the rightmost row
        starting at or before the point — one bisect, no leftward walk.
        """
        i = bisect.bisect_right(self._starts, point) - 1
        if i >= 0 and point < self._ends[i]:
            return i
        return -1

    def first_covering_many(self, points: Iterable[int]) -> list[int]:
        """:meth:`first_covering` over an **ascending** run of points.

        Same contract and same last-hit shortcut as
        :meth:`IntervalIndex.first_covering_many`: consecutive sorted PCs
        tend to land in one method body, so the previous row is re-tested
        before paying another bisect.
        """
        starts = self._starts
        ends = self._ends
        n = self._n
        out: list[int] = []
        last = -1
        prev: int | None = None
        for p in points:
            if prev is not None and p < prev:
                raise ConfigError(
                    f"first_covering_many needs ascending points "
                    f"({p:#x} after {prev:#x})"
                )
            prev = p
            # Safe for the same reason as the object index: disjoint rows
            # mean re-using the last hit cannot skip a later-starting row
            # unless that row has already reached p.
            if (
                last >= 0
                and starts[last] <= p < ends[last]
                and (last + 1 >= n or starts[last + 1] > p)
            ):
                out.append(last)
                continue
            i = bisect.bisect_right(starts, p) - 1
            last = i if (i >= 0 and p < ends[i]) else -1
            out.append(last)
        return out
