"""Processes (tasks).

Kept deliberately small: a process is a pid, a name, an address space, and
bookkeeping the scheduler and profilers need.  Thread-level detail is not
modelled — the paper profiles a single-application stack and attributes
samples per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.os.address_space import AddressSpace

__all__ = ["Process"]


@dataclass
class Process:
    """A user-space task.

    Attributes:
        pid: process id (unique per kernel).
        name: command name (``comm``).
        address_space: the task's memory map.
        cpu_cycles: cycles this task has executed (engine-maintained).
    """

    pid: int
    name: str
    address_space: AddressSpace = field(default_factory=AddressSpace)
    cpu_cycles: int = 0

    def __hash__(self) -> int:
        return self.pid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process(pid={self.pid}, name={self.name!r})"
