"""Program loader and the standard i386-Linux address-space layout.

The loader places the main executable at the classic 0x08048000, shared
libraries from 0x40000000 upward, anonymous maps (the JVM heap) from
0x60000000, and the stack just below 0xC0000000 where kernel space begins.
These are the address ranges visible in the paper's Figure 1 (e.g.
``anon (range:0x62...)`` for the Jikes RVM heap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LoaderError
from repro.os.address_space import PAGE_SIZE, VMA, AddressSpace, VmaKind
from repro.os.binary import BinaryImage

__all__ = ["Layout", "ProgramLoader"]


@dataclass(frozen=True, slots=True)
class Layout:
    """Address-space layout constants."""

    exe_base: int = 0x0804_8000
    lib_base: int = 0x4000_0000
    anon_base: int = 0x6000_0000
    stack_top: int = 0xBFFF_F000
    stack_size: int = 0x0010_0000
    kernel_base: int = 0xC000_0000

    def __post_init__(self) -> None:
        if not (
            self.exe_base
            < self.lib_base
            < self.anon_base
            < self.stack_top
            <= self.kernel_base
        ):
            raise LoaderError("layout regions out of order")


class ProgramLoader:
    """Builds a process's address space.

    One loader instance serves one address space; it tracks bump cursors for
    the library and anonymous regions so successive loads don't collide.
    """

    def __init__(self, address_space: AddressSpace, layout: Layout | None = None):
        self.space = address_space
        self.layout = layout or Layout()
        self._lib_cursor = self.layout.lib_base
        self._anon_cursor = self.layout.anon_base

    def load_executable(self, image: BinaryImage) -> VMA:
        """Map the main executable at the fixed executable base."""
        return self.space.map(
            self.layout.exe_base, image.size, VmaKind.FILE, image=image
        )

    def load_library(self, image: BinaryImage) -> VMA:
        """Map a shared library at the next free library slot."""
        start = self._lib_cursor
        if start + image.size > self.layout.anon_base:
            raise LoaderError(f"library region exhausted loading {image.name!r}")
        vma = self.space.map(start, image.size, VmaKind.FILE, image=image)
        self._lib_cursor = vma.end + PAGE_SIZE  # guard page
        return vma

    def map_file_segment(
        self, image: BinaryImage, at: int, image_offset: int = 0
    ) -> VMA:
        """Map (part of) an image at a caller-chosen address — used for the
        Jikes RVM boot image, which loads at a fixed heap address."""
        return self.space.map(
            at, image.size - image_offset, VmaKind.FILE, image=image,
            image_offset=image_offset,
        )

    def map_anonymous(self, size: int, at: int | None = None) -> VMA:
        """Anonymous mapping (heap segment).  With ``at=None`` the next free
        anonymous slot is used."""
        if at is None:
            at = self._anon_cursor
        if at + size > self.layout.stack_top - self.layout.stack_size:
            raise LoaderError("anonymous region exhausted")
        vma = self.space.map(at, size, VmaKind.ANON)
        if vma.end > self._anon_cursor:
            self._anon_cursor = vma.end + PAGE_SIZE
        return vma

    def map_stack(self) -> VMA:
        """Map the main thread stack just below the kernel boundary."""
        start = self.layout.stack_top - self.layout.stack_size
        return self.space.map(start, self.layout.stack_size, VmaKind.STACK)
