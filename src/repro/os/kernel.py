"""The kernel: symbols, process table, and NMI dispatch.

For a sampling profiler the kernel matters in three ways, all modelled here:

1. Kernel-mode PCs must resolve against the ``vmlinux`` symbol table
   (``schedule``, ``do_page_fault`` and friends show up in real profiles).
2. ``current`` — which task a sample belongs to — comes from the kernel.
3. A profiling module registers for NMI callbacks through the kernel, and
   the kernel charges handler time (OProfile's main runtime cost).

The kernel also provides a small catalogue of *activities* (timer tick,
syscall service, page fault) the engine mixes into the instruction stream so
kernel symbols appear in profiles with realistic weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressSpaceError
from repro.os.binary import BinaryImage, Symbol
from repro.os.loader import Layout
from repro.os.process import Process

__all__ = ["Kernel", "KernelActivity", "build_vmlinux"]


_KERNEL_FUNCS: tuple[tuple[str, int], ...] = (
    ("default_idle", 0x80),
    ("schedule", 0x600),
    ("__switch_to", 0x180),
    ("do_page_fault", 0x500),
    ("handle_mm_fault", 0x700),
    ("do_IRQ", 0x280),
    ("timer_interrupt", 0x200),
    ("do_gettimeofday", 0x100),
    ("sys_read", 0x240),
    ("sys_write", 0x240),
    ("sys_mmap2", 0x300),
    ("do_softirq", 0x200),
    ("kmalloc", 0x200),
    ("kfree", 0x180),
    ("copy_to_user", 0x140),
    ("copy_from_user", 0x140),
    ("oprofile_nmi_handler", 0x180),
    ("oprofile_add_sample", 0x140),
)


def build_vmlinux() -> BinaryImage:
    """Build the kernel image with a representative symbol table."""
    syms: list[Symbol] = []
    off = 0x10_0000  # .text does not start at the image base
    for name, size in _KERNEL_FUNCS:
        syms.append(Symbol(offset=off, size=size, name=name))
        off += size + 32
    return BinaryImage("vmlinux", 0x40_0000, syms)


@dataclass(frozen=True, slots=True)
class KernelActivity:
    """A named slice of kernel work the engine can schedule.

    Attributes:
        symbol: kernel function the PC dwells in.
        cycles: cost per occurrence.
    """

    symbol: str
    cycles: int


class Kernel:
    """Kernel state shared by every component of a simulated machine."""

    def __init__(self, layout: Layout | None = None) -> None:
        self.layout = layout or Layout()
        self.image = build_vmlinux()
        self._procs: dict[int, Process] = {}
        self._next_pid = 1000

    # -- process table --------------------------------------------------

    def spawn(self, name: str) -> Process:
        """Create a process with a fresh pid and empty address space."""
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(pid=pid, name=name)
        self._procs[pid] = proc
        return proc

    def process(self, pid: int) -> Process | None:
        return self._procs.get(pid)

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._procs.values())

    # -- kernel-space symbolization --------------------------------------

    def kernel_pc(self, symbol: str, offset: int = 0) -> int:
        """Virtual address of ``symbol`` (+offset) in kernel space."""
        sym = self.image.find_symbol(symbol)
        if offset >= sym.size:
            offset = sym.size - 4
        return self.layout.kernel_base + sym.offset + offset

    def is_kernel_address(self, addr: int) -> bool:
        return addr >= self.layout.kernel_base

    def resolve_kernel(self, addr: int) -> tuple[str, str]:
        """Kernel PC → ``(image_name, symbol_name)``.

        Raises:
            AddressSpaceError: for user-space addresses.
        """
        if not self.is_kernel_address(addr):
            raise AddressSpaceError(f"{addr:#x} is not a kernel address")
        off = addr - self.layout.kernel_base
        return self.image.name, self.image.symbol_name_at(off)

    # -- canonical background activities ---------------------------------

    def standard_activities(self) -> tuple[KernelActivity, ...]:
        """Kernel work mixed into every run (weights tuned so the kernel
        takes a low single-digit share of cycles, as in the paper's
        profiles)."""
        return (
            KernelActivity("timer_interrupt", 220),
            KernelActivity("do_IRQ", 260),
            KernelActivity("schedule", 700),
            KernelActivity("do_page_fault", 900),
            KernelActivity("handle_mm_fault", 800),
            KernelActivity("sys_read", 500),
            KernelActivity("sys_write", 500),
            KernelActivity("do_softirq", 300),
        )
