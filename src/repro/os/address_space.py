"""Per-process virtual address spaces.

An :class:`AddressSpace` is an ordered, non-overlapping set of
:class:`VMA` records.  This is the structure OProfile's kernel side walks on
every sample: given a PC it finds the covering VMA, and from it either an
``(image, offset)`` pair (file-backed mapping) or an *anonymous region* —
the case that defeats stock OProfile when the region holds JIT code.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum

from repro.errors import AddressSpaceError
from repro.os.binary import BinaryImage

__all__ = ["VmaKind", "VMA", "AddressSpace", "PAGE_SIZE"]

PAGE_SIZE = 0x1000


class VmaKind(Enum):
    """Why a region exists; determines how a profiler labels samples in it."""

    FILE = "file"  # backed by a binary image (exe / shared library)
    ANON = "anon"  # anonymous mmap (JVM heap lives here)
    STACK = "stack"
    VDSO = "vdso"


def _page_align_down(x: int) -> int:
    return x & ~(PAGE_SIZE - 1)


def _page_align_up(x: int) -> int:
    return (x + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


@dataclass(frozen=True, slots=True)
class VMA:
    """One virtual memory area: ``[start, end)``.

    ``image`` and ``image_offset`` are set for FILE mappings only:
    an address ``a`` inside the VMA corresponds to image offset
    ``a - start + image_offset``.
    """

    start: int
    end: int
    kind: VmaKind
    image: BinaryImage | None = None
    image_offset: int = 0

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise AddressSpaceError(
                f"VMA [{self.start:#x},{self.end:#x}) not page aligned"
            )
        if self.end <= self.start:
            raise AddressSpaceError(f"empty VMA [{self.start:#x},{self.end:#x})")
        if self.kind is VmaKind.FILE and self.image is None:
            raise AddressSpaceError("FILE VMA requires an image")
        if self.kind is not VmaKind.FILE and self.image is not None:
            raise AddressSpaceError(f"{self.kind} VMA must not carry an image")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def to_image_offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise AddressSpaceError(
                f"address {addr:#x} outside VMA [{self.start:#x},{self.end:#x})"
            )
        return addr - self.start + self.image_offset

    def label(self) -> str:
        """The name opreport would print for this region."""
        if self.kind is VmaKind.FILE:
            assert self.image is not None
            return self.image.name
        if self.kind is VmaKind.ANON:
            return f"anon (range:{self.start:#x}-{self.end:#x})"
        return self.kind.value


class AddressSpace:
    """Sorted set of non-overlapping VMAs with O(log n) lookup."""

    def __init__(self) -> None:
        self._vmas: list[VMA] = []
        self._starts: list[int] = []

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self):
        return iter(self._vmas)

    @property
    def vmas(self) -> tuple[VMA, ...]:
        return tuple(self._vmas)

    def map(
        self,
        start: int,
        size: int,
        kind: VmaKind,
        image: BinaryImage | None = None,
        image_offset: int = 0,
    ) -> VMA:
        """Install a mapping; ``start`` is page-aligned down and the length
        page-aligned up, mirroring ``mmap`` semantics.

        Raises:
            AddressSpaceError: if the new region overlaps an existing VMA.
        """
        a_start = _page_align_down(start)
        a_end = _page_align_up(start + size)
        vma = VMA(a_start, a_end, kind, image, image_offset)
        i = bisect.bisect_left(self._starts, a_start)
        if i > 0 and self._vmas[i - 1].end > a_start:
            raise AddressSpaceError(
                f"mapping [{a_start:#x},{a_end:#x}) overlaps "
                f"[{self._vmas[i-1].start:#x},{self._vmas[i-1].end:#x})"
            )
        if i < len(self._vmas) and self._vmas[i].start < a_end:
            raise AddressSpaceError(
                f"mapping [{a_start:#x},{a_end:#x}) overlaps "
                f"[{self._vmas[i].start:#x},{self._vmas[i].end:#x})"
            )
        self._vmas.insert(i, vma)
        self._starts.insert(i, a_start)
        return vma

    def unmap(self, vma: VMA) -> None:
        try:
            i = self._vmas.index(vma)
        except ValueError:
            raise AddressSpaceError(
                f"VMA [{vma.start:#x},{vma.end:#x}) not mapped"
            ) from None
        del self._vmas[i]
        del self._starts[i]

    def resolve(self, addr: int) -> VMA | None:
        """Return the VMA covering ``addr``, or None if unmapped."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        vma = self._vmas[i]
        return vma if vma.contains(addr) else None

    def resolve_symbolic(self, addr: int) -> tuple[str, str] | None:
        """One-shot PC → ``(image_label, symbol_name)`` resolution.

        Convenience wrapper used in tests and reports; the profilers perform
        the same steps piecemeal because they record intermediate state.
        """
        vma = self.resolve(addr)
        if vma is None:
            return None
        if vma.kind is VmaKind.FILE:
            assert vma.image is not None
            return vma.image.name, vma.image.symbol_name_at(vma.to_image_offset(addr))
        from repro.os.binary import NO_SYMBOLS

        return vma.label(), NO_SYMBOLS
