"""ELF-like binary images and symbol tables.

A :class:`BinaryImage` is what OProfile calls an *image*: an executable, a
shared library, the kernel, or a kernel module.  Images carry an optional
symbol table; stripped images (``libxul.so`` in the paper's Figure 1) resolve
every offset to ``(no symbols)``.

Symbol resolution is a bisect over symbols sorted by offset — the same
"largest symbol start not exceeding the offset, if within its size" rule
``opreport`` applies to ELF symbol tables.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import SymbolError

__all__ = ["Symbol", "BinaryImage", "standard_libraries", "NO_SYMBOLS"]

#: Marker opreport prints for samples inside a stripped image.
NO_SYMBOLS = "(no symbols)"


@dataclass(frozen=True, slots=True, order=True)
class Symbol:
    """One symbol-table entry: ``offset`` is image-relative."""

    offset: int
    size: int
    name: str

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise SymbolError(f"negative symbol offset for {self.name!r}")
        if self.size <= 0:
            raise SymbolError(f"non-positive symbol size for {self.name!r}")

    @property
    def end(self) -> int:
        return self.offset + self.size

    def contains(self, offset: int) -> bool:
        return self.offset <= offset < self.end


class BinaryImage:
    """An on-disk binary with an optional symbol table.

    Args:
        name: image name as reported (``vmlinux``, ``libc-2.3.2.so`` ...).
        size: total image size in bytes.
        symbols: iterable of :class:`Symbol`; may be empty (stripped image).

    Raises:
        SymbolError: if symbols overlap or spill past ``size``.
    """

    def __init__(self, name: str, size: int, symbols: list[Symbol] | None = None):
        if size <= 0:
            raise SymbolError(f"image {name!r} must have positive size")
        self.name = name
        self.size = size
        self._symbols: list[Symbol] = sorted(symbols or [])
        self._offsets: list[int] = [s.offset for s in self._symbols]
        prev: Symbol | None = None
        for s in self._symbols:
            if s.end > size:
                raise SymbolError(
                    f"symbol {s.name!r} ends at {s.end:#x}, past image size "
                    f"{size:#x} in {name!r}"
                )
            if prev is not None and s.offset < prev.end:
                raise SymbolError(
                    f"symbols {prev.name!r} and {s.name!r} overlap in {name!r}"
                )
            prev = s

    @property
    def stripped(self) -> bool:
        return not self._symbols

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        return tuple(self._symbols)

    def symbol_at(self, offset: int) -> Symbol | None:
        """Resolve an image-relative offset to its covering symbol.

        Returns ``None`` for offsets in symbol gaps or in stripped images.
        """
        if offset < 0 or offset >= self.size:
            return None
        i = bisect.bisect_right(self._offsets, offset) - 1
        if i < 0:
            return None
        sym = self._symbols[i]
        return sym if sym.contains(offset) else None

    def symbol_name_at(self, offset: int) -> str:
        """Like :meth:`symbol_at` but always returns a printable name."""
        sym = self.symbol_at(offset)
        return sym.name if sym is not None else NO_SYMBOLS

    def find_symbol(self, name: str) -> Symbol:
        for s in self._symbols:
            if s.name == name:
                return s
        raise SymbolError(f"no symbol {name!r} in image {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinaryImage({self.name!r}, size={self.size:#x}, syms={len(self._symbols)})"


@dataclass(frozen=True)
class _LibSpec:
    name: str
    size: int
    funcs: tuple[tuple[str, int], ...]  # (symbol, size)
    stripped: bool = False


# The user-space libraries visible in the paper's Figure 1 plus the usual
# suspects a Java process maps.  Sizes are representative, not exact.
_STANDARD_LIBS: tuple[_LibSpec, ...] = (
    _LibSpec(
        name="libc-2.3.2.so",
        size=0x130000,
        funcs=(
            ("memset", 0x200),
            ("memcpy", 0x240),
            ("strcmp", 0x120),
            ("malloc", 0x400),
            ("free", 0x300),
            ("read", 0x100),
            ("write", 0x100),
            ("gettimeofday", 0xC0),
            ("pthread_mutex_lock", 0x180),
            ("pthread_mutex_unlock", 0x140),
        ),
    ),
    _LibSpec(
        name="libm-2.3.2.so",
        size=0x30000,
        funcs=(("exp", 0x180), ("log", 0x180), ("sqrt", 0x100), ("pow", 0x200)),
    ),
    _LibSpec(
        name="libpthread-2.3.2.so",
        size=0x18000,
        funcs=(
            ("pthread_create", 0x300),
            ("pthread_cond_wait", 0x280),
            ("sem_post", 0x100),
        ),
    ),
    _LibSpec(
        name="libfb.so",
        size=0x28000,
        funcs=(
            ("fbCopyAreammx", 0x400),
            ("fbCompositeSolidMask_nx8x8888mmx", 0x500),
            ("fbBlt", 0x300),
        ),
    ),
    # Mozilla's libxul ships stripped; Figure 1 shows it as "(no symbols)".
    _LibSpec(name="libxul.so.0d", size=0xA00000, funcs=(), stripped=True),
)


def standard_libraries() -> list[BinaryImage]:
    """Build the standard shared libraries a desktop Java process maps.

    Symbols are laid out back to back from offset 0x1000 (past the
    pretend-ELF header) with 16-byte padding between functions.
    """
    images: list[BinaryImage] = []
    for spec in _STANDARD_LIBS:
        syms: list[Symbol] = []
        off = 0x1000
        if not spec.stripped:
            for fname, fsize in spec.funcs:
                syms.append(Symbol(offset=off, size=fsize, name=fname))
                off += fsize + 16
        images.append(BinaryImage(spec.name, spec.size, syms))
    return images
