"""Miniature operating-system substrate.

Provides exactly the abstractions a system-wide sampling profiler leans on:

* :mod:`repro.os.binary` — ELF-like binary images with symbol tables and
  offset→symbol resolution (``opreport``'s symbolization source);
* :mod:`repro.os.address_space` — per-process virtual memory areas, the
  structure OProfile walks to turn a PC into ``(image, offset)``;
* :mod:`repro.os.process` — tasks/processes;
* :mod:`repro.os.loader` — the standard i386-Linux-flavoured layout
  (executable at 0x08048000, libraries from 0x40000000, anonymous maps for
  heaps, kernel at 0xC0000000);
* :mod:`repro.os.kernel` — kernel symbols, the process table and NMI
  dispatch to a registered profiling module;
* :mod:`repro.os.scheduler` — a deadline-aware round-robin scheduler used
  to interleave the benchmark process with the profiler daemon.
"""

from repro.os.binary import BinaryImage, Symbol, standard_libraries
from repro.os.address_space import VMA, AddressSpace, VmaKind
from repro.os.process import Process
from repro.os.loader import Layout, ProgramLoader
from repro.os.kernel import Kernel
from repro.os.scheduler import Scheduler, Task, TaskState

__all__ = [
    "BinaryImage",
    "Symbol",
    "standard_libraries",
    "VMA",
    "AddressSpace",
    "VmaKind",
    "Process",
    "Layout",
    "ProgramLoader",
    "Kernel",
    "Scheduler",
    "Task",
    "TaskState",
]
