"""The adaptive optimization system (AOS).

Jikes RVM's AOS watches method hotness and promotes methods up the
optimizing-compiler ladder.  We model the observable behaviour: per-method
invocation counters, a threshold ladder, and a recompilation decision per
invocation burst.  The ladder's thresholds determine how much recompilation
traffic a workload generates — which in turn determines VIProf's code-map
sizes and (per the paper's overhead discussion) how much agent work a run
performs before the hot code settles into the mature space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.jvm.compiler import CompilerTier

__all__ = ["RecompilationLadder", "AdaptiveSystem"]


@dataclass(frozen=True, slots=True)
class RecompilationLadder:
    """Invocation thresholds at which a method climbs to each opt tier."""

    opt0_at: int = 30
    opt1_at: int = 250
    opt2_at: int = 1200

    def __post_init__(self) -> None:
        if not 0 < self.opt0_at < self.opt1_at < self.opt2_at:
            raise ConfigError(
                "ladder thresholds must be positive and strictly increasing"
            )

    def tier_for(self, invocations: int) -> CompilerTier:
        """Tier a method with ``invocations`` total calls should be at."""
        if invocations >= self.opt2_at:
            return CompilerTier.OPT2
        if invocations >= self.opt1_at:
            return CompilerTier.OPT1
        if invocations >= self.opt0_at:
            return CompilerTier.OPT0
        return CompilerTier.BASELINE


@dataclass
class AdaptiveSystem:
    """Per-method invocation accounting plus recompilation decisions."""

    ladder: RecompilationLadder = field(default_factory=RecompilationLadder)
    _invocations: dict[int, int] = field(default_factory=dict)
    _tier: dict[int, CompilerTier] = field(default_factory=dict)
    recompilations_requested: int = 0

    def bind_method_names(self, methods) -> None:
        """Hook for subclasses that key decisions on method identity (the
        PGO extension); the base ladder needs only indices."""

    def invocations(self, method_index: int) -> int:
        return self._invocations.get(method_index, 0)

    def current_tier(self, method_index: int) -> CompilerTier | None:
        """Tier of the method's installed code, or None if never compiled."""
        return self._tier.get(method_index)

    def note_compiled(self, method_index: int, tier: CompilerTier) -> None:
        self._tier[method_index] = tier

    def record_invocations(
        self, method_index: int, count: int = 1
    ) -> CompilerTier | None:
        """Record ``count`` invocations; return the tier to recompile at, or
        None if the method should stay where it is.

        The caller (the machine) performs the actual compilation and then
        reports it back via :meth:`note_compiled`.
        """
        if count <= 0:
            raise ConfigError("invocation count must be positive")
        total = self._invocations.get(method_index, 0) + count
        self._invocations[method_index] = total
        desired = self.ladder.tier_for(total)
        current = self._tier.get(method_index)
        if current is None:
            # First invocation: baseline compile regardless of ladder.
            self.recompilations_requested += 1
            return CompilerTier.BASELINE
        if desired.level > current.level:
            self.recompilations_requested += 1
            return desired
        return None
