"""Java program model: classes and methods at the granularity a profiler sees.

We do not interpret real bytecode — what matters to the reproduction is the
*shape* of execution: how big each method's code is, how hot it is, how much
it allocates, and what data it touches.  A :class:`JavaMethod` captures
exactly that, and the synthetic workload generator
(:mod:`repro.workloads.synthetic`) manufactures realistic populations of
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.hardware.memory import WorkingSet

__all__ = ["MethodId", "JavaMethod"]


@dataclass(frozen=True, slots=True)
class MethodId:
    """Fully qualified method identity (class + name + descriptor)."""

    class_name: str
    method_name: str
    descriptor: str = "()V"

    @property
    def full_name(self) -> str:
        """The dotted form opreport prints, e.g.
        ``edu.unm.cs.oal.dacapo.javaPostScript.red.scanner.Scanner.parseLine``."""
        return f"{self.class_name}.{self.method_name}"

    def __str__(self) -> str:
        return self.full_name


@dataclass
class JavaMethod:
    """One application method and its dynamic behaviour knobs.

    Attributes:
        mid: identity.
        bytecode_size: bytecodes in the method body; machine-code size and
            compile cost scale with this.
        weight: relative execution frequency (workload schedules invocations
            proportionally to weight).
        cycles_per_invocation: work per call at optimization level 0 — the
            adaptive system's CPI model scales this down as the method is
            recompiled.
        alloc_bytes_per_invocation: nursery allocation per call (drives GC).
        accesses_per_invocation: data-memory accesses per call (drives the
            L2-miss event stream).
        working_set: data region this method touches.
        callees: indices of methods this one calls (used for call-graph
            sampling); empty for leaves.
    """

    mid: MethodId
    bytecode_size: int
    weight: float
    cycles_per_invocation: int
    alloc_bytes_per_invocation: int
    accesses_per_invocation: int
    working_set: WorkingSet
    callees: tuple[int, ...] = ()
    index: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.bytecode_size <= 0:
            raise WorkloadError(f"{self.mid}: bytecode_size must be positive")
        if self.weight < 0:
            raise WorkloadError(f"{self.mid}: weight must be non-negative")
        if self.cycles_per_invocation <= 0:
            raise WorkloadError(f"{self.mid}: cycles_per_invocation must be positive")
        if self.alloc_bytes_per_invocation < 0:
            raise WorkloadError(f"{self.mid}: negative allocation")
        if self.accesses_per_invocation < 0:
            raise WorkloadError(f"{self.mid}: negative access count")

    @property
    def full_name(self) -> str:
        return self.mid.full_name
