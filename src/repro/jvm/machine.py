"""The JikesVM facade: executes a workload as a stream of execution steps.

:class:`JikesVM` owns the heap, the collector, the JIT compilers and the
adaptive system, and exposes the **agent hooks** VIProf attaches to (the
paper's §3: instructions added to the compile/recompile methods, a flag set
in the GC move path, a map write just before each collection).

Execution is a generator of :class:`VmStep` records.  Each step says *where
the program counter dwelt* (a concrete address range), *how much* it cost
(cycles/instructions/data accesses), and — for scoring only — the simulator's
ground-truth attribution.  The system engine converts steps into hardware
quanta, runs them through the cache model and the CPU, and lets the armed
profiler take samples.

Determinism: all internal choices flow from the seed given at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from random import Random
from typing import Callable, Iterator, Protocol

from repro.errors import JvmError
from repro.hardware.memory import WorkingSet
from repro.jvm.adaptive import AdaptiveSystem
from repro.jvm.bootimage import BootImage, RvmMapEntry, VmActivity, RVM_MAP_IMAGE_LABEL
from repro.jvm.compiler import CodeBody, CompilerTier, JitCompiler
from repro.jvm.gc import CopyingCollector
from repro.jvm.heap import Heap
from repro.jvm.model import JavaMethod
from repro.profiling.model import Layer, TruthLabel

__all__ = [
    "StepKind",
    "VmStep",
    "VmHooks",
    "WorkloadProgram",
    "JikesVM",
    "JIT_APP_IMAGE_LABEL",
    "AGENT_IMAGE_NAME",
]

#: Image label VIProf gives to resolved JIT samples (paper's Figure 1).
JIT_APP_IMAGE_LABEL = "JIT.App"

#: The VM-agent shared library (mapped only when VIProf is attached).
AGENT_IMAGE_NAME = "viprof_agent.so"

# --- cycle-cost calibration -------------------------------------------------
#: longest single step the machine emits, in cycles
MAX_STEP_CYCLES = 2000
#: GC fixed cost plus per-byte trace/copy and zeroing costs
GC_BASE_CYCLES = 2500
GC_SCAN_CYCLES_PER_BYTE = 0.09
GC_ZERO_CYCLES_PER_BYTE = 0.022
#: fraction of application cycles spent in VM runtime glue (yieldpoints,
#: write barriers, scheduler checks)
RUNTIME_GLUE_FRACTION = 0.012
#: startup class-loading cost per method
STARTUP_CYCLES_PER_METHOD = 2200
#: a recompilation of a method whose single invocation exceeds this many
#: cycles is performed as an on-stack replacement: the running activation
#: is specialized and transferred to the new body mid-execution
OSR_INVOCATION_CYCLES = 4_200
#: extra VM work for OSR specialization (prologue analysis, state mapping)
OSR_EXTRA_FRACTION = 0.3


class StepKind(Enum):
    APP = "app"  # JIT-compiled application code
    VM = "vm"  # boot-image (VM-internal) code
    NATIVE = "native"  # shared-library code
    AGENT = "agent"  # VIProf VM-agent library work


@dataclass(frozen=True, slots=True)
class VmStep:
    """One slice of VM-process execution.

    Attributes:
        kind: which code category the PC is in.
        pc: start address of the swept range.
        code_len: length of the swept range in bytes.
        cycles / instructions / accesses: cost of the slice.
        working_set: data region touched (None => negligible data traffic).
        truth: simulator ground truth for accuracy scoring.
    """

    kind: StepKind
    pc: int
    code_len: int
    cycles: int
    instructions: int
    accesses: int
    working_set: WorkingSet | None
    truth: TruthLabel
    caller: TruthLabel | None = None


class VmHooks:
    """Agent attachment points.  Every hook returns its cost in cycles;
    the default implementation is a no-op costing nothing (profiling off or
    stock OProfile, which has no VM agent)."""

    def on_startup(self, heap_bounds: tuple[int, int]) -> int:
        return 0

    def on_compile(self, body: CodeBody) -> int:
        return 0

    def on_code_move(self, body: CodeBody, old_address: int) -> int:
        return 0

    def pre_gc(self, closing_epoch: int) -> int:
        return 0

    def post_gc(self, new_epoch: int) -> int:
        return 0

    def on_exit(self, final_epoch: int) -> int:
        return 0


class WorkloadProgram(Protocol):
    """What the machine needs from a workload (see
    :class:`repro.workloads.base.Workload`)."""

    methods: list[JavaMethod]
    survival_rate: float
    javalib_fraction: float
    native_fraction: float
    native_mix: tuple[tuple[str, str, float], ...]

    def schedule(self, rng: Random) -> Iterator[tuple[int, int]]:
        """Yield ``(method_index, invocation_burst)`` forever."""
        ...


#: (image_name, symbol_name) -> (absolute address, size)
NativeResolver = Callable[[str, str], tuple[int, int]]


@dataclass
class VmRunStats:
    """Counters exposed for tests and reports."""

    invocations: int = 0
    compilations: int = 0
    opt_compilations: int = 0
    osr_compilations: int = 0
    #: total machine-code bytes of live (non-obsolete) bodies — the code
    #: footprint the ITLB model sees
    live_code_bytes: int = 0
    app_cycles: int = 0
    vm_cycles: int = 0
    native_cycles: int = 0
    agent_cycles: int = 0
    steps: int = 0


class JikesVM:
    """A Jikes-RVM-like virtual machine bound to one workload."""

    def __init__(
        self,
        boot: BootImage,
        boot_base: int,
        heap: Heap,
        workload: WorkloadProgram,
        native_resolver: NativeResolver,
        seed: int = 1234,
        hooks: VmHooks | None = None,
        collector: CopyingCollector | None = None,
        adaptive: AdaptiveSystem | None = None,
    ) -> None:
        if not workload.methods:
            raise JvmError("workload has no methods")
        self.boot = boot
        self.boot_base = boot_base
        self.heap = heap
        self.workload = workload
        self.hooks = hooks if hooks is not None else VmHooks()
        self.collector = collector if collector is not None else CopyingCollector(heap)
        self.adaptive = adaptive if adaptive is not None else AdaptiveSystem()
        self.adaptive.bind_method_names(workload.methods)
        self.compiler = JitCompiler()
        self.stats = VmRunStats()
        self._resolve_native = native_resolver
        self._rng = Random(seed)
        self._body_of: dict[int, CodeBody] = {}
        self._all_bodies: list[CodeBody] = []
        self._finished = False
        # Call-stack witness for call-graph sampling: the VM thread root,
        # and the most recent application frame (the caller of VM/native
        # work triggered from application code).
        self._root_truth = TruthLabel(
            Layer.VM, RVM_MAP_IMAGE_LABEL, "com.ibm.jikesrvm.VM_MainThread.run"
        )
        self._last_app_truth: TruthLabel | None = None
        self._name_to_idx = {
            m.full_name: i for i, m in enumerate(workload.methods)
        }
        # The OSR specialization trio (Figure 1's VM_NormalMethod frames).
        self._osr_entries = boot.entries_for(VmActivity.CLASSLOADER)[:3]
        # Data regions for VM-internal activity.
        lo, hi = heap.bounds
        self._gc_ws = WorkingSet(
            base=lo, size=hi - lo, locality=0.5, hot_fraction=0.05,
            seed=seed ^ 0x6C,
        )
        # Nursery zeroing streams through freshly-evacuated lines; the
        # BSQ_CACHE_REFERENCE unit mask counts *read* misses, so memset's
        # write traffic registers only via its read-for-ownership tail.
        self._zero_ws = WorkingSet(
            base=lo, size=max(4096, heap.nursery.size * 3),
            locality=0.6, hot_fraction=0.2, seed=seed ^ 0x6D,
        )
        self._vm_ws = WorkingSet(
            base=boot_base, size=boot.image.size, locality=0.9,
            hot_fraction=0.08, seed=seed ^ 0x71,
        )

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """GC epoch currently executing (the agent reads this through its
        registration interface; the runtime profiler reads it per sample)."""
        return self.collector.epoch

    def code_bodies(self) -> tuple[CodeBody, ...]:
        return tuple(self._all_bodies)

    def body_for(self, method_index: int) -> CodeBody | None:
        return self._body_of.get(method_index)

    def run(self) -> Iterator[VmStep]:
        """Execute the workload forever (the engine stops at its budget)."""
        yield from self._startup()
        for midx, burst in self.workload.schedule(self._rng):
            yield from self._invoke(midx, burst)

    def finish(self) -> list[VmStep]:
        """Fire the exit hook (final code-map flush) and return its steps.
        Idempotent."""
        if self._finished:
            return []
        self._finished = True
        cost = self.hooks.on_exit(self.collector.epoch)
        return list(self._agent_steps("agent_write_code_map", cost))

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------

    def _startup(self) -> Iterator[VmStep]:
        cost = self.hooks.on_startup(self.heap.bounds)
        yield from self._agent_steps("agent_register_heap", cost)
        load_cycles = STARTUP_CYCLES_PER_METHOD * max(4, len(self.workload.methods) // 4)
        yield from self._vm_steps(VmActivity.CLASSLOADER, load_cycles)
        yield from self._vm_steps(VmActivity.RUNTIME, load_cycles // 6)

    def _invoke(self, midx: int, burst: int) -> Iterator[VmStep]:
        m = self.workload.methods[midx]
        tier = self.adaptive.record_invocations(midx, burst)
        osr_from: CodeBody | None = None
        if tier is not None:
            old = self._body_of.get(midx)
            if (
                old is not None
                and m.cycles_per_invocation * old.tier.cpi_factor
                > OSR_INVOCATION_CYCLES
            ):
                # Long-running activation: recompile via on-stack
                # replacement — part of the burst executes in the old body
                # before the transfer (the Figure-1 OSR frames come from
                # the specialization work).
                osr_from = old
                yield from self._osr_burst_prefix(osr_from, m, burst)
            yield from self._compile(midx, m, tier, osr=osr_from is not None)
        body = self._body_of[midx]
        self.stats.invocations += burst

        # Nursery allocation for the burst; collections interleave.
        to_alloc = m.alloc_bytes_per_invocation * burst
        while to_alloc > 0:
            chunk = min(to_alloc, max(1, self.heap.nursery.size // 4))
            if self.heap.alloc_data(chunk):
                to_alloc -= chunk
            else:
                yield from self._collect()

        total = int(burst * m.cycles_per_invocation * body.tier.cpi_factor)
        if osr_from is not None:
            # The OSR prefix already executed 40 % of the burst's work in
            # the old body; the new body finishes the remainder.
            total = int(total * 0.6)
        total = max(1, total)
        glue = int(total * RUNTIME_GLUE_FRACTION)
        javalib = int(total * self.workload.javalib_fraction)
        native = int(total * self.workload.native_fraction)
        app = max(1, total - glue - javalib - native)
        accesses = m.accesses_per_invocation * burst

        yield from self._app_steps(body, app, accesses)
        if glue:
            yield from self._vm_steps(VmActivity.RUNTIME, glue)
        if javalib:
            yield from self._vm_steps(VmActivity.JAVALIB, javalib)
        if native:
            yield from self._native_mix_steps(native)

    def _osr_burst_prefix(
        self, old_body: CodeBody, m: JavaMethod, burst: int
    ) -> Iterator[VmStep]:
        """Execute the pre-transfer part of an OSR'd burst in the old body,
        plus the OSR bookkeeping frames (the exact methods visible in the
        paper's Figure 1)."""
        prefix = max(
            1,
            int(0.4 * burst * m.cycles_per_invocation * old_body.tier.cpi_factor),
        )
        accesses = int(0.4 * m.accesses_per_invocation * burst)
        yield from self._app_steps(old_body, prefix, accesses)

    def _compile(
        self, midx: int, m: JavaMethod, tier: CompilerTier, osr: bool = False
    ) -> Iterator[VmStep]:
        job = self.compiler.plan(m, tier)
        self.stats.compilations += 1
        if osr:
            self.stats.osr_compilations += 1
            # Specialization work dwells in the OSR trio of
            # VM_NormalMethod methods (classloader group, entries 0-2).
            osr_cycles = int(job.cycles * OSR_EXTRA_FRACTION)
            for entry in self._osr_entries:
                yield from self._entry_steps(entry, max(1, osr_cycles // 3))
        if tier.is_opt:
            self.stats.opt_compilations += 1
            yield from self._vm_steps(VmActivity.CLASSLOADER, int(job.cycles * 0.15))
            yield from self._vm_steps(VmActivity.OPT_COMPILER, int(job.cycles * 0.85))
        else:
            yield from self._vm_steps(VmActivity.CLASSLOADER, int(job.cycles * 0.35))
            yield from self._vm_steps(VmActivity.COMPILER, int(job.cycles * 0.65))

        if job.code_size > self.heap.nursery.size:
            # A body that can never fit the nursery goes straight to mature.
            addr = self.heap.alloc_code_mature(job.code_size)
        else:
            addr = self.heap.alloc_code_nursery(job.code_size)
            while addr is None:
                yield from self._collect()
                addr = self.heap.alloc_code_nursery(job.code_size)
        body = self.compiler.make_body(job, addr, self.collector.epoch)

        old = self._body_of.get(midx)
        if old is not None:
            old.obsolete = True
            self.stats.live_code_bytes -= old.size
        self.stats.live_code_bytes += body.size
        self._body_of[midx] = body
        self._all_bodies.append(body)
        self.adaptive.note_compiled(midx, tier)

        cost = self.hooks.on_compile(body)
        yield from self._agent_steps("agent_log_compile", cost)

    def _collect(self) -> Iterator[VmStep]:
        closing = self.collector.epoch
        pre = self.hooks.pre_gc(closing)
        yield from self._agent_steps("agent_write_code_map", pre)

        move_cost = 0

        def on_move(body: CodeBody, old_addr: int) -> None:
            nonlocal move_cost
            move_cost += self.hooks.on_code_move(body, old_addr)

        live_data = int(self.heap.nursery_data_bytes * self.workload.survival_rate)
        work = self.collector.collect(self._all_bodies, live_data, on_move)
        self._all_bodies = [b for b in self._all_bodies if not b.obsolete]

        scan_cycles = GC_BASE_CYCLES + int(work.scanned_bytes * GC_SCAN_CYCLES_PER_BYTE)
        yield from self._vm_steps(
            VmActivity.GC, scan_cycles,
            working_set=self._gc_ws, accesses=work.scanned_bytes // 24,
        )
        zero_cycles = max(1, int(work.zeroed_bytes * GC_ZERO_CYCLES_PER_BYTE))
        yield from self._native_steps(
            "libc-2.3.2.so", "memset", zero_cycles,
            working_set=self._zero_ws, accesses=work.zeroed_bytes // 256,
        )
        # GC-move flags cost almost nothing each but are charged faithfully.
        yield from self._agent_steps("agent_flag_moves", move_cost)
        post = self.hooks.post_gc(self.collector.epoch)
        yield from self._agent_steps("agent_process_flags", post)

    # -- step constructors ------------------------------------------------

    def _app_steps(
        self, body: CodeBody, cycles: int, accesses: int
    ) -> Iterator[VmStep]:
        truth = TruthLabel(Layer.APP_JIT, JIT_APP_IMAGE_LABEL, body.method.full_name)
        ws = body.method.working_set
        cpi = 1.1 + 0.5 * body.tier.cpi_factor
        caller = self._last_app_truth if self._caller_for(body) else self._root_truth
        self._last_app_truth = truth
        yield from self._chunked(
            kind=StepKind.APP, pc=body.address, code_len=body.size,
            cycles=cycles, accesses=accesses, working_set=ws, truth=truth,
            cpi=cpi, stat="app_cycles", caller=caller,
        )

    def _caller_for(self, body: CodeBody) -> bool:
        """True when the previous application frame plausibly called this
        body (either method lists the other among its callees)."""
        if self._last_app_truth is None:
            return False
        prev_idx = self._name_to_idx.get(self._last_app_truth.symbol)
        if prev_idx is None:
            return False
        this_idx = body.method.index
        return (
            prev_idx in body.method.callees
            or this_idx in self.workload.methods[prev_idx].callees
        )

    def _vm_steps(
        self,
        activity: VmActivity,
        cycles: int,
        working_set: WorkingSet | None = None,
        accesses: int | None = None,
    ) -> Iterator[VmStep]:
        if cycles <= 0:
            return
        yield from self._entry_steps(
            self._pick_entry(activity), cycles,
            working_set=working_set, accesses=accesses,
        )

    def _entry_steps(
        self,
        entry: RvmMapEntry,
        cycles: int,
        working_set: WorkingSet | None = None,
        accesses: int | None = None,
    ) -> Iterator[VmStep]:
        """VM execution pinned to one specific boot-image method."""
        if cycles <= 0:
            return
        truth = TruthLabel(Layer.VM, RVM_MAP_IMAGE_LABEL, entry.name)
        ws = working_set if working_set is not None else self._vm_ws
        acc = accesses if accesses is not None else cycles // 6
        yield from self._chunked(
            kind=StepKind.VM, pc=self.boot_base + entry.offset,
            code_len=entry.size, cycles=cycles, accesses=acc,
            working_set=ws, truth=truth, cpi=1.6, stat="vm_cycles",
            caller=self._last_app_truth or self._root_truth,
        )

    def _native_steps(
        self,
        image: str,
        symbol: str,
        cycles: int,
        working_set: WorkingSet | None = None,
        accesses: int | None = None,
    ) -> Iterator[VmStep]:
        if cycles <= 0:
            return
        addr, size = self._resolve_native(image, symbol)
        truth = TruthLabel(Layer.NATIVE, image, symbol)
        acc = accesses if accesses is not None else cycles // 4
        yield from self._chunked(
            kind=StepKind.NATIVE, pc=addr, code_len=size, cycles=cycles,
            accesses=acc, working_set=working_set, truth=truth, cpi=1.2,
            stat="native_cycles", caller=self._last_app_truth or self._root_truth,
        )

    def _native_mix_steps(self, cycles: int) -> Iterator[VmStep]:
        mix = self.workload.native_mix
        if not mix:
            return
        images = [m[0] for m in mix]
        symbols = [m[1] for m in mix]
        weights = [m[2] for m in mix]
        i = self._rng.choices(range(len(mix)), weights=weights)[0]
        yield from self._native_steps(images[i], symbols[i], cycles)

    def _agent_steps(self, symbol: str, cycles: int) -> Iterator[VmStep]:
        if cycles <= 0:
            return
        addr, size = self._resolve_native(AGENT_IMAGE_NAME, symbol)
        truth = TruthLabel(Layer.AGENT, AGENT_IMAGE_NAME, symbol)
        yield from self._chunked(
            kind=StepKind.AGENT, pc=addr, code_len=size, cycles=cycles,
            accesses=cycles // 8, working_set=None, truth=truth, cpi=1.3,
            stat="agent_cycles", caller=self._root_truth,
        )

    def _chunked(
        self,
        kind: StepKind,
        pc: int,
        code_len: int,
        cycles: int,
        accesses: int,
        working_set: WorkingSet | None,
        truth: TruthLabel,
        cpi: float,
        stat: str,
        caller: TruthLabel | None = None,
    ) -> Iterator[VmStep]:
        """Split a long activity into <= MAX_STEP_CYCLES steps, spreading
        data accesses proportionally."""
        remaining_cycles = cycles
        remaining_accesses = accesses
        while remaining_cycles > 0:
            c = min(remaining_cycles, MAX_STEP_CYCLES)
            a = (
                remaining_accesses * c // remaining_cycles
                if remaining_cycles
                else remaining_accesses
            )
            remaining_cycles -= c
            remaining_accesses -= a
            self.stats.steps += 1
            setattr(self.stats, stat, getattr(self.stats, stat) + c)
            yield VmStep(
                kind=kind, pc=pc, code_len=code_len, cycles=c,
                instructions=max(1, int(c / cpi)), accesses=a,
                working_set=working_set, truth=truth, caller=caller,
            )

    def _pick_entry(self, activity: VmActivity) -> RvmMapEntry:
        group = self.boot.entries_for(activity)
        # Weight toward the front of each group so the Figure-1 symbols
        # dominate their categories, with a long tail over the rest.
        weights = [1.0 / (i + 1) for i in range(len(group))]
        return self._rng.choices(group, weights=weights)[0]
