"""JIT compilers and compiled code bodies.

Jikes RVM never interprets: a method is baseline-compiled on first
invocation and may later be recompiled by the optimizing compiler at rising
levels.  Each (re)compilation produces a new :class:`CodeBody` — a real
address range inside the garbage-collected heap — and obsoletes the previous
one, whose space becomes garbage.  This is the machinery that makes JIT code
invisible to stock OProfile: bodies appear at runtime-chosen addresses, get
replaced on recompilation, and *move* when the collector runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import CompilationError
from repro.jvm.model import JavaMethod

__all__ = [
    "CompilerTier",
    "CodeBody",
    "CompileJob",
    "JitCompiler",
    "tier_by_label",
]


class CompilerTier(Enum):
    """Compilation tiers with their cost/quality trade-off.

    ``expansion``: machine-code bytes emitted per bytecode.
    ``compile_cycles_per_bc``: compile-time cost per bytecode.
    ``cpi_factor``: execution-time multiplier of generated code relative to
    baseline (smaller is faster) — drives the speedup a recompilation buys.
    """

    # Note on scale: the simulated clock runs at 1/1000 of the paper's
    # 3.4 GHz, so these per-bytecode compile costs are 1/1000 of typical
    # real Jikes RVM costs (baseline ~10k real cycles/bc-method band).
    BASELINE = ("baseline", 0, 10, 8, 1.00)
    OPT0 = ("O0", 1, 8, 60, 0.65)
    OPT1 = ("O1", 2, 7, 200, 0.45)
    OPT2 = ("O2", 3, 6, 600, 0.33)

    def __init__(
        self,
        label: str,
        level: int,
        expansion: int,
        compile_cycles_per_bc: int,
        cpi_factor: float,
    ) -> None:
        self.label = label
        self.level = level
        self.expansion = expansion
        self.compile_cycles_per_bc = compile_cycles_per_bc
        self.cpi_factor = cpi_factor

    @property
    def is_opt(self) -> bool:
        return self.level > 0

    def next_tier(self) -> "CompilerTier | None":
        order = [
            CompilerTier.BASELINE,
            CompilerTier.OPT0,
            CompilerTier.OPT1,
            CompilerTier.OPT2,
        ]
        i = order.index(self)
        return order[i + 1] if i + 1 < len(order) else None


def tier_by_label(label: str) -> CompilerTier:
    """Inverse of :attr:`CompilerTier.label` (code maps store the label)."""
    for tier in CompilerTier:
        if tier.label == label:
            return tier
    raise CompilationError(f"unknown compiler tier label {label!r}")


@dataclass
class CodeBody:
    """A compiled method body resident in the heap.

    Attributes:
        method: the Java method this body implements.
        tier: compiler tier that produced it.
        address: current start address (GC may change it).
        size: machine-code size in bytes.
        compiled_epoch: GC epoch during which compilation happened.
        survived_gcs: nursery collections this body has survived (drives
            promotion to the mature space).
        in_mature: True once promoted; mature bodies stop moving except
            during a major collection.
        obsolete: True once replaced by a recompilation; obsolete bodies are
            garbage and vanish at the next collection.
    """

    method: JavaMethod
    tier: CompilerTier
    address: int
    size: int
    compiled_epoch: int
    survived_gcs: int = 0
    in_mature: bool = False
    obsolete: bool = False
    moves: int = field(default=0)

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, addr: int) -> bool:
        return self.address <= addr < self.end

    def relocate(self, new_address: int, promoted: bool) -> int:
        """Move the body; returns the old address."""
        old = self.address
        self.address = new_address
        self.moves += 1
        self.survived_gcs += 1
        if promoted:
            self.in_mature = True
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CodeBody({self.method.full_name}, {self.tier.label}, "
            f"@{self.address:#x}+{self.size:#x})"
        )


@dataclass(frozen=True, slots=True)
class CompileJob:
    """The outcome of one (re)compilation, before heap placement.

    ``cycles`` is the compile-time cost; the machine turns it into VM-
    internal execution (class-loader and compiler methods in the boot
    image).
    """

    method: JavaMethod
    tier: CompilerTier
    code_size: int
    cycles: int


class JitCompiler:
    """Cost/size model for both the baseline and optimizing compilers."""

    def plan(self, method: JavaMethod, tier: CompilerTier) -> CompileJob:
        """Compute code size and compile cost for compiling ``method`` at
        ``tier``.  Pure function of its inputs."""
        code_size = max(32, method.bytecode_size * tier.expansion)
        # Round to 16-byte code alignment, as the RVM compilers do.
        code_size = (code_size + 15) & ~15
        cycles = method.bytecode_size * tier.compile_cycles_per_bc
        return CompileJob(
            method=method, tier=tier, code_size=code_size, cycles=cycles
        )

    def make_body(
        self, job: CompileJob, address: int, epoch: int
    ) -> CodeBody:
        """Materialize a code body at its heap address."""
        if address <= 0:
            raise CompilationError(
                f"bad code address {address:#x} for {job.method.full_name}"
            )
        return CodeBody(
            method=job.method,
            tier=job.tier,
            address=address,
            size=job.code_size,
            compiled_epoch=epoch,
        )
