"""The Jikes RVM boot image and its internal map (``RVM.map``).

Jikes RVM is written (mostly) in Java; at build time its core is compiled
into a *boot image* — a blob of machine code and data loaded at a fixed heap
address by a small C bootstrap.  To a system profiler the blob is just an
unsymbolized file mapping (``RVM.code.image  (no symbols)`` in the paper's
Figure 1, bottom), but the build also emits ``RVM.map``, which maps image
offsets to VM-internal Java methods.  VIProf's post-processor reads that map
to symbolize VM samples (Figure 1, top: the ``RVM.map`` rows).

:func:`build_boot_image` manufactures a deterministic boot image populated
with the VM-internal methods visible in the paper plus representative
populations for each VM activity (compiler, GC, runtime, class loading, and
boot-image Java library code), grouped so the machine can dwell in the right
symbols for each activity.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum

from repro.errors import SymbolError
from repro.os.binary import BinaryImage

__all__ = [
    "VmActivity",
    "RvmMapEntry",
    "RvmMap",
    "BootImage",
    "build_boot_image",
    "BOOT_IMAGE_NAME",
    "RVM_MAP_IMAGE_LABEL",
]

#: Image name a system profiler sees for the boot-image mapping.
BOOT_IMAGE_NAME = "RVM.code.image"

#: Image label VIProf reports for samples resolved through RVM.map.
RVM_MAP_IMAGE_LABEL = "RVM.map"


class VmActivity(Enum):
    """VM-internal activity classes, each dwelling in its own method group."""

    COMPILER = "compiler"
    OPT_COMPILER = "opt_compiler"
    GC = "gc"
    RUNTIME = "runtime"
    CLASSLOADER = "classloader"
    JAVALIB = "javalib"


@dataclass(frozen=True, slots=True, order=True)
class RvmMapEntry:
    """One RVM.map row: image-relative offset, size, VM method name."""

    offset: int
    size: int
    name: str


class RvmMap:
    """Offset → VM-method lookup over the boot image.

    Mirrors :class:`repro.os.binary.BinaryImage` symbol resolution but is a
    distinct artifact on purpose: system profilers cannot see it; only
    VIProf's post-processing tools read it (paper §3.2).
    """

    def __init__(self, entries: list[RvmMapEntry]):
        self._entries = sorted(entries)
        self._offsets = [e.offset for e in self._entries]
        prev: RvmMapEntry | None = None
        for e in self._entries:
            if prev is not None and e.offset < prev.offset + prev.size:
                raise SymbolError(
                    f"RVM.map entries {prev.name!r} and {e.name!r} overlap"
                )
            prev = e

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[RvmMapEntry, ...]:
        return tuple(self._entries)

    def resolve(self, offset: int) -> RvmMapEntry | None:
        i = bisect.bisect_right(self._offsets, offset) - 1
        if i < 0:
            return None
        e = self._entries[i]
        return e if e.offset <= offset < e.offset + e.size else None

    def find(self, name: str) -> RvmMapEntry:
        for e in self._entries:
            if e.name == name:
                return e
        raise SymbolError(f"no entry {name!r} in RVM.map")


@dataclass(frozen=True)
class BootImage:
    """The boot image binary (stripped), its map, and per-activity groups."""

    image: BinaryImage
    rvm_map: RvmMap
    groups: dict[VmActivity, tuple[RvmMapEntry, ...]]

    def entries_for(self, activity: VmActivity) -> tuple[RvmMapEntry, ...]:
        return self.groups[activity]


# VM-internal methods per activity.  The first entries in several groups are
# the exact symbols visible in the paper's Figure 1; the rest are
# representative.  Tuples are (method name, code size in bytes).
_VM_METHODS: dict[VmActivity, tuple[tuple[str, int], ...]] = {
    VmActivity.CLASSLOADER: (
        ("com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength", 0x2C0),
        ("com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead", 0x1A0),
        ("com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization", 0x260),
        ("com.ibm.jikesrvm.classloader.VM_Class.load", 0x500),
        ("com.ibm.jikesrvm.classloader.VM_Class.resolve", 0x420),
        ("com.ibm.jikesrvm.classloader.VM_TypeReference.resolve", 0x1E0),
        ("com.ibm.jikesrvm.classloader.VM_BytecodeStream.nextInstruction", 0x120),
    ),
    VmActivity.COMPILER: (
        ("com.ibm.jikesrvm.VM_BaselineCompiler.genCode", 0x700),
        ("com.ibm.jikesrvm.VM_Assembler.emitCALL_Imm", 0x100),
        ("com.ibm.jikesrvm.VM_CompiledMethods.createCompiledMethod", 0x160),
        ("com.ibm.jikesrvm.VM_BaselineGCMapIterator.setupIterator", 0x200),
    ),
    VmActivity.OPT_COMPILER: (
        ("com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps", 0x340),
        ("com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset", 0x1C0),
        ("com.ibm.jikesrvm.opt.ir.OPT_BURS_STATE.invoke", 0x640),
        ("com.ibm.jikesrvm.opt.OPT_Simplifier.simplify", 0x580),
        ("com.ibm.jikesrvm.opt.OPT_LinearScan.allocateRegisters", 0x720),
        ("com.ibm.jikesrvm.opt.OPT_BC2IR.generateHIR", 0x7C0),
    ),
    VmActivity.GC: (
        ("com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills", 0x240),
        ("org.mmtk.plan.CopySpace.traceObject", 0x2A0),
        ("org.mmtk.utility.scan.Scan.scanObject", 0x220),
        ("org.mmtk.utility.alloc.BumpPointer.alloc", 0xE0),
        ("org.mmtk.vm.Memory.zero", 0x90),
        ("org.mmtk.plan.SemiSpaceGCspy.collect", 0x300),
        ("com.ibm.jikesrvm.memorymanagers.mminterface.MM_Interface.triggerCollection", 0x140),
    ),
    VmActivity.RUNTIME: (
        ("com.ibm.jikesrvm.VM_MainThread.run", 0x180),
        ("com.ibm.jikesrvm.VM_Thread.yieldpoint", 0x160),
        ("com.ibm.jikesrvm.VM_Runtime.resolvedNewScalar", 0x120),
        ("com.ibm.jikesrvm.VM_Scheduler.dispatch", 0x260),
        ("com.ibm.jikesrvm.VM_Lock.lock", 0x1A0),
        ("com.ibm.jikesrvm.VM_Processor.enableThreadSwitching", 0xC0),
    ),
    VmActivity.JAVALIB: (
        ("java.util.Vector.trimToSize", 0x120),
        ("java.lang.String.charAt", 0x60),
        ("java.lang.StringBuffer.append", 0x180),
        ("java.util.HashMap.get", 0x160),
        ("java.io.BufferedReader.readLine", 0x240),
        ("java.lang.System.arraycopy", 0x140),
    ),
}


def build_boot_image() -> BootImage:
    """Lay out the VM methods back to back and return image + map + groups.

    The image itself carries *no* ELF symbols (it is an opaque blob to the
    OS), which is precisely the OProfile failure mode the paper targets.
    """
    entries: list[RvmMapEntry] = []
    groups: dict[VmActivity, tuple[RvmMapEntry, ...]] = {}
    off = 0x2000  # boot record header
    for activity, methods in _VM_METHODS.items():
        group: list[RvmMapEntry] = []
        for name, size in methods:
            e = RvmMapEntry(offset=off, size=size, name=name)
            entries.append(e)
            group.append(e)
            off += size + 0x20
        groups[activity] = tuple(group)
        off += 0x400  # inter-group padding
    image_size = 1 << 23  # 8 MB boot image, round figure for RVM 2.4.4
    if off > image_size:
        raise SymbolError("boot image method layout exceeded image size")
    image = BinaryImage(BOOT_IMAGE_NAME, image_size, symbols=None)
    return BootImage(image=image, rvm_map=RvmMap(entries), groups=groups)
