"""The copying garbage collector — the component that *moves code*.

Minor (nursery) collections copy surviving code bodies to fresh addresses:
young survivors back into the emptied nursery, seasoned survivors
(``promote_after`` collections) into the mature space, where they stop
moving.  When the mature space fills past a trigger, a major collection
compacts it, relocating even mature code.  Obsolete bodies (replaced by a
recompilation) are reclaimed by either collection.

Every relocation fires the ``on_move`` callback — the hook VIProf's VM agent
uses to *flag* moved methods (the paper is explicit that the GC hook must
only flag, not log, to stay off the tuned GC path; the agent honours that).

Each collection closes a **GC epoch**; :attr:`CopyingCollector.epoch` is the
number of the epoch currently executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigError
from repro.jvm.compiler import CodeBody
from repro.jvm.heap import Heap

__all__ = ["GcStats", "GcWork", "CopyingCollector"]

OnMove = Callable[[CodeBody, int], None]


@dataclass
class GcStats:
    """Cumulative collector statistics."""

    minor_collections: int = 0
    major_collections: int = 0
    code_bodies_moved: int = 0
    code_bodies_promoted: int = 0
    obsolete_bodies_reclaimed: int = 0
    data_bytes_promoted: int = 0

    @property
    def collections(self) -> int:
        return self.minor_collections + self.major_collections


@dataclass(frozen=True, slots=True)
class GcWork:
    """Cost drivers of one collection, for the machine's cycle model.

    Attributes:
        major: True for a mature-space compaction.
        scanned_bytes: live volume traced and copied.
        zeroed_bytes: space re-zeroed afterwards (``memset`` — the libc
            samples with high miss rates in Figure 1).
        moved_bodies: number of code bodies relocated.
    """

    major: bool
    scanned_bytes: int
    zeroed_bytes: int
    moved_bodies: int


class CopyingCollector:
    """Generational copying collector over a :class:`Heap`."""

    def __init__(
        self,
        heap: Heap,
        promote_after: int = 2,
        mature_trigger: float = 0.85,
        mature_live_fraction: float = 0.6,
    ) -> None:
        if promote_after < 1:
            raise ConfigError("promote_after must be >= 1")
        if not 0.0 < mature_trigger <= 1.0:
            raise ConfigError("mature_trigger must be in (0, 1]")
        if not 0.0 <= mature_live_fraction <= 1.0:
            raise ConfigError("mature_live_fraction must be in [0, 1]")
        self.heap = heap
        self.promote_after = promote_after
        self.mature_trigger = mature_trigger
        self.mature_live_fraction = mature_live_fraction
        self.stats = GcStats()
        #: epoch currently executing; collection N closes epoch N.
        self.epoch = 0

    # ------------------------------------------------------------------

    def needs_major(self) -> bool:
        return self.heap.mature_occupancy() >= self.mature_trigger

    def collect(
        self,
        bodies: Iterable[CodeBody],
        live_data_bytes: int,
        on_move: OnMove | None = None,
    ) -> GcWork:
        """Run a collection (major if the mature space is over trigger,
        else minor) and advance the epoch.

        Args:
            bodies: every code body the VM knows about (any space; obsolete
                bodies are reclaimed here).
            live_data_bytes: surviving nursery data volume, computed by the
                machine from the workload's survival rate.
            on_move: callback fired per relocation with (body, old_address).
        """
        if live_data_bytes < 0:
            raise ConfigError("negative live_data_bytes")
        if on_move is None:
            on_move = _ignore_move
        body_list = list(bodies)
        dead = [b for b in body_list if b.obsolete]
        self.stats.obsolete_bodies_reclaimed += len(dead)
        live = [b for b in body_list if not b.obsolete]

        if self.needs_major():
            work = self._major(live, live_data_bytes, on_move)
        else:
            work = self._minor(live, live_data_bytes, on_move)
        self.epoch += 1
        return work

    # ------------------------------------------------------------------

    def _minor(
        self, live: list[CodeBody], live_data_bytes: int, on_move: OnMove
    ) -> GcWork:
        heap = self.heap
        nursery_bodies = [
            b for b in live if not b.in_mature and heap.nursery.contains(b.address)
        ]
        zeroed = heap.nursery.used
        heap.nursery.reset()
        heap.nursery_data_bytes = 0

        moved = 0
        # Copy in address order, as a Cheney scan would.
        for b in sorted(nursery_bodies, key=lambda x: x.address):
            promote = (b.survived_gcs + 1) >= self.promote_after
            if promote:
                new_addr = heap.alloc_code_mature(b.size)
                self.stats.code_bodies_promoted += 1
            else:
                new_addr = heap.alloc_code_nursery(b.size)
                if new_addr is None:  # pragma: no cover - nursery emptied above
                    new_addr = heap.alloc_code_mature(b.size)
                    promote = True
            old = b.relocate(new_addr, promoted=promote)
            on_move(b, old)
            moved += 1

        heap.promote_data(live_data_bytes)
        self.stats.data_bytes_promoted += live_data_bytes
        self.stats.minor_collections += 1
        self.stats.code_bodies_moved += moved
        scanned = live_data_bytes + sum(b.size for b in nursery_bodies)
        return GcWork(
            major=False, scanned_bytes=scanned, zeroed_bytes=zeroed,
            moved_bodies=moved,
        )

    def _major(
        self, live: list[CodeBody], live_data_bytes: int, on_move: OnMove
    ) -> GcWork:
        heap = self.heap
        zeroed = heap.nursery.used + heap.mature.used

        # Nursery part behaves like a minor collection whose survivors all
        # promote; then the mature space is compacted from its base.
        heap.nursery.reset()
        heap.nursery_data_bytes = 0
        heap.mature.reset()
        dead_data = int(heap.mature_data_bytes * (1.0 - self.mature_live_fraction))
        heap.mature_data_bytes -= dead_data

        moved = 0
        for b in sorted(live, key=lambda x: x.address):
            new_addr = heap.alloc_code_mature(b.size)
            old = b.relocate(new_addr, promoted=True)
            on_move(b, old)
            moved += 1

        heap.promote_data(live_data_bytes)
        self.stats.data_bytes_promoted += live_data_bytes
        self.stats.major_collections += 1
        self.stats.code_bodies_moved += moved
        scanned = (
            live_data_bytes + heap.mature_data_bytes + sum(b.size for b in live)
        )
        return GcWork(
            major=True, scanned_bytes=scanned, zeroed_bytes=zeroed,
            moved_bodies=moved,
        )


def _ignore_move(body: CodeBody, old_address: int) -> None:
    """Default no-op move callback."""
