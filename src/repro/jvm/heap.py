"""The JVM heap: bump-allocated spaces holding data *and code*.

The property the paper leans on (§3.1) is that in Jikes RVM "the code and
data regions are both interwound into a single heap".  We reproduce that
literally: the nursery's bump pointer serves both data allocation (tracked
as volume) and code-body allocation (tracked as real address ranges), so
code bodies end up scattered between data at runtime-dependent addresses —
and get relocated when the copying collector empties the nursery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, HeapExhaustedError

__all__ = ["Space", "Heap"]

_ALIGN = 16


@dataclass
class Space:
    """A contiguous bump-allocated region ``[base, base + size)``."""

    name: str
    base: int
    size: int
    cursor: int = field(default=0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"space {self.name!r} must have positive size")
        if self.base <= 0:
            raise ConfigError(f"space {self.name!r} must have positive base")

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self.cursor

    @property
    def free(self) -> int:
        return self.size - self.cursor

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def alloc(self, nbytes: int) -> int | None:
        """Bump-allocate ``nbytes`` (16-byte aligned); None when full."""
        if nbytes <= 0:
            raise ConfigError(f"allocation size must be positive, got {nbytes}")
        aligned = (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
        if self.cursor + aligned > self.size:
            return None
        addr = self.base + self.cursor
        self.cursor += aligned
        return addr

    def reset(self) -> None:
        self.cursor = 0


class Heap:
    """Nursery + mature space, with the VM-facing bookkeeping the agent and
    collector need.

    Data allocation inside the nursery is tracked as volume through the same
    bump pointer code uses, so a data-heavy phase pushes code bodies to
    higher addresses and fills the nursery toward collection exactly as the
    real VM's interleaving does.  Mature-space data is tracked as volume
    only; mature code bodies occupy real address ranges.
    """

    def __init__(self, nursery_base: int, nursery_size: int,
                 mature_base: int, mature_size: int) -> None:
        self.nursery = Space("nursery", nursery_base, nursery_size)
        self.mature = Space("mature", mature_base, mature_size)
        if not (self.nursery.end <= mature_base or self.mature.end <= nursery_base):
            raise ConfigError("nursery and mature spaces overlap")
        #: live data volume promoted into the mature space (bytes)
        self.mature_data_bytes = 0
        #: data bytes allocated in the nursery since the last collection
        self.nursery_data_bytes = 0
        self.total_allocated_bytes = 0

    # ------------------------------------------------------------------

    @property
    def bounds(self) -> tuple[int, int]:
        """(low, high) across both GC-managed spaces — what the VM registers
        with VIProf's runtime profiler."""
        lo = min(self.nursery.base, self.mature.base)
        hi = max(self.nursery.end, self.mature.end)
        return lo, hi

    def contains(self, addr: int) -> bool:
        lo, hi = self.bounds
        return lo <= addr < hi

    # ------------------------------------------------------------------

    def alloc_data(self, nbytes: int) -> bool:
        """Allocate data in the nursery.

        Returns False (without allocating) when the nursery cannot hold the
        request — the caller must run a collection and retry.
        """
        addr = self.nursery.alloc(nbytes)
        if addr is None:
            return False
        self.nursery_data_bytes += nbytes
        self.total_allocated_bytes += nbytes
        return True

    def alloc_code_nursery(self, nbytes: int) -> int | None:
        """Allocate a code body in the nursery; None when a GC is needed."""
        addr = self.nursery.alloc(nbytes)
        if addr is not None:
            self.total_allocated_bytes += nbytes
        return addr

    def alloc_code_mature(self, nbytes: int) -> int:
        """Allocate a code body in the mature space (promotion target).

        Raises:
            HeapExhaustedError: mature space full — a real VM would grow the
                heap or die with OutOfMemoryError.
        """
        addr = self.mature.alloc(nbytes)
        if addr is None:
            raise HeapExhaustedError(
                f"mature space full ({self.mature.used}/{self.mature.size} bytes)"
            )
        return addr

    def promote_data(self, nbytes: int) -> None:
        """Account surviving nursery data volume into the mature space."""
        if nbytes < 0:
            raise ConfigError("negative promotion volume")
        self.mature_data_bytes += nbytes

    def nursery_occupancy(self) -> float:
        return self.nursery.used / self.nursery.size

    def mature_occupancy(self) -> float:
        code = self.mature.used
        return min(1.0, (code + self.mature_data_bytes) / self.mature.size)
