"""A Jikes-RVM-like Java virtual machine substrate.

The profiler-relevant properties of Jikes RVM 2.4.4, all reproduced here:

* **compile-only execution** — every method is baseline-compiled on first
  invocation, then recompiled at rising optimization levels by the adaptive
  optimization system (:mod:`repro.jvm.adaptive`, :mod:`repro.jvm.compiler`);
* **code lives in the garbage-collected heap** — code bodies are bump-
  allocated in the nursery and *move* when the copying collector runs
  (:mod:`repro.jvm.heap`, :mod:`repro.jvm.gc`); surviving bodies are promoted
  to the mature space where they stop moving (until a rare major GC);
* **the VM itself is written in Java** and executes out of a *boot image*
  that is opaque to system profilers but described by an internal map file,
  ``RVM.map`` (:mod:`repro.jvm.bootimage`);
* each garbage collection closes a **GC epoch** — the unit VIProf uses to
  version its code maps.

:mod:`repro.jvm.machine` ties these together into :class:`JikesVM`, which
executes a workload as a deterministic stream of execution steps and fires
the agent hooks VIProf attaches to.
"""

from repro.jvm.model import JavaMethod, MethodId
from repro.jvm.compiler import CodeBody, CompilerTier, JitCompiler
from repro.jvm.heap import Heap, Space
from repro.jvm.gc import CopyingCollector, GcStats
from repro.jvm.adaptive import AdaptiveSystem, RecompilationLadder
from repro.jvm.bootimage import BootImage, RvmMap, RvmMapEntry, build_boot_image
from repro.jvm.machine import JikesVM, VmHooks, VmStep, StepKind

__all__ = [
    "JavaMethod",
    "MethodId",
    "CodeBody",
    "CompilerTier",
    "JitCompiler",
    "Heap",
    "Space",
    "CopyingCollector",
    "GcStats",
    "AdaptiveSystem",
    "RecompilationLadder",
    "BootImage",
    "RvmMap",
    "RvmMapEntry",
    "build_boot_image",
    "JikesVM",
    "VmHooks",
    "VmStep",
    "StepKind",
]
