"""Built-in artifact rules: the static integrity model of a session.

Each rule encodes one invariant the paper's backward epoch-walk
attribution (§3.2) silently depends on:

VP101  map-overlap            Within one epoch, the bump allocator never
                              reuses space, so records must be disjoint;
                              an overlap makes attribution ambiguous.
VP102  epoch-gap              Maps are written at every epoch close; a
                              gap means an epoch's compilations are lost
                              and its samples mis-walk to older maps.
VP103  orphan-sample          Every heap sample must resolve in *some*
                              map when walking backwards from its epoch;
                              an orphan is an attribution the paper's
                              algorithm cannot make.
VP104  signature-collision    A JIT signature that also names a
                              boot-image method makes JIT.App vs RVM.map
                              rows indistinguishable in merged reports.
VP105  stale-moved-flag       A record written because the previous GC
                              *moved* the body implies the body existed
                              — its signature must appear in a strictly
                              earlier map.
VP106  epoch-tag              Sample epoch tags come from a monotonic GC
                              counter: they must be >= -1, must not
                              regress as time advances, and should not
                              exceed the newest map's epoch (a missing
                              final flush).

Rules operate on :class:`~repro.statcheck.artifacts.SessionArtifacts`
(raw records, no runtime validation) so that corrupt data reaches them
instead of raising on load.
"""

from __future__ import annotations

from typing import Iterator

from repro.os.intervals import Interval, IntervalIndex
from repro.statcheck.artifacts import SessionArtifacts
from repro.statcheck.findings import Finding, Severity
from repro.statcheck.rules import rule
from repro.viprof.codemap import CodeMapRecord

__all__ = [
    "check_map_overlap",
    "check_epoch_gap",
    "check_orphan_samples",
    "check_signature_collision",
    "check_stale_moved_flag",
    "check_epoch_tags",
]


def _epoch_indexes(
    arts: SessionArtifacts,
) -> dict[int, IntervalIndex[CodeMapRecord]]:
    """Interval index per epoch map, tolerant of overlapping records."""
    return {
        epoch: IntervalIndex(
            Interval(r.address, r.end, r) for r in art.records
        )
        for epoch, art in arts.maps.items()
    }


@rule(
    "VP101", "map-overlap", Severity.ERROR,
    "records within one epoch's map must cover disjoint address ranges",
)
def check_map_overlap(arts: SessionArtifacts) -> Iterator[Finding]:
    for epoch, index in sorted(_epoch_indexes(arts).items()):
        for a, b in index.overlapping_pairs():
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP101",
                artifact=arts.map_label(epoch),
                location=f"epoch {epoch}",
                message=(
                    f"records {a.payload.name!r} "
                    f"[{a.start:#x},{a.end:#x}) and {b.payload.name!r} "
                    f"[{b.start:#x},{b.end:#x}) overlap"
                ),
            )


@rule(
    "VP102", "epoch-gap", Severity.WARNING,
    "epoch chain must be contiguous: a map is written at every GC",
)
def check_epoch_gap(arts: SessionArtifacts) -> Iterator[Finding]:
    epochs = arts.epochs
    for prev, cur in zip(epochs, epochs[1:]):
        if cur != prev + 1:
            missing = cur - prev - 1
            yield Finding(
                severity=Severity.WARNING,
                rule_id="VP102",
                artifact=str(arts.session_dir),
                location=f"epochs {prev}..{cur}",
                message=(
                    f"epoch chain jumps from {prev} to {cur}: "
                    f"{missing} map(s) missing — compilations from the "
                    "missing epoch(s) are unattributable"
                ),
            )


@rule(
    "VP103", "orphan-sample", Severity.ERROR,
    "every VM-heap sample must resolve in some map via the backward walk",
)
def check_orphan_samples(arts: SessionArtifacts) -> Iterator[Finding]:
    reg = arts.registration
    if reg is None:
        if arts.sample_files and arts.maps:
            yield Finding(
                severity=Severity.INFO,
                rule_id="VP103",
                artifact=str(arts.session_dir),
                location="meta.json",
                message=(
                    "no VM heap registration in session metadata; "
                    "orphan-sample check skipped"
                ),
            )
        return
    if not arts.maps:
        return
    indexes = _epoch_indexes(arts)
    epochs_desc = sorted(indexes, reverse=True)
    max_epoch = epochs_desc[0]
    for sf in arts.sample_files:
        for i, s in enumerate(sf.samples):
            if s.kernel_mode or s.task_id != reg.task_id:
                continue
            if not reg.covers(s.pc):
                continue
            top = max_epoch if s.epoch < 0 else min(s.epoch, max_epoch)
            hit = None
            for e in epochs_desc:
                if e > top:
                    continue
                hit = indexes[e].first_covering(s.pc)
                if hit is not None:
                    break
            if hit is None:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP103",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=(
                        f"heap sample pc={s.pc:#x} (epoch {s.epoch}) "
                        "resolves in no code map via the backward walk"
                    ),
                )


@rule(
    "VP104", "signature-collision", Severity.ERROR,
    "JIT map signatures must not collide with boot-image (RVM.map) symbols",
)
def check_signature_collision(arts: SessionArtifacts) -> Iterator[Finding]:
    if arts.boot_map is None:
        return
    boot_names = {e.name for e in arts.boot_map.entries}
    for epoch in arts.epochs:
        for r in arts.maps[epoch].records:
            if r.name in boot_names:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP104",
                    artifact=arts.map_label(epoch),
                    location=f"epoch {epoch}",
                    message=(
                        f"JIT record {r.name!r} at {r.address:#x} collides "
                        "with a boot-image symbol: JIT.App and RVM.map "
                        "attributions become indistinguishable"
                    ),
                )


@rule(
    "VP105", "stale-moved-flag", Severity.ERROR,
    "a moved-flagged record's signature must appear in an earlier epoch",
)
def check_stale_moved_flag(arts: SessionArtifacts) -> Iterator[Finding]:
    seen: set[str] = set()
    for epoch in arts.epochs:
        art = arts.maps[epoch]
        for r in art.records:
            if r.moved and r.name not in seen:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP105",
                    artifact=arts.map_label(epoch),
                    location=f"epoch {epoch}",
                    message=(
                        f"record {r.name!r} at {r.address:#x} is flagged "
                        "as GC-moved but its signature appears in no "
                        "earlier epoch map (stale moved-flag)"
                    ),
                )
        seen.update(r.name for r in art.records)


@rule(
    "VP106", "epoch-tag", Severity.ERROR,
    "sample epoch tags must be valid, monotonic in time, and within the "
    "session's epoch range",
)
def check_epoch_tags(arts: SessionArtifacts) -> Iterator[Finding]:
    max_epoch = max(arts.epochs) if arts.maps else None
    for sf in arts.sample_files:
        prev_epoch: int | None = None
        prev_cycle = 0
        beyond = 0
        for i, s in enumerate(sf.samples):
            if s.epoch < -1:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP106",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=f"invalid epoch tag {s.epoch}",
                )
                continue
            if s.epoch < 0:
                continue  # stock OProfile sample: no epoch concept
            if (
                prev_epoch is not None
                and s.cycle >= prev_cycle
                and s.epoch < prev_epoch
            ):
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP106",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=(
                        f"epoch tag regresses from {prev_epoch} to "
                        f"{s.epoch} while time advances (cycle "
                        f"{prev_cycle} -> {s.cycle}): GC epochs are "
                        "monotonic"
                    ),
                )
            prev_epoch, prev_cycle = s.epoch, s.cycle
            if max_epoch is not None and s.epoch > max_epoch:
                beyond += 1
        if beyond:
            yield Finding(
                severity=Severity.WARNING,
                rule_id="VP106",
                artifact=str(sf.path),
                location="-",
                message=(
                    f"{beyond} sample(s) tagged with epochs beyond the "
                    f"newest map (epoch {max_epoch}): final map flush "
                    "may be missing"
                ),
            )
