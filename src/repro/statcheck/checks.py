"""Built-in artifact rules: the static integrity model of a session.

Each rule encodes one invariant the paper's backward epoch-walk
attribution (§3.2) silently depends on:

VP101  map-overlap            Within one epoch, the bump allocator never
                              reuses space, so records must be disjoint;
                              an overlap makes attribution ambiguous.
VP102  epoch-gap              Maps are written at every epoch close; a
                              gap means an epoch's compilations are lost
                              and its samples mis-walk to older maps.
VP103  orphan-sample          Every heap sample must resolve in *some*
                              map when walking backwards from its epoch;
                              an orphan is an attribution the paper's
                              algorithm cannot make.
VP104  signature-collision    A JIT signature that also names a
                              boot-image method makes JIT.App vs RVM.map
                              rows indistinguishable in merged reports.
VP105  stale-moved-flag       A record written because the previous GC
                              *moved* the body implies the body existed
                              — its signature must appear in a strictly
                              earlier map.
VP106  epoch-tag              Sample epoch tags come from a monotonic GC
                              counter: they must be >= -1, must not
                              regress as time advances, and should not
                              exceed the newest map's epoch (a missing
                              final flush).
VP107  salvage-manifest       A salvage manifest must agree with the
                              filesystem: every artifact it names exists
                              in the state it claims, every artifact on
                              disk is accounted for, and quarantine
                              directories never exist without a manifest.
VP108  quarantine-isolation   Quarantined epochs must be exactly the
                              epochs in 0..top_epoch without a healthy
                              map, and a quarantined map must never be
                              shadowed by a healthy map for the same
                              epoch.
VP109  loss-accounting        The manifest's loss numbers must add up:
                              a truncation drops a strict sub-record
                              tail, ``torn_at`` sits at the record
                              boundary it claims, and ``top_epoch``
                              covers every epoch the surviving artifacts
                              mention.
VP110  summary-consistency   A session's embedded ``summary.json`` (and
                              the summary a salvage manifest embeds) must
                              agree with the artifacts on disk: per-event
                              totals match the decoded sample counts, the
                              layer split matches kernel-mode/heap-bounds
                              classification, and the salvage panel
                              re-derives from the manifest's own entries.
VP111  arena-consistency     A compiled code-map arena
                              (``jit-maps.arena``) is a derived cache of
                              the text maps: it must validate (magic,
                              version, checksum), its recorded source
                              digests must match the map files on disk,
                              and its epoch set / per-epoch records must
                              equal what the maps declare.  The loaders
                              fall back to text on any mismatch, so a
                              violation is never a wrong report — but it
                              is a stale or torn artifact that silently
                              forfeits the zero-copy fast path.

VP112  domain-isolation       In a multi-domain (fleet) session the
                              per-domain sub-sessions must be an exact
                              partition of the root stream, every record
                              in ``dom<N>/`` must carry tag N, and a
                              domain's quarantined epochs must be
                              justified by that domain's *own* artifacts
                              — salvage of one guest never leaks into a
                              sibling's accounting.

A session with a salvage manifest is *expected* to have gaps, so the
damage rules report salvage-accounted losses at INFO instead of
WARNING/ERROR (VP102 gaps covered by quarantined epochs, VP103 walks
blocked at a quarantine barrier, VP106 tags beyond the newest surviving
map but within ``top_epoch``).  Unaccounted damage keeps its severity.

Rules operate on :class:`~repro.statcheck.artifacts.SessionArtifacts`
(raw records, no runtime validation) so that corrupt data reaches them
instead of raising on load.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import AnalysisError, CodeMapError, SampleFormatError
from repro.metrics.build import salvage_panel
from repro.metrics.model import SUMMARY_NAME, SessionSummary
from repro.os.intervals import Interval, IntervalIndex
from repro.profiling.record_codec import probe_sample_file
from repro.statcheck.artifacts import (
    MAP_DIR_NAME,
    QUARANTINE_DIR_NAME,
    SALVAGE_NAME,
    SAMPLE_DIR_NAME,
    SessionArtifacts,
    _MAP_FILE_RE,
)
from repro.statcheck.findings import Finding, Severity
from repro.statcheck.rules import rule
from repro.viprof.codemap import CodeMapRecord
from repro.viprof.runtime_profiler import VmRegistration

__all__ = [
    "check_map_overlap",
    "check_epoch_gap",
    "check_orphan_samples",
    "check_signature_collision",
    "check_stale_moved_flag",
    "check_epoch_tags",
    "check_salvage_manifest",
    "check_quarantine_isolation",
    "check_loss_accounting",
    "check_summary_consistency",
    "check_arena_consistency",
    "check_domain_isolation",
]


def _epoch_indexes(
    arts: SessionArtifacts,
) -> dict[int, IntervalIndex[CodeMapRecord]]:
    """Interval index per epoch map, tolerant of overlapping records."""
    return {
        epoch: IntervalIndex(
            Interval(r.address, r.end, r) for r in art.records
        )
        for epoch, art in arts.maps.items()
    }


@rule(
    "VP101", "map-overlap", Severity.ERROR,
    "records within one epoch's map must cover disjoint address ranges",
)
def check_map_overlap(arts: SessionArtifacts) -> Iterator[Finding]:
    for epoch, index in sorted(_epoch_indexes(arts).items()):
        for a, b in index.overlapping_pairs():
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP101",
                artifact=arts.map_label(epoch),
                location=f"epoch {epoch}",
                message=(
                    f"records {a.payload.name!r} "
                    f"[{a.start:#x},{a.end:#x}) and {b.payload.name!r} "
                    f"[{b.start:#x},{b.end:#x}) overlap"
                ),
            )


@rule(
    "VP102", "epoch-gap", Severity.WARNING,
    "epoch chain must be contiguous: a map is written at every GC",
)
def check_epoch_gap(arts: SessionArtifacts) -> Iterator[Finding]:
    epochs = arts.epochs
    quarantined = set(arts.quarantined_epochs)
    for prev, cur in zip(epochs, epochs[1:]):
        if cur != prev + 1:
            missing = cur - prev - 1
            gap = set(range(prev + 1, cur))
            if gap <= quarantined:
                # Salvage already fenced these epochs off; the loss is
                # accounted, not a new integrity problem.
                yield Finding(
                    severity=Severity.INFO,
                    rule_id="VP102",
                    artifact=str(arts.session_dir),
                    location=f"epochs {prev}..{cur}",
                    message=(
                        f"epoch chain jumps from {prev} to {cur}: "
                        f"{missing} map(s) quarantined by salvage "
                        "(accounted in salvage.json)"
                    ),
                )
                continue
            yield Finding(
                severity=Severity.WARNING,
                rule_id="VP102",
                artifact=str(arts.session_dir),
                location=f"epochs {prev}..{cur}",
                message=(
                    f"epoch chain jumps from {prev} to {cur}: "
                    f"{missing} map(s) missing — compilations from the "
                    "missing epoch(s) are unattributable"
                ),
            )


@rule(
    "VP103", "orphan-sample", Severity.ERROR,
    "every VM-heap sample must resolve in some map via the backward walk",
)
def check_orphan_samples(arts: SessionArtifacts) -> Iterator[Finding]:
    reg = arts.registration
    if reg is None:
        if arts.sample_files and arts.maps:
            yield Finding(
                severity=Severity.INFO,
                rule_id="VP103",
                artifact=str(arts.session_dir),
                location="meta.json",
                message=(
                    "no VM heap registration in session metadata; "
                    "orphan-sample check skipped"
                ),
            )
        return
    if not arts.maps:
        return
    indexes = _epoch_indexes(arts)
    epochs_desc = sorted(indexes, reverse=True)
    quarantined = set(arts.quarantined_epochs)
    max_epoch = max(epochs_desc[0], max(quarantined, default=-1))
    for sf in arts.sample_files:
        blocked = 0
        for i, s in enumerate(sf.samples):
            if s.kernel_mode or s.task_id != reg.task_id:
                continue
            if not reg.covers(s.pc):
                continue
            top = max_epoch if s.epoch < 0 else min(s.epoch, max_epoch)
            hit = None
            blocked_here = False
            if quarantined:
                # Salvaged session: mirror the degraded pipeline's
                # barrier walk — a quarantined epoch ends the search.
                for e in range(top, -1, -1):
                    if e in quarantined:
                        blocked_here = True
                        break
                    idx = indexes.get(e)
                    if idx is None:
                        continue
                    hit = idx.first_covering(s.pc)
                    if hit is not None:
                        break
            else:
                for e in epochs_desc:
                    if e > top:
                        continue
                    hit = indexes[e].first_covering(s.pc)
                    if hit is not None:
                        break
            if blocked_here:
                blocked += 1
                continue
            if hit is None:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP103",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=(
                        f"heap sample pc={s.pc:#x} (epoch {s.epoch}) "
                        "resolves in no code map via the backward walk"
                    ),
                )
        if blocked:
            yield Finding(
                severity=Severity.INFO,
                rule_id="VP103",
                artifact=str(sf.path),
                location="-",
                message=(
                    f"{blocked} heap sample(s) blocked at a quarantined "
                    "epoch during the backward walk (accounted by "
                    "salvage.json; resolved as (unresolved jit) in "
                    "degraded reports)"
                ),
            )


@rule(
    "VP104", "signature-collision", Severity.ERROR,
    "JIT map signatures must not collide with boot-image (RVM.map) symbols",
)
def check_signature_collision(arts: SessionArtifacts) -> Iterator[Finding]:
    if arts.boot_map is None:
        return
    boot_names = {e.name for e in arts.boot_map.entries}
    for epoch in arts.epochs:
        for r in arts.maps[epoch].records:
            if r.name in boot_names:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP104",
                    artifact=arts.map_label(epoch),
                    location=f"epoch {epoch}",
                    message=(
                        f"JIT record {r.name!r} at {r.address:#x} collides "
                        "with a boot-image symbol: JIT.App and RVM.map "
                        "attributions become indistinguishable"
                    ),
                )


@rule(
    "VP105", "stale-moved-flag", Severity.ERROR,
    "a moved-flagged record's signature must appear in an earlier epoch",
)
def check_stale_moved_flag(arts: SessionArtifacts) -> Iterator[Finding]:
    seen: set[str] = set()
    for epoch in arts.epochs:
        art = arts.maps[epoch]
        for r in art.records:
            if r.moved and r.name not in seen:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP105",
                    artifact=arts.map_label(epoch),
                    location=f"epoch {epoch}",
                    message=(
                        f"record {r.name!r} at {r.address:#x} is flagged "
                        "as GC-moved but its signature appears in no "
                        "earlier epoch map (stale moved-flag)"
                    ),
                )
        seen.update(r.name for r in art.records)


@rule(
    "VP106", "epoch-tag", Severity.ERROR,
    "sample epoch tags must be valid, monotonic in time, and within the "
    "session's epoch range",
)
def check_epoch_tags(arts: SessionArtifacts) -> Iterator[Finding]:
    max_epoch = max(arts.epochs) if arts.maps else None
    salvage_top = None
    if isinstance(arts.salvage, dict):
        top = arts.salvage.get("top_epoch")
        if isinstance(top, int):
            salvage_top = top
    for sf in arts.sample_files:
        # GC epochs are per-VM counters: in a domain-tagged (fleet) file
        # each guest's tag stream is monotonic on its own, so track one
        # (epoch, cycle) cursor per domain — interleaving is not a
        # regression.  Untagged files are one stream (cursor key None).
        prev: dict[int | None, tuple[int, int]] = {}
        beyond = 0
        beyond_max = -1
        for i, s in enumerate(sf.samples):
            if s.epoch < -1:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP106",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=f"invalid epoch tag {s.epoch}",
                )
                continue
            if s.epoch < 0:
                continue  # stock OProfile sample: no epoch concept
            stream = sf.domain_ids[i] if sf.domain_ids is not None else None
            cursor = prev.get(stream)
            if (
                cursor is not None
                and s.cycle >= cursor[1]
                and s.epoch < cursor[0]
            ):
                dom = "" if stream is None else f" (dom{stream})"
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP106",
                    artifact=str(sf.path),
                    location=f"sample {i}",
                    message=(
                        f"epoch tag regresses from {cursor[0]} to "
                        f"{s.epoch} while time advances (cycle "
                        f"{cursor[1]} -> {s.cycle}){dom}: GC epochs are "
                        "monotonic"
                    ),
                )
            prev[stream] = (s.epoch, s.cycle)
            if max_epoch is not None and s.epoch > max_epoch:
                beyond += 1
                beyond_max = max(beyond_max, s.epoch)
        if beyond:
            if salvage_top is not None and beyond_max <= salvage_top:
                # The lost tail epochs are inside the salvage manifest's
                # fenced range: the loss is accounted, not a surprise.
                yield Finding(
                    severity=Severity.INFO,
                    rule_id="VP106",
                    artifact=str(sf.path),
                    location="-",
                    message=(
                        f"{beyond} sample(s) tagged with epochs beyond "
                        f"the newest surviving map (epoch {max_epoch}) "
                        f"but within the salvaged top epoch "
                        f"({salvage_top}); accounted by salvage.json"
                    ),
                )
                continue
            yield Finding(
                severity=Severity.WARNING,
                rule_id="VP106",
                artifact=str(sf.path),
                location="-",
                message=(
                    f"{beyond} sample(s) tagged with epochs beyond the "
                    f"newest map (epoch {max_epoch}): final map flush "
                    "may be missing"
                ),
            )


# ----------------------------------------------------------------------
# Salvage-manifest rules (VP107-VP109): validate `viprof recover` output.
# ----------------------------------------------------------------------

_SALVAGE_ACTIONS = ("intact", "truncated", "quarantined")


def _salvage_entries(
    arts: SessionArtifacts,
) -> tuple[list[dict], list[dict]] | None:
    """The manifest's (sample_files, maps) entry lists, or None when the
    manifest is absent or structurally unusable (VP107 reports the
    latter; the other salvage rules just skip)."""
    if not isinstance(arts.salvage, dict):
        return None
    samples = arts.salvage.get("sample_files")
    maps = arts.salvage.get("maps")
    if not isinstance(samples, list) or not isinstance(maps, list):
        return None
    if not all(isinstance(e, dict) for e in samples + maps):
        return None
    return samples, maps


def _quarantine_files(arts: SessionArtifacts) -> list[Path]:
    """Every file sitting in a quarantine subdirectory."""
    found: list[Path] = []
    for sub in (SAMPLE_DIR_NAME, MAP_DIR_NAME):
        qdir = arts.session_dir / sub / QUARANTINE_DIR_NAME
        if qdir.is_dir():
            found.extend(p for p in sorted(qdir.iterdir()) if p.is_file())
    return found


@rule(
    "VP107", "salvage-manifest", Severity.ERROR,
    "a salvage manifest must agree with the on-disk session state",
)
def check_salvage_manifest(arts: SessionArtifacts) -> Iterator[Finding]:
    manifest_label = str(arts.session_dir / "salvage.json")
    if arts.salvage is None:
        # No manifest: quarantine directories must not exist — an
        # artifact was set aside with no record of why.
        for p in _quarantine_files(arts):
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP107",
                artifact=str(p),
                location="-",
                message=(
                    "quarantined artifact without a salvage manifest: "
                    "no record of what was lost or why"
                ),
            )
        return
    entries = _salvage_entries(arts)
    if entries is None:
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP107",
            artifact=manifest_label,
            location="-",
            message="malformed salvage manifest structure",
        )
        return
    samples, maps = entries
    version = arts.salvage.get("version")
    if version != 1:
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP107",
            artifact=manifest_label,
            location="version",
            message=f"unsupported salvage manifest version {version!r}",
        )
    listed: set[Path] = set()
    for i, e in enumerate(samples + maps):
        rel = e.get("path")
        loc = f"entry {i}"
        if not isinstance(rel, str):
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=manifest_label, location=loc,
                message=f"entry has no usable path: {e!r}",
            )
            continue
        path = arts.session_dir / rel
        listed.add(path)
        if not path.is_file():
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=manifest_label, location=loc,
                message=f"manifest names {rel!r} but no such file exists",
            )
        if e.get("action") not in _SALVAGE_ACTIONS:
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=manifest_label, location=loc,
                message=f"unknown salvage action {e.get('action')!r}",
            )
    # Every artifact on disk must be accounted for.
    on_disk: list[Path] = list(_quarantine_files(arts))
    sample_dir = arts.session_dir / SAMPLE_DIR_NAME
    if sample_dir.is_dir():
        on_disk.extend(sorted(sample_dir.glob("*.samples")))
    map_dir = arts.session_dir / MAP_DIR_NAME
    if map_dir.is_dir():
        on_disk.extend(
            p for p in sorted(map_dir.iterdir())
            if p.is_file() and _MAP_FILE_RE.match(p.name)
        )
    for p in on_disk:
        if p not in listed:
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP107",
                artifact=str(p),
                location="-",
                message="artifact not accounted for by the salvage manifest",
            )
    # Survivor claims must hold: a salvaged (non-quarantined) sample file
    # is record-aligned and holds exactly the record count claimed.
    for e in samples:
        rel, action = e.get("path"), e.get("action")
        if not isinstance(rel, str) or action not in ("intact", "truncated"):
            continue
        path = arts.session_dir / rel
        if not path.is_file():
            continue
        try:
            probe = probe_sample_file(path)
        except SampleFormatError as exc:  # header damage / torn header
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=str(path), location="-",
                message=(
                    f"manifest claims {action!r} but the file does not "
                    f"parse: {exc}"
                ),
            )
            continue
        if probe.trailing_bytes:
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=str(path), location="-",
                message=(
                    f"manifest claims {action!r} but the file still ends "
                    f"in a torn record ({probe.trailing_bytes} trailing "
                    "bytes)"
                ),
            )
        kept = e.get("records_kept")
        if isinstance(kept, int) and probe.n_records != kept:
            yield Finding(
                severity=Severity.ERROR, rule_id="VP107",
                artifact=str(path), location="-",
                message=(
                    f"manifest claims {kept} records kept but the file "
                    f"holds {probe.n_records}"
                ),
            )


@rule(
    "VP108", "quarantine-isolation", Severity.ERROR,
    "quarantined epochs must exactly cover the gaps salvage fenced off",
)
def check_quarantine_isolation(arts: SessionArtifacts) -> Iterator[Finding]:
    entries = _salvage_entries(arts)
    if entries is None:
        return
    manifest_label = str(arts.session_dir / "salvage.json")
    _, maps = entries
    quarantined = set(arts.quarantined_epochs)
    healthy = set(arts.maps)
    # A quarantined map must never be shadowed by a healthy map for the
    # same epoch: resolution would silently trust a survivor that the
    # manifest says is suspect.
    for e in maps:
        epoch, action = e.get("epoch"), e.get("action")
        if not isinstance(epoch, int):
            continue
        if action == "quarantined" and epoch in healthy:
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP108",
                artifact=arts.map_label(epoch),
                location=f"epoch {epoch}",
                message=(
                    f"epoch {epoch} has both a quarantined map and a "
                    "healthy map: quarantine is not isolated"
                ),
            )
        if action == "quarantined" and epoch not in quarantined:
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP108",
                artifact=manifest_label,
                location=f"epoch {epoch}",
                message=(
                    f"map for epoch {epoch} was quarantined but the epoch "
                    "is not in quarantined_epochs: the backward walk "
                    "would not treat it as a barrier"
                ),
            )
    top = arts.salvage.get("top_epoch") if isinstance(arts.salvage, dict) \
        else None
    if isinstance(top, int):
        expected = {e for e in range(top + 1) if e not in healthy}
        if quarantined != expected:
            missing = sorted(expected - quarantined)
            extra = sorted(quarantined - expected)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"spurious {extra}")
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP108",
                artifact=manifest_label,
                location="quarantined_epochs",
                message=(
                    "quarantined_epochs must be exactly the epochs in "
                    f"0..{top} without a healthy map: {'; '.join(detail)}"
                ),
            )


@rule(
    "VP109", "loss-accounting", Severity.ERROR,
    "the salvage manifest's loss numbers must add up exactly",
)
def check_loss_accounting(arts: SessionArtifacts) -> Iterator[Finding]:
    entries = _salvage_entries(arts)
    if entries is None:
        return
    manifest_label = str(arts.session_dir / "salvage.json")
    samples, _ = entries
    for i, e in enumerate(samples):
        rel, action = e.get("path"), e.get("action")
        kept = e.get("records_kept")
        dropped = e.get("bytes_dropped")
        loc = f"sample entry {i} ({rel})"
        if action == "intact" and dropped not in (0, None):
            yield Finding(
                severity=Severity.ERROR, rule_id="VP109",
                artifact=manifest_label, location=loc,
                message=f"intact file claims {dropped} bytes dropped",
            )
        if action == "quarantined" and kept not in (0, None):
            yield Finding(
                severity=Severity.ERROR, rule_id="VP109",
                artifact=manifest_label, location=loc,
                message=(
                    f"quarantined file claims {kept} records kept; "
                    "nothing survives a quarantine"
                ),
            )
        if action != "truncated" or not isinstance(rel, str):
            continue
        path = arts.session_dir / rel
        if not path.is_file():
            continue  # VP107 reports the missing file
        try:
            probe = probe_sample_file(path)
        except SampleFormatError:
            continue  # VP107 reports the unparseable file
        rsize = probe.record_size
        if not isinstance(dropped, int) or not 1 <= dropped < rsize:
            yield Finding(
                severity=Severity.ERROR, rule_id="VP109",
                artifact=manifest_label, location=loc,
                message=(
                    f"a truncation drops a strict sub-record tail: "
                    f"bytes_dropped={dropped!r} is not in 1..{rsize - 1}"
                ),
            )
        torn_at = e.get("torn_at")
        expected_cut = probe.data_start + probe.n_records * rsize
        if torn_at != expected_cut:
            yield Finding(
                severity=Severity.ERROR, rule_id="VP109",
                artifact=manifest_label, location=loc,
                message=(
                    f"torn_at={torn_at!r} does not sit at the last "
                    f"whole-record boundary ({expected_cut})"
                ),
            )
    top = arts.salvage.get("top_epoch") if isinstance(arts.salvage, dict) \
        else None
    if isinstance(top, int):
        max_map = max(arts.epochs, default=-1)
        max_tag = -1
        for sf in arts.sample_files:
            for s in sf.samples:
                if s.epoch > max_tag:
                    max_tag = s.epoch
        evident = max(max_map, max_tag)
        if evident > top:
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP109",
                artifact=manifest_label,
                location="top_epoch",
                message=(
                    f"surviving artifacts mention epoch {evident} but "
                    f"top_epoch is {top}: losses above top_epoch are "
                    "unaccounted"
                ),
            )


# ----------------------------------------------------------------------
# Summary-consistency rule (VP110): validate the unified metrics model's
# embedded summaries against the artifacts they claim to describe.
# ----------------------------------------------------------------------


def _decoded_event_totals(arts: SessionArtifacts) -> dict[str, int]:
    """Per-event decoded sample counts — the ground truth an embedded
    summary's ``totals`` must reproduce (unreadable files are skipped
    here exactly as the summary builders skip them; VP100 reports
    those)."""
    totals: dict[str, int] = {}
    for sf in arts.sample_files:
        totals[sf.event_name] = totals.get(sf.event_name, 0) + len(sf.samples)
    return totals


def _summary_registration(
    arts: SessionArtifacts, summary: SessionSummary
) -> VmRegistration | None:
    """The VM heap registration to classify against: the session's own
    metadata first, else the one the summary carries in its meta."""
    if arts.registration is not None:
        return arts.registration
    reg = summary.meta.get("registration")
    if not isinstance(reg, dict):
        return None
    try:
        return VmRegistration(
            task_id=int(reg["task_id"]),
            heap_low=int(reg["heap_low"]),
            heap_high=int(reg["heap_high"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def _classified_counts(
    arts: SessionArtifacts, reg: VmRegistration | None
) -> tuple[int, int, int, int]:
    """(total, kernel, jit, user) classification of every decoded sample
    — the same kernel-mode / heap-bounds split the daemon and the
    offline summary builder both use."""
    total = kernel = jit = user = 0
    for sf in arts.sample_files:
        for s in sf.samples:
            total += 1
            if s.kernel_mode:
                kernel += 1
            elif (
                reg is not None
                and s.task_id == reg.task_id
                and reg.covers(s.pc)
            ):
                jit += 1
            else:
                user += 1
    return total, kernel, jit, user


def _mismatch(
    artifact: str, location: str, what: str, claimed: object, actual: object
) -> Finding:
    return Finding(
        severity=Severity.ERROR,
        rule_id="VP110",
        artifact=artifact,
        location=location,
        message=(
            f"summary claims {what} = {claimed!r} but the artifacts "
            f"hold {actual!r}"
        ),
    )


def _check_session_summary(arts: SessionArtifacts) -> Iterator[Finding]:
    path = arts.session_dir / SUMMARY_NAME
    if not path.is_file():
        return
    label = str(path)
    try:
        summary = SessionSummary.load(path)
    except AnalysisError as exc:
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP110",
            artifact=label,
            location="-",
            message=f"embedded summary does not parse: {exc}",
        )
        return

    # Per-event totals vs the records actually on disk.
    actual_totals = _decoded_event_totals(arts)
    for ev in sorted(set(summary.totals) | set(actual_totals)):
        claimed = summary.totals.get(ev, 0)
        actual = actual_totals.get(ev, 0)
        if claimed != actual:
            yield _mismatch(
                label, f"totals[{ev}]", f"{ev} samples", claimed, actual
            )

    reg = _summary_registration(arts, summary)
    total, kernel, jit, user = _classified_counts(arts, reg)

    collection = summary.panel("collection")
    if collection:
        checks: list[tuple[str, object, int]] = [
            ("samples_logged", collection.get("samples_logged"), total),
            ("kernel_samples", collection.get("kernel_samples"), kernel),
        ]
        if reg is not None:
            checks.append(
                ("jit_samples", collection.get("jit_samples"), jit)
            )
            file_s = collection.get("file_samples")
            anon_s = collection.get("anon_samples")
            if isinstance(file_s, int) and isinstance(anon_s, int):
                checks.append(
                    ("file_samples+anon_samples", file_s + anon_s, user)
                )
        for name, claimed, actual in checks:
            if isinstance(claimed, int) and claimed != actual:
                yield _mismatch(
                    label, f"panels.collection.{name}", name, claimed, actual
                )

    layers = summary.panel("layers")
    if layers:
        layer_checks: list[tuple[str, object, int]] = [
            ("total", layers.get("total"), total),
            ("kernel", layers.get("kernel"), kernel),
        ]
        if reg is not None:
            layer_checks.append(("jit", layers.get("jit"), jit))
            layer_checks.append(("user", layers.get("user"), user))
        for name, claimed, actual in layer_checks:
            if isinstance(claimed, int) and claimed != actual:
                yield _mismatch(
                    label, f"panels.layers.{name}", f"layer {name!r}",
                    claimed, actual,
                )
        jit_detail = summary.panel("jit")
        claimed_jit = layers.get("jit")
        if jit_detail and isinstance(claimed_jit, int):
            split = sum(
                v for v in (
                    jit_detail.get("resolved"),
                    jit_detail.get("unresolved"),
                    jit_detail.get("blocked_at_quarantine"),
                )
                if isinstance(v, int)
            )
            if split != claimed_jit:
                yield _mismatch(
                    label, "panels.jit",
                    "resolved+unresolved+blocked_at_quarantine",
                    split, claimed_jit,
                )

    # The summary's salvage panel must re-derive from the manifest.
    claimed_salvage = summary.panel("salvage")
    if claimed_salvage:
        if not isinstance(arts.salvage, dict):
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP110",
                artifact=label,
                location="panels.salvage",
                message=(
                    "summary carries a salvage panel but the session has "
                    "no salvage manifest"
                ),
            )
        else:
            expected = salvage_panel(arts.salvage)
            for key in sorted(set(claimed_salvage) | set(expected)):
                if claimed_salvage.get(key) != expected.get(key):
                    yield _mismatch(
                        label, f"panels.salvage.{key}", key,
                        claimed_salvage.get(key), expected.get(key),
                    )


def _check_salvage_summary(arts: SessionArtifacts) -> Iterator[Finding]:
    """The summary block ``viprof recover`` embeds in ``salvage.json``
    must re-derive from the manifest's own per-artifact entries (older
    manifests without one are fine)."""
    if not isinstance(arts.salvage, dict):
        return
    embedded = arts.salvage.get("summary")
    if embedded is None:
        return
    label = str(arts.session_dir / "salvage.json")
    if not isinstance(embedded, dict):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP110",
            artifact=label,
            location="summary",
            message=f"malformed embedded summary: {embedded!r}",
        )
        return
    version = embedded.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP110",
            artifact=label,
            location="summary.schema_version",
            message=f"embedded summary has no schema version: {version!r}",
        )
    panel = embedded.get("salvage")
    if not isinstance(panel, dict):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP110",
            artifact=label,
            location="summary.salvage",
            message=f"malformed embedded salvage panel: {panel!r}",
        )
        return
    expected = salvage_panel(arts.salvage)
    for key in sorted(set(panel) | set(expected)):
        if panel.get(key) != expected.get(key):
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP110",
                artifact=label,
                location=f"summary.salvage.{key}",
                message=(
                    f"embedded salvage panel claims {key} = "
                    f"{panel.get(key)!r} but the manifest's entries sum "
                    f"to {expected.get(key)!r}"
                ),
            )


@rule(
    "VP110", "summary-consistency", Severity.ERROR,
    "an embedded session summary must agree with the artifacts on disk",
)
def check_summary_consistency(arts: SessionArtifacts) -> Iterator[Finding]:
    yield from _check_session_summary(arts)
    yield from _check_salvage_summary(arts)


@rule(
    "VP111", "arena-consistency", Severity.ERROR,
    "a compiled code-map arena must validate and match its source maps",
)
def check_arena_consistency(arts: SessionArtifacts) -> Iterator[Finding]:
    """A ``jit-maps.arena`` file, when present, must be the compiled
    image of the epoch maps sitting next to it — validated three ways:
    internal integrity (checksum), the recorded source digests, and a
    full epoch/record comparison against the text maps.  Absence is
    fine (the arena is optional); presence with any mismatch is an
    ERROR, because whoever checked the artifact in believed it matched.
    """
    from repro.viprof.arena import ArenaError, CodeMapArena, arena_path_for

    map_dir = arts.session_dir / MAP_DIR_NAME
    arena_path = arena_path_for(map_dir)
    if not arena_path.is_file():
        return
    label = str(arena_path)
    try:
        arena = CodeMapArena.open(arena_path)
    except ArenaError as e:
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP111",
            artifact=label,
            location="-",
            message=f"arena does not validate: {e}",
        )
        return
    try:
        yield from _arena_vs_maps(arena, arts, label, map_dir)
    finally:
        arena.close()


def _arena_vs_maps(
    arena, arts: SessionArtifacts, label: str, map_dir
) -> Iterator[Finding]:
    """VP111 body: compare a validated open arena against the text maps."""
    from repro.viprof.arena import ArenaError

    for reason in arena.stale_reasons(map_dir):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP111",
            artifact=label,
            location="sources",
            message=f"stale arena: {reason}",
        )
    arena_epochs = set(arena.epochs)
    map_epochs = set(arts.maps)
    for epoch in sorted(arena_epochs - map_epochs):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP111",
            artifact=label,
            location=f"epoch {epoch}",
            message="arena holds an epoch with no map file on disk",
        )
    for epoch in sorted(map_epochs - arena_epochs):
        yield Finding(
            severity=Severity.ERROR,
            rule_id="VP111",
            artifact=label,
            location=f"epoch {epoch}",
            message=f"map file {arts.map_label(epoch)} is missing "
            "from the arena",
        )
    for epoch in sorted(arena_epochs & map_epochs):
        try:
            packed = arena.epoch_map(epoch).records
        except (ArenaError, CodeMapError) as e:
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP111",
                artifact=label,
                location=f"epoch {epoch}",
                message=f"arena records do not materialize: {e}",
            )
            continue
        on_disk = tuple(sorted(arts.maps[epoch].records))
        if len(packed) != len(on_disk):
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP111",
                artifact=label,
                location=f"epoch {epoch}",
                message=(
                    f"arena packs {len(packed)} records but "
                    f"{arts.map_label(epoch)} declares {len(on_disk)}"
                ),
            )
        elif packed != on_disk:
            diff = next(
                i for i, (a, b) in enumerate(zip(packed, on_disk))
                if a != b
            )
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP111",
                artifact=label,
                location=f"epoch {epoch}",
                message=(
                    f"arena record {diff} ({packed[diff].name!r}) "
                    f"disagrees with the map file "
                    f"({on_disk[diff].name!r})"
                ),
            )


# ----------------------------------------------------------------------
# Fleet rule (VP112): cross-domain isolation of a multi-domain session.
# ----------------------------------------------------------------------


def _record_key(s) -> tuple:
    """Core identity of one decoded sample record."""
    return (s.pc, s.cycle, s.task_id, s.kernel_mode, s.epoch)


def _epoch_evidence(arts: SessionArtifacts) -> set[int]:
    """Epochs one session's own artifacts mention (maps + sample tags)."""
    evidence = set(arts.maps)
    for sf in arts.sample_files:
        evidence.update(s.epoch for s in sf.samples if s.epoch >= 0)
    return evidence


@rule(
    "VP112", "domain-isolation", Severity.ERROR,
    "per-domain sub-sessions must exactly partition the fleet root "
    "stream, own every record they hold, and justify their quarantined "
    "epochs with their own artifacts",
)
def check_domain_isolation(arts: SessionArtifacts) -> Iterator[Finding]:
    """Cross-domain invariants of a many-guest (fleet) session root.

    The per-domain deep checks (VP101..VP111) run when each ``dom<N>/``
    sub-session is linted on its own; this rule holds the *seams*
    between them:

    * every record inside ``dom<N>/`` carries domain tag N — a foreign
      tag means one guest's stream bled into another's sub-session;
    * per event, the root stream's records tagged N equal dom N's
      records, in order — the sub-sessions are an exact partition of
      what dom0's daemon drained, nothing duplicated, dropped, or
      re-homed (and every tag in the root has a sub-session);
    * a domain's quarantined epochs are justified by that domain's own
      artifacts — a quarantine copied from a sibling's salvage (epoch
      shadowed by a healthy map, or evident in no artifact of its own)
      would silently discard healthy attributions.

    Single-stack sessions (no ``dom<N>/`` sub-directories) are exempt.
    """
    if not arts.domains:
        return

    # --- tag ownership ------------------------------------------------
    for did, sub in sorted(arts.domains.items()):
        for sf in sub.sample_files:
            if sf.domain_ids is None:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=str(sf.path),
                    location="-",
                    message=(
                        f"dom{did}'s sample file is not domain-tagged: "
                        "ownership cannot be established"
                    ),
                )
                continue
            foreign = [
                (i, t) for i, t in enumerate(sf.domain_ids) if t != did
            ]
            if foreign:
                first_i, first_t = foreign[0]
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=str(sf.path),
                    location=f"sample {first_i}",
                    message=(
                        f"{len(foreign)} record(s) tagged for other "
                        f"domains inside dom{did}'s sub-session (first "
                        f"is tagged dom{first_t}): one guest's stream "
                        "bled into another's"
                    ),
                )

    # --- exact partition of the root stream ---------------------------
    root_by_event: dict[str, dict[int, list[tuple]]] = {}
    untagged_events: set[str] = set()
    for sf in arts.sample_files:
        if sf.domain_ids is None:
            untagged_events.add(sf.event_name)
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP112",
                artifact=str(sf.path),
                location="-",
                message=(
                    "fleet root stream is not domain-tagged: the "
                    "per-domain partition cannot be checked"
                ),
            )
            continue
        per = root_by_event.setdefault(sf.event_name, {})
        for s, t in zip(sf.samples, sf.domain_ids):
            per.setdefault(t, []).append(_record_key(s))

    for ev, per in sorted(root_by_event.items()):
        for t in sorted(set(per) - set(arts.domains)):
            yield Finding(
                severity=Severity.ERROR,
                rule_id="VP112",
                artifact=str(arts.session_dir),
                location=ev,
                message=(
                    f"root stream holds {len(per[t])} record(s) tagged "
                    f"dom{t} but the session has no dom{t}/ sub-session"
                ),
            )

    for did, sub in sorted(arts.domains.items()):
        dom_by_event: dict[str, list[tuple]] = {}
        for sf in sub.sample_files:
            dom_by_event.setdefault(sf.event_name, []).extend(
                _record_key(s) for s in sf.samples
            )
        events = set(dom_by_event) | {
            ev for ev, per in root_by_event.items() if did in per
        }
        for ev in sorted(events - untagged_events):
            want = root_by_event.get(ev, {}).get(did, [])
            got = dom_by_event.get(ev)
            if got is None and ev not in root_by_event:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=str(sub.session_dir),
                    location=ev,
                    message=(
                        f"dom{did} holds {ev} records but the root "
                        "stream has no file for that event"
                    ),
                )
                continue
            got = got or []
            if want != got:
                diverge = next(
                    (
                        i
                        for i, (a, b) in enumerate(zip(want, got))
                        if a != b
                    ),
                    min(len(want), len(got)),
                )
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=str(sub.session_dir),
                    location=ev,
                    message=(
                        f"dom{did}'s records do not partition the root "
                        f"stream for {ev}: root holds {len(want)} "
                        f"record(s) tagged dom{did}, the sub-session "
                        f"holds {len(got)} (first divergence at record "
                        f"{diverge})"
                    ),
                )

    # --- quarantines justified by the domain's own artifacts ----------
    evidence = {
        did: _epoch_evidence(sub) for did, sub in arts.domains.items()
    }
    for did, sub in sorted(arts.domains.items()):
        quarantined = sub.quarantined_epochs
        if not quarantined:
            continue
        label = str(sub.session_dir / SALVAGE_NAME)
        own_max = max(evidence[did], default=-1)
        for q in sorted(set(quarantined)):
            if q in sub.maps:
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=label,
                    location=f"epoch {q}",
                    message=(
                        f"dom{did} quarantines epoch {q} yet holds a "
                        "healthy map for it: the quarantine is not "
                        "justified by this domain's own damage "
                        "(salvage leaked across domains)"
                    ),
                )
            elif q > own_max:
                culprits = sorted(
                    o
                    for o, ev_set in evidence.items()
                    if o != did and max(ev_set, default=-1) >= q
                )
                hint = (
                    f"; epoch {q} is evident in dom{culprits[0]}'s "
                    "artifacts — the quarantine leaked across domains"
                    if culprits
                    else ""
                )
                yield Finding(
                    severity=Severity.ERROR,
                    rule_id="VP112",
                    artifact=label,
                    location=f"epoch {q}",
                    message=(
                        f"dom{did} quarantines epoch {q} but none of "
                        f"its own artifacts mention any epoch >= {q}"
                        f"{hint}"
                    ),
                )
