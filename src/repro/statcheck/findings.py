"""Structured findings emitted by the static analyzers.

Both front ends — the artifact analyzer (``viprof lint``) and the source
self-lint (``python -m repro.statcheck.selflint``) — report through the
same types, so CI, tests, and humans consume one format.  A finding
carries a severity, a stable rule id, the artifact it was found in (a
file path, or ``<session>`` for cross-artifact rules), a free-form
location (epoch, line, record, ...), and a message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Iterable, Iterator

from repro.errors import StatCheckError

__all__ = ["Severity", "Finding", "FindingReport"]


class Severity(Enum):
    """How bad a finding is; ordering is by badness."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    @classmethod
    def parse(cls, value: str) -> "Severity":
        """Parse a serialized severity; typed error on junk input."""
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(s.value for s in cls)
            raise StatCheckError(
                f"unknown severity {value!r} (known: {known})"
            ) from None


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation in one place."""

    severity: Severity
    rule_id: str
    artifact: str
    location: str
    message: str

    def format_line(self) -> str:
        return (
            f"{self.severity.value.upper():<7} {self.rule_id:<6} "
            f"{self.artifact}:{self.location}: {self.message}"
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "severity": self.severity.value,
            "rule_id": self.rule_id,
            "artifact": self.artifact,
            "location": self.location,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` — ``Finding -> dict -> Finding`` is
        lossless.  Malformed input (missing keys, junk severity) raises
        :class:`~repro.errors.StatCheckError`, since findings cross
        process and cache boundaries in the fleet lint path."""
        if not isinstance(data, dict):
            raise StatCheckError(
                f"finding must be a dict, got {type(data).__name__}"
            )
        expected = {f.name for f in fields(cls)}
        missing = expected - data.keys()
        if missing:
            raise StatCheckError(
                f"finding dict missing key(s): {', '.join(sorted(missing))}"
            )
        str_keys = expected - {"severity"}
        bad = [k for k in str_keys if not isinstance(data[k], str)]
        if bad:
            raise StatCheckError(
                f"finding key(s) not strings: {', '.join(sorted(bad))}"
            )
        return cls(
            severity=Severity.parse(data["severity"]),
            rule_id=data["rule_id"],
            artifact=data["artifact"],
            location=data["location"],
            message=data["message"],
        )


@dataclass
class FindingReport:
    """An ordered collection of findings plus formatting/exit-code logic."""

    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        rule_id: str,
        artifact: str,
        location: str,
        message: str,
    ) -> Finding:
        f = Finding(
            severity=severity,
            rule_id=rule_id,
            artifact=artifact,
            location=location,
            message=message,
        )
        self.findings.append(f)
        return f

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    # ------------------------------------------------------------------

    def by_rule(self, rule_id: str) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.rule_id == rule_id)

    @property
    def rule_ids(self) -> tuple[str, ...]:
        return tuple(sorted({f.rule_id for f in self.findings}))

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def worst(self) -> Severity | None:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 when no finding reaches ``fail_on`` severity, else 1."""
        worst = self.worst
        return 1 if worst is not None and fail_on <= worst else 0

    # ------------------------------------------------------------------

    def sorted(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (-f.severity.rank, f.rule_id, f.artifact, f.location),
        )

    def format_text(self) -> str:
        if not self.findings:
            return "clean: no findings"
        lines = [f.format_line() for f in self.sorted()]
        lines.append(
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.sorted()],
                "counts": {
                    s.value: self.count(s) for s in Severity
                },
            },
            indent=2,
        )
