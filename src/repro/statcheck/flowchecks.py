"""Dataflow-powered self-lint rules SL205–SL209.

These are the project-specific source checks that need more than a flat
AST walk: path-sensitive handle tracking (SL205), reachability from the
shard-pool dispatch sites (SL206), constant folding (SL207), per-class
field accounting (SL208), and a cross-file registry bijection (SL209).
SL205 runs on the CFGs built by :mod:`repro.statcheck.dataflow`; the
rest are flow-insensitive module passes.  All are wired into
:mod:`repro.statcheck.selflint`, which owns file iteration, rule
selection and reporting.

Precision stance (shared with :mod:`~repro.statcheck.dataflow`): a rule
here must hold on the real tree with **zero false positives** — CI gates
on it — so every approximation errs toward silence.  A handle that
escapes (stored on ``self``, returned, passed to a callee) is someone
else's to close; a worker we cannot prove reaches a mutable global is
not flagged; a format string we cannot fold is skipped.
"""

from __future__ import annotations

import ast
import re
import struct
from typing import Iterable

from repro.statcheck.dataflow import (
    Block,
    Header,
    build_cfg,
    iter_functions,
    run_forward,
)
from repro.statcheck.findings import Finding, Severity

__all__ = [
    "check_resource_leaks",
    "check_fork_shared_state",
    "check_codec_consistency",
    "check_counter_accounting",
    "collect_fire_calls",
    "check_fault_point_sites",
]


def _finding(
    severity: Severity, rule_id: str, rel: str, lineno: int, msg: str
) -> Finding:
    return Finding(
        severity=severity,
        rule_id=rule_id,
        artifact=rel,
        location=f"line {lineno}",
        message=msg,
    )


# ======================================================================
# SL205 — resource-leak: handles reach close() or `with` on all paths
# ======================================================================

#: Callables whose return value is a handle the caller must close.
#: Bare names (``open(...)``) and attribute calls (``path.open(...)``,
#: ``os.fdopen(...)``) both match on the final identifier.
_HANDLE_CALLS = frozenset(
    {
        "open",
        "fdopen",
        "open_sample_record_file",
        "RecordFileReader",
        "RecordFileWriter",
        "SampleFileReader",
        "SampleFileWriter",
        "XenoSampleFileReader",
        "XenoSampleFileWriter",
    }
)


def _call_name(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _acquires_handle(value: ast.expr | None) -> bool:
    return _call_name(value) in _HANDLE_CALLS if value is not None else False


def _scan_uses(live: dict[str, int], node: ast.AST) -> None:
    """Apply one expression/statement's effect on the live-handle map.

    * ``x.close()`` (and ``x.__exit__``) kill ``x`` — it is now closed.
    * Any *bare* occurrence of a live name — returned, yielded, passed as
      an argument, stored into an attribute/container, compared — is an
      escape: ownership may have transferred, so we stop tracking rather
      than report a false leak.  Attribute-receiver position (``x.read()``,
      ``x.closed``) is not an escape: the handle stays put.
    """
    receivers: set[int] = set()
    closed: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Attribute) and isinstance(n.value, ast.Name):
            receivers.add(id(n.value))
            if n.attr in ("close", "__exit__"):
                closed.add(n.value.id)
    for name in closed:
        live.pop(name, None)
    for n in ast.walk(node):
        if (
            isinstance(n, ast.Name)
            and id(n) not in receivers
            and n.id in live
        ):
            live.pop(n.id, None)


def _kill_target_names(live: dict[str, int], target: ast.AST) -> None:
    for n in ast.walk(target):
        if isinstance(n, ast.Name):
            live.pop(n.id, None)


def _apply_assign(live: dict[str, int], node: ast.stmt) -> None:
    """Assignments: rebinding kills, acquiring gens, the value may escape
    other live handles.  ``a, b = open(p), True`` pairs element-wise."""
    if isinstance(node, ast.AnnAssign):
        pairs = (
            [(node.target, node.value)] if node.value is not None else []
        )
        value_nodes = [node.value] if node.value is not None else []
        plain_targets = [node.target]
    elif isinstance(node, ast.AugAssign):
        _scan_uses(live, node.value)
        _kill_target_names(live, node.target)
        return
    else:
        assert isinstance(node, ast.Assign)
        value_nodes = [node.value]
        plain_targets = list(node.targets)
        pairs = []
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Tuple)
            and len(node.targets[0].elts) == len(node.value.elts)
        ):
            pairs = list(zip(node.targets[0].elts, node.value.elts))
        else:
            pairs = [(t, node.value) for t in node.targets]
    for v in value_nodes:
        _scan_uses(live, v)
    for t in plain_targets:
        if not isinstance(t, ast.Name):
            _scan_uses(live, t)  # e.g. self._fh = ... subscript targets
    for t, v in pairs:
        if isinstance(t, ast.Name):
            live.pop(t.id, None)
            if _acquires_handle(v):
                live[t.id] = node.lineno
        else:
            _kill_target_names(live, t)


def _finally_closed_names(finally_body: list) -> set[str]:
    """Names that get a ``.close()`` anywhere in a ``finally`` body: the
    cleanup is trusted wholesale (even under a condition — the condition
    encodes ownership we cannot see)."""
    closed: set[str] = set()
    for stmt in finally_body:
        for n in ast.walk(stmt):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "close"
                and isinstance(n.func.value, ast.Name)
            ):
                closed.add(n.func.value.id)
    return closed


def _apply_element(live: dict[str, int], el) -> None:
    if isinstance(el, Header):
        node = el.node
        if isinstance(node, (ast.With, ast.AsyncWith)):
            # `with`-managed handles close themselves; every name in the
            # header (manager or alias) is accounted for.
            for e in el.exprs:
                for n in ast.walk(e):
                    if isinstance(n, ast.Name):
                        live.pop(n.id, None)
            return
        for e in el.exprs:
            _scan_uses(live, e)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            _kill_target_names(live, node.target)
        return
    node = el
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # A nested scope capturing the handle may close or keep it.
        for n in ast.walk(node):
            if isinstance(n, ast.Name):
                live.pop(n.id, None)
        return
    if isinstance(node, ast.Delete):
        for t in node.targets:
            _kill_target_names(live, t)
        return
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        _apply_assign(live, node)
        return
    _scan_uses(live, node)


def _leak_transfer(blk: Block, facts: frozenset) -> frozenset:
    live: dict[str, int] = dict(facts)
    if blk.finally_body:
        for name in _finally_closed_names(blk.finally_body):
            live.pop(name, None)
    for el in blk.elements:
        _apply_element(live, el)
    return frozenset(live.items())


def check_resource_leaks(tree: ast.AST, rel: str) -> list[Finding]:
    """SL205: every locally-opened handle reaches ``close()``/``with``
    on every path to the function exit (normal or ``raise``)."""
    findings: list[Finding] = []
    for fn in iter_functions(tree):
        cfg = build_cfg(fn)
        ins = run_forward(cfg, _leak_transfer)
        for name, lineno in sorted(
            ins[cfg.exit], key=lambda item: (item[1], item[0])
        ):
            findings.append(
                _finding(
                    Severity.ERROR, "SL205", rel, lineno,
                    f"handle {name!r} opened in {fn.name!r} may not be "
                    "closed on every path to the function exit — use "
                    "'with', or close() in a finally",
                )
            )
    return findings


# ======================================================================
# SL206 — fork-shared-mutable-state in pool workers
# ======================================================================

_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "defaultdict", "Counter", "deque", "OrderedDict",
    }
)

#: Methods that dispatch a callable into another process (the shard pool
#: in pipeline/parallel.py uses ``Executor.map``/``submit``).
_DISPATCH_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "submit", "apply_async"}
)


def _is_mutable_binding(value: ast.expr) -> bool:
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    return _call_name(value) in _MUTABLE_FACTORIES


def _locally_bound_names(fn) -> set[str]:
    a = fn.args
    bound = {
        arg.arg
        for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]
    }
    if a.vararg:
        bound.add(a.vararg.arg)
    if a.kwarg:
        bound.add(a.kwarg.arg)
    declared_global: set[str] = set()
    for n in ast.walk(fn):
        if isinstance(n, ast.Name) and isinstance(
            n.ctx, (ast.Store, ast.Del)
        ):
            bound.add(n.id)
        elif isinstance(n, ast.Global):
            declared_global.update(n.names)
    return bound - declared_global


def check_fork_shared_state(tree: ast.AST, rel: str) -> list[Finding]:
    """SL206: a worker function handed to a process pool (or any callee
    it reaches in the same module) must not read module-level mutable
    state — under fork each shard gets a silently diverging copy."""
    mutable_globals: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            targets = [stmt.target] if stmt.value is not None else []
            value = stmt.value
        else:
            continue
        if value is not None and _is_mutable_binding(value):
            for t in targets:
                if t.id != "__all__":
                    mutable_globals[t.id] = stmt.lineno
    if not mutable_globals:
        return []

    funcs = {
        n.name: n
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    workers: set[str] = {
        name for name in funcs if name.endswith("_worker")
    }
    for n in ast.walk(tree):
        if not isinstance(n, ast.Call):
            continue
        f = n.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _DISPATCH_METHODS
            and n.args
            and isinstance(n.args[0], ast.Name)
            and n.args[0].id in funcs
        ):
            workers.add(n.args[0].id)
        if _call_name(n) == "Process":
            for kw in n.keywords:
                if (
                    kw.arg == "target"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in funcs
                ):
                    workers.add(kw.value.id)
    if not workers:
        return []

    # Transitive closure over same-module calls: remember which worker
    # entry point first reached each function, for the message.
    via: dict[str, str] = {}
    stack = [(w, w) for w in sorted(workers)]
    while stack:
        fname, root = stack.pop()
        if fname in via:
            continue
        via[fname] = root
        for n in ast.walk(funcs[fname]):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id in funcs
            ):
                stack.append((n.func.id, root))

    findings: list[Finding] = []
    for fname in sorted(via):
        fn = funcs[fname]
        local = _locally_bound_names(fn)
        reported: set[str] = set()
        for n in ast.walk(fn):
            if (
                isinstance(n, ast.Name)
                and isinstance(n.ctx, ast.Load)
                and n.id in mutable_globals
                and n.id not in local
                and n.id not in reported
            ):
                reported.add(n.id)
                root = via[fname]
                path = (
                    f"worker {root!r}"
                    if fname == root
                    else f"{fname!r} (reached from worker {root!r})"
                )
                findings.append(
                    _finding(
                        Severity.ERROR, "SL206", rel, n.lineno,
                        f"{path} reads module-level mutable {n.id!r} "
                        f"(defined line {mutable_globals[n.id]}): "
                        "fork-dispatched shard workers must not share "
                        "mutable module state",
                    )
                )
    return findings


# ======================================================================
# SL207 — codec consistency: struct formats, record sizes, magics
# ======================================================================

_STRUCT_CALLS = frozenset(
    {"Struct", "calcsize", "pack", "unpack", "iter_unpack",
     "unpack_from", "pack_into"}
)

_SIZE_SUFFIX = "_RECORD_SIZE"
_FORMAT_SUFFIX = "_RECORD_FORMAT"


def _fold_constants(tree: ast.Module) -> dict[str, tuple[frozenset, int]]:
    """Constant-fold module-level str/bytes/int bindings.

    Each name maps to the *set* of values it may hold (an ``IfExp``
    contributes both arms) plus its definition line.  Unfoldable values
    drop the name entirely — absence means "don't check", never "0"."""
    env: dict[str, tuple[frozenset, int]] = {}

    def fold(node: ast.expr) -> frozenset | None:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, (str, bytes)) or (
                isinstance(v, int) and not isinstance(v, bool)
            ):
                return frozenset([v])
            return None
        if isinstance(node, ast.Name):
            entry = env.get(node.id)
            return entry[0] if entry else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, right = fold(node.left), fold(node.right)
            if left is None or right is None:
                return None
            out = set()
            for a in left:
                for b in right:
                    if type(a) is not type(b):
                        return None
                    out.add(a + b)
            return frozenset(out)
        if isinstance(node, ast.IfExp):
            body, orelse = fold(node.body), fold(node.orelse)
            if body is None or orelse is None:
                return None
            return body | orelse
        return None

    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name, value = stmt.targets[0].id, stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
        ):
            name, value = stmt.target.id, stmt.value
        else:
            continue
        folded = fold(value)
        if folded is not None:
            env[name] = (folded, stmt.lineno)
    return env


def check_codec_consistency(tree: ast.Module, rel: str) -> list[Finding]:
    """SL207: every foldable struct format string parses; declared
    ``*_RECORD_SIZE`` constants equal ``struct.calcsize`` of their
    ``*_RECORD_FORMAT`` twin; record magics are exactly 4 bytes."""
    findings: list[Finding] = []
    env = _fold_constants(tree)

    def err(lineno: int, msg: str) -> None:
        findings.append(_finding(Severity.ERROR, "SL207", rel, lineno, msg))

    # (a) every constant-foldable struct format must parse.
    def fold_expr(node: ast.expr) -> frozenset | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return frozenset([node.value])
        if isinstance(node, ast.Name):
            entry = env.get(node.id)
            return entry[0] if entry else None
        return None

    for n in ast.walk(tree):
        if not (isinstance(n, ast.Call) and _call_name(n) in _STRUCT_CALLS):
            continue
        if not n.args:
            continue
        candidates = fold_expr(n.args[0])
        for fmt in sorted(candidates or (), key=repr):
            if not isinstance(fmt, str):
                continue
            try:
                struct.calcsize(fmt)
            except struct.error as e:
                err(
                    n.lineno,
                    f"struct format {fmt!r} does not parse: {e}",
                )

    # (b) *_RECORD_SIZE <-> *_RECORD_FORMAT cross-check, both directions.
    by_public: dict[str, str] = {
        name.lstrip("_"): name for name in env
    }
    for public, name in sorted(by_public.items()):
        values, lineno = env[name]
        if public.endswith(_SIZE_SUFFIX):
            prefix = public[: -len(_SIZE_SUFFIX)]
            fmt_name = by_public.get(prefix + _FORMAT_SUFFIX)
            if fmt_name is None:
                err(
                    lineno,
                    f"{name} declares a record size but no "
                    f"{prefix}{_FORMAT_SUFFIX} constant exists to "
                    "cross-check it against",
                )
                continue
            declared = {v for v in values if isinstance(v, int)}
            for fmt in sorted(env[fmt_name][0], key=repr):
                if not isinstance(fmt, str):
                    continue
                try:
                    actual = struct.calcsize(fmt)
                except struct.error:
                    continue  # reported by (a) at the use site
                if actual not in declared:
                    err(
                        lineno,
                        f"{name} = {sorted(declared)} disagrees with "
                        f"struct.calcsize({fmt_name} = {fmt!r}) = {actual}",
                    )
        elif public.endswith(_FORMAT_SUFFIX):
            prefix = public[: -len(_FORMAT_SUFFIX)]
            if by_public.get(prefix + _SIZE_SUFFIX) is None:
                err(
                    lineno,
                    f"{name} declares a record layout but no "
                    f"{prefix}{_SIZE_SUFFIX} constant pins its size — "
                    "readers cannot cheaply validate record alignment",
                )

    # (c) record magics are exactly 4 bytes (the header reserves 4).
    for public, name in sorted(by_public.items()):
        if "MAGIC" not in public.upper():
            continue
        values, lineno = env[name]
        for v in values:
            if isinstance(v, bytes) and len(v) != 4:
                err(
                    lineno,
                    f"magic constant {name} = {v!r} is {len(v)} bytes; "
                    "record headers reserve exactly 4",
                )
    for n in ast.walk(tree):
        if not (isinstance(n, ast.Call) and _call_name(n) == "RecordCodec"):
            continue
        for kw in n.keywords:
            if kw.arg != "magic":
                continue
            folded = None
            if isinstance(kw.value, ast.Constant):
                folded = frozenset([kw.value.value])
            elif isinstance(kw.value, ast.Name):
                entry = env.get(kw.value.id)
                folded = entry[0] if entry else None
            for v in folded or ():
                if isinstance(v, bytes) and len(v) != 4:
                    err(
                        n.lineno,
                        f"RecordCodec magic {v!r} is {len(v)} bytes; "
                        "record headers reserve exactly 4",
                    )
    return findings


# ======================================================================
# SL208 — counter accounting: merge() and the export dict cover every
# counter a stats class maintains
# ======================================================================

_EXPORT_METHODS = ("stats_dict", "as_dict", "to_dict")


def _class_counters(cls: ast.ClassDef, methods: dict) -> dict[str, int]:
    counters: dict[str, int] = {}
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and isinstance(stmt.annotation, ast.Name)
            and stmt.annotation.id == "int"
            and isinstance(stmt.value, ast.Constant)
            and type(stmt.value.value) is int
        ):
            counters[stmt.target.id] = stmt.lineno
    init = methods.get("__init__")
    if init is not None:
        for n in ast.walk(init):
            target = None
            if isinstance(n, ast.Assign) and len(n.targets) == 1:
                target, value = n.targets[0], n.value
            elif isinstance(n, ast.AnnAssign) and n.value is not None:
                target, value = n.target, n.value
            else:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Constant)
                and type(value.value) is int
            ):
                counters[target.attr] = n.lineno
    # Anything incremented on self outside merge() is a counter even if
    # its initializer is not a literal int.
    for mname, m in methods.items():
        if mname == "merge":
            continue
        for n in ast.walk(m):
            if (
                isinstance(n, ast.AugAssign)
                and isinstance(n.op, ast.Add)
                and isinstance(n.target, ast.Attribute)
                and isinstance(n.target.value, ast.Name)
                and n.target.value.id == "self"
            ):
                counters.setdefault(n.target.attr, n.lineno)
    return counters


#: Function names in SL208's bulk-accounting scope: the columnar/batch
#: resolution layer's group-at-a-time functions, where a counter bump by a
#: literal constant at the top level of the function means the group size
#: was silently dropped from the accounting.
_BULK_NAME_RE = re.compile(r"column|bulk|batch|_(?:many|runs?|group)$")

#: Attribute names SL208 treats as sample/event counters in bulk scope.
_COUNTER_ATTR_RE = re.compile(
    r"hits|misses|samples|unresolved|blocked|lookups|steps|seen|written"
)


def _check_bulk_counter_bumps(tree: ast.AST, rel: str) -> list[Finding]:
    """SL208 (bulk scope): in a columnar/batch/bulk function, a counter
    attribute incremented by a literal constant *outside any loop* is an
    error — the function processes a whole group per call, so a flat
    ``+= 1`` under-counts by the group size.  Per-item bumps inside loops
    are exact and stay legal."""
    findings: list[Finding] = []
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _BULK_NAME_RE.search(fn.name):
            continue

        def scan(nodes, in_loop: bool) -> None:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs get their own pass
                if (
                    not in_loop
                    and isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Attribute)
                    and _COUNTER_ATTR_RE.search(node.target.attr)
                    and isinstance(node.value, ast.Constant)
                    and type(node.value.value) is int
                ):
                    findings.append(
                        _finding(
                            Severity.ERROR, "SL208", rel, node.lineno,
                            f"bulk function {fn.name}() bumps counter "
                            f"{node.target.attr!r} by a literal "
                            f"{node.value.value} outside any loop: scale "
                            "the bump by the group size or count per "
                            "item inside the loop",
                        )
                    )
                loops_here = in_loop or isinstance(
                    node, (ast.For, ast.AsyncFor, ast.While)
                )
                for child in ast.iter_child_nodes(node):
                    scan([child], loops_here)

        scan(fn.body, False)
    return findings


def check_counter_accounting(tree: ast.AST, rel: str) -> list[Finding]:
    """SL208: in any class with a ``merge()``, every counter field must
    be merged, and must appear in the stats-export method when the class
    has one — a counter dropped from either silently under-reports.
    Additionally, columnar/batch/bulk functions must scale top-level
    counter bumps by the group size (:func:`_check_bulk_counter_bumps`)."""
    findings: list[Finding] = _check_bulk_counter_bumps(tree, rel)
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {
            m.name: m
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        merge = methods.get("merge")
        if merge is None:
            continue
        counters = _class_counters(cls, methods)
        if not counters:
            continue
        merge_attrs = {
            a.attr for a in ast.walk(merge) if isinstance(a, ast.Attribute)
        }
        export_name = next(
            (m for m in _EXPORT_METHODS if m in methods), None
        )
        export_attrs = (
            {
                a.attr
                for a in ast.walk(methods[export_name])
                if isinstance(a, ast.Attribute)
            }
            if export_name is not None
            else None
        )
        for fld in sorted(counters):
            if fld not in merge_attrs:
                findings.append(
                    _finding(
                        Severity.ERROR, "SL208", rel, merge.lineno,
                        f"{cls.name}.merge() never touches counter "
                        f"{fld!r} (line {counters[fld]}): cross-shard "
                        "totals silently drop it",
                    )
                )
            if export_attrs is not None and fld not in export_attrs:
                findings.append(
                    _finding(
                        Severity.ERROR, "SL208", rel,
                        methods[export_name].lineno,
                        f"{cls.name}.{export_name}() omits counter "
                        f"{fld!r} (line {counters[fld]}): the exported "
                        "stats under-report",
                    )
                )
    return findings


# ======================================================================
# SL209 — fault-point coverage: registry names <-> fire() sites
# ======================================================================


def _registry():
    # Runtime import: the registry is data, and importing it here keeps
    # the linted tree and the canonical point list from drifting apart.
    from repro.faults import injector

    return injector


def collect_fire_calls(
    tree: ast.AST, rel: str
) -> tuple[dict[str, int], list[Finding]]:
    """Scan one module for ``fire(...)`` call sites.

    Returns the resolved point names (name -> first call line) plus the
    per-file findings: firing a name missing from the registry is an
    ERROR (the crash-matrix test will never exercise it), and an
    argument we cannot resolve statically is a WARNING."""
    injector = _registry()
    registered = set(injector.ALL_FAULT_POINT_NAMES) | set(
        injector.ALL_GUEST_FAULT_POINT_NAMES
    )
    fired: dict[str, int] = {}
    findings: list[Finding] = []
    for n in ast.walk(tree):
        if not isinstance(n, ast.Call):
            continue
        f = n.func
        is_fire = (isinstance(f, ast.Name) and f.id == "fire") or (
            isinstance(f, ast.Attribute) and f.attr == "fire"
        )
        if not is_fire or not n.args:
            continue
        a0 = n.args[0]
        name = None
        if isinstance(a0, ast.Constant) and isinstance(a0.value, str):
            name = a0.value
        elif isinstance(a0, ast.Name):
            name = getattr(injector, a0.id, None)
        elif isinstance(a0, ast.Attribute):
            name = getattr(injector, a0.attr, None)
        if isinstance(name, str):
            fired.setdefault(name, n.lineno)
            if name not in registered:
                findings.append(
                    _finding(
                        Severity.ERROR, "SL209", rel, n.lineno,
                        f"fire({name!r}) names no registered fault "
                        "point: the crash matrix will never exercise "
                        "this site (register it in repro.faults."
                        "injector.FAULT_POINTS or GUEST_FAULT_POINTS)",
                    )
                )
        else:
            findings.append(
                _finding(
                    Severity.WARNING, "SL209", rel, n.lineno,
                    "fire() argument cannot be resolved statically; "
                    "use a string literal or a repro.faults.injector "
                    "constant so coverage can be checked",
                )
            )
    return fired, findings


def check_fault_point_sites(
    fires_by_file: dict[str, tuple[str, dict[str, int]]]
) -> list[Finding]:
    """Cross-file half of SL209: every registered :class:`FaultPoint`
    whose declared site module was linted must actually ``fire()`` its
    name there.

    ``fires_by_file`` maps each linted file's absolute posix path to
    ``(artifact-label, fired-names)`` as collected per file."""
    injector = _registry()
    findings: list[Finding] = []
    for point in (*injector.FAULT_POINTS, *injector.GUEST_FAULT_POINTS):
        parts = point.site.split(".")
        target: tuple[str, dict[str, int]] | None = None
        for k in range(len(parts), 0, -1):
            suffix = "/" + "/".join(parts[:k]) + ".py"
            hits = sorted(
                path for path in fires_by_file if path.endswith(suffix)
            )
            if hits:
                target = fires_by_file[hits[0]]
                break
        if target is None:
            continue  # site module outside the linted roots
        rel, fired = target
        if point.name not in fired:
            findings.append(
                Finding(
                    severity=Severity.ERROR,
                    rule_id="SL209",
                    artifact=rel,
                    location=point.site,
                    message=(
                        f"registered fault point {point.name!r} is never "
                        "fire()d in its declared site module: recovery "
                        "coverage claims a crash site that does not exist"
                    ),
                )
            )
    return findings
