"""Lint baselines: record today's findings, suppress exactly them later.

A fleet rolling ``viprof lint`` out over thousands of existing sessions
cannot fix every historical finding on day one.  The baseline workflow
makes the rollout monotone instead: ``--write-baseline FILE`` records
the current findings as *known*, and later runs with ``--baseline FILE``
suppress exactly those — anything new still fails the build.

Findings are identified by a fingerprint over (rule id, artifact,
location, message) with the session directory prefix normalized to
``<session>``, so a baseline recorded against one checkout/mount point
still matches when the same sessions are linted from another path.
Severity is deliberately excluded: re-classifying a rule must not
un-suppress its recorded findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import StatCheckError
from repro.statcheck.findings import Finding, FindingReport

__all__ = [
    "BASELINE_VERSION",
    "normalize_artifact",
    "finding_fingerprint",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1

_PLACEHOLDER = "<session>"


def _prefixes(session_dirs: Sequence[Path | str]) -> list[str]:
    out: set[str] = set()
    for d in session_dirs:
        p = Path(d)
        out.add(p.as_posix())
        try:
            out.add(p.resolve().as_posix())
        except OSError:
            pass
    # Longest first, so nested session dirs match their own prefix.
    return sorted(out, key=len, reverse=True)


def normalize_artifact(
    artifact: str, session_dirs: Sequence[Path | str] = ()
) -> str:
    """Replace a finding artifact's session-dir prefix with a stable
    placeholder, so fingerprints survive the sessions moving on disk."""
    art = artifact.replace("\\", "/")
    for prefix in _prefixes(session_dirs):
        if art == prefix:
            return _PLACEHOLDER
        if art.startswith(prefix + "/"):
            return _PLACEHOLDER + art[len(prefix):]
    return art


def finding_fingerprint(
    finding: Finding, session_dirs: Sequence[Path | str] = ()
) -> str:
    """A stable content id for one finding (severity excluded)."""
    art = normalize_artifact(finding.artifact, session_dirs)
    payload = "|".join(
        (finding.rule_id, art, finding.location, finding.message)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def write_baseline(
    path: Path | str,
    report: FindingReport,
    session_dirs: Sequence[Path | str] = (),
) -> int:
    """Record the report's findings as the new baseline; returns how
    many were recorded.  The file keeps the normalized finding next to
    each fingerprint so humans can review what was waived."""
    entries = []
    seen: set[str] = set()
    for f in report.sorted():
        fp = finding_fingerprint(f, session_dirs)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule_id": f.rule_id,
                "artifact": normalize_artifact(f.artifact, session_dirs),
                "location": f.location,
                "message": f.message,
            }
        )
    doc = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path | str) -> set[str]:
    """Load a baseline file's fingerprints; typed errors on junk."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except OSError as e:
        raise StatCheckError(f"{p}: cannot read baseline: {e}") from None
    except json.JSONDecodeError as e:
        raise StatCheckError(f"{p}: baseline is not JSON: {e}") from None
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise StatCheckError(
            f"{p}: not a version-{BASELINE_VERSION} baseline file"
        )
    entries = doc.get("findings")
    if not isinstance(entries, list):
        raise StatCheckError(f"{p}: baseline 'findings' must be a list")
    fingerprints: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("fingerprint"), str
        ):
            raise StatCheckError(
                f"{p}: baseline entries need a string 'fingerprint'"
            )
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def apply_baseline(
    report: FindingReport,
    fingerprints: Iterable[str],
    session_dirs: Sequence[Path | str] = (),
) -> tuple[FindingReport, int]:
    """Drop exactly the baselined findings; returns (kept, suppressed)."""
    known = set(fingerprints)
    kept = FindingReport()
    suppressed = 0
    for f in report:
        if finding_fingerprint(f, session_dirs) in known:
            suppressed += 1
        else:
            kept.findings.append(f)
    return kept, suppressed
