"""Artifact-analyzer front end (drives ``viprof lint``).

Fleet-scale: ``viprof lint`` accepts any number of session directories
(or shell-style globs), lints them in parallel worker processes, and
keeps an incremental cache keyed by session content hash so unchanged
sessions are never re-analyzed.  Findings can be gated (``--fail-on``),
baselined (``--baseline`` / ``--write-baseline``,
:mod:`repro.statcheck.baseline`), and rendered as text, JSON, or SARIF
for CI ingestion (:mod:`repro.statcheck.sarif`).

Importable API (:func:`lint_session`, :func:`lint_sessions`) for tests
and tooling; :func:`main` backs both the ``viprof lint`` subcommand and
``python -m repro.statcheck.analyzer``.
"""

from __future__ import annotations

import argparse
import glob as _glob
import hashlib
import json
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import StatCheckError
from repro.statcheck import baseline as _baseline
from repro.statcheck.artifacts import load_session
from repro.statcheck.findings import Finding, FindingReport, Severity
from repro.statcheck.rules import all_rules, run_rules

__all__ = ["lint_session", "lint_sessions", "main"]

#: Bump to invalidate every cache entry when lint semantics change in a
#: way the rule-id key cannot see (artifact loading, finding fields...).
CACHE_SCHEMA = 1


def lint_session(
    session_dir: Path | str,
    rule_ids: Iterable[str] | None = None,
) -> FindingReport:
    """Statically verify one session directory; returns all findings."""
    return run_rules(load_session(session_dir), rule_ids=rule_ids)


# ----------------------------------------------------------------------
# fleet path: many sessions, worker processes, incremental cache
# ----------------------------------------------------------------------


def expand_session_args(patterns: Sequence[str]) -> list[Path]:
    """Expand globs and dedupe; order is the command-line order (glob
    matches sorted).  A glob matching nothing is a usage error — a fleet
    sweep silently linting zero sessions must not report success."""
    out: list[Path] = []
    seen: set[str] = set()
    for pat in patterns:
        if _glob.has_magic(pat):
            matches = sorted(p for p in _glob.glob(pat) if Path(p).is_dir())
            if not matches:
                raise StatCheckError(
                    f"{pat}: no session directories match this pattern"
                )
            candidates = [Path(m) for m in matches]
        else:
            candidates = [Path(pat)]
        for p in candidates:
            key = p.resolve().as_posix() if p.exists() else str(p)
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def _session_content_hash(session_dir: Path) -> str:
    """Content hash over every file in the session (names + bytes)."""
    h = hashlib.sha256()
    for p in sorted(session_dir.rglob("*")):
        if p.is_file():
            h.update(p.relative_to(session_dir).as_posix().encode())
            h.update(b"\0")
            h.update(p.read_bytes())
            h.update(b"\0")
    return h.hexdigest()


def _rules_cache_key(rule_ids: Iterable[str] | None) -> str:
    selected = (
        ",".join(sorted(rule_ids))
        if rule_ids is not None
        else "*" + ",".join(r.rule_id for r in all_rules())
    )
    return f"s{CACHE_SCHEMA}:{selected}"


def _load_cache(path: Path) -> dict:
    empty = {"version": CACHE_SCHEMA, "sessions": {}}
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return empty  # missing/corrupt cache: just a cold start
    if (
        not isinstance(doc, dict)
        or doc.get("version") != CACHE_SCHEMA
        or not isinstance(doc.get("sessions"), dict)
    ):
        return empty
    return doc


def _lint_session_worker(
    payload: tuple[str, tuple[str, ...] | None],
) -> list[dict]:
    """Worker entry: lint one session, return findings as plain dicts
    (picklable, and the same shape the cache stores)."""
    session_dir, rule_ids = payload
    report = lint_session(
        session_dir, rule_ids=list(rule_ids) if rule_ids else None
    )
    return [f.to_dict() for f in report]


def lint_sessions(
    session_dirs: Sequence[Path | str],
    rule_ids: Iterable[str] | None = None,
    workers: int = 1,
    cache_path: Path | str | None = None,
) -> FindingReport:
    """Lint many sessions; returns one merged report in input order.

    ``workers > 1`` fans sessions out over a process pool (fork-first,
    mirroring the shard-resolution pool in ``pipeline/parallel.py``);
    findings are merged in session order, so the output is identical to
    a sequential run.  ``cache_path`` enables the incremental cache:
    a session whose content hash and rule selection match a cached entry
    is not re-linted.
    """
    dirs = [Path(d) for d in session_dirs]
    rule_key = _rules_cache_key(rule_ids)
    rule_tuple = tuple(rule_ids) if rule_ids is not None else None

    cache: dict | None = None
    hashes: dict[int, str] = {}
    results: dict[int, list[Finding]] = {}
    if cache_path is not None:
        cache = _load_cache(Path(cache_path))
        for i, d in enumerate(dirs):
            if not d.is_dir():
                continue  # let the real load path produce the error
            h = _session_content_hash(d)
            hashes[i] = h
            entry = cache["sessions"].get(d.resolve().as_posix())
            if (
                isinstance(entry, dict)
                and entry.get("hash") == h
                and entry.get("rules") == rule_key
                and isinstance(entry.get("findings"), list)
            ):
                results[i] = [
                    Finding.from_dict(f) for f in entry["findings"]
                ]

    to_run = [i for i in range(len(dirs)) if i not in results]
    raw: dict[int, list[dict]] = {}
    if workers > 1 and len(to_run) > 1:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        ctx = multiprocessing.get_context(method)
        payloads = [(str(dirs[i]), rule_tuple) for i in to_run]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(to_run)), mp_context=ctx
        ) as pool:
            for i, dicts in zip(to_run, pool.map(_lint_session_worker, payloads)):
                raw[i] = dicts
    else:
        for i in to_run:
            raw[i] = _lint_session_worker((str(dirs[i]), rule_tuple))

    for i, dicts in raw.items():
        results[i] = [Finding.from_dict(f) for f in dicts]

    if cache is not None and cache_path is not None:
        for i in to_run:
            if i in hashes:
                cache["sessions"][dirs[i].resolve().as_posix()] = {
                    "hash": hashes[i],
                    "rules": rule_key,
                    "findings": [f.to_dict() for f in results[i]],
                }
        Path(cache_path).write_text(
            json.dumps(cache, indent=2) + "\n", encoding="utf-8"
        )

    merged = FindingReport()
    for i in range(len(dirs)):
        merged.findings.extend(results[i])
    return merged


# ----------------------------------------------------------------------
# command-line front end
# ----------------------------------------------------------------------


def _format_rule_table() -> str:
    lines = [f"{'id':<7}{'name':<22}{'severity':<9} description"]
    for r in all_rules():
        lines.append(
            f"{r.rule_id:<7}{r.name:<22}{r.severity.value:<9} "
            f"{r.description}"
        )
    return "\n".join(lines)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared by ``viprof lint`` and ``-m``)."""
    parser.add_argument(
        "session_dirs", nargs="*", metavar="SESSION", default=[],
        help="session directories or globs (live or archived)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these comma-separated rule ids (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="lint sessions in N parallel worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental cache file: sessions whose content hash is "
        "unchanged are not re-linted",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON (alias for --format json)",
    )
    parser.add_argument(
        "--fail-on", choices=[s.value for s in Severity], default="error",
        help="lowest severity that makes the exit code nonzero",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )


def _sarif_text(
    report: FindingReport, session_dirs: Sequence[Path]
) -> str:
    from repro.statcheck.sarif import report_to_sarif

    rules_meta = [
        {
            "id": r.rule_id,
            "name": r.name,
            "description": r.description,
            "severity": r.severity,
        }
        for r in all_rules()
    ]
    doc = report_to_sarif(
        report,
        "viprof-lint",
        rules_meta,
        fingerprint=lambda f: _baseline.finding_fingerprint(
            f, session_dirs
        ),
    )
    return json.dumps(doc, indent=2)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_format_rule_table())
        return 0
    if not args.session_dirs:
        print(
            "viprof lint: at least one session dir (or glob) is "
            "required unless --list-rules",
            file=sys.stderr,
        )
        return 2
    rule_ids = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rule_ids:
            print(
                "viprof lint: --rules given but no rule ids named",
                file=sys.stderr,
            )
            return 2
    if args.workers < 1:
        print("viprof lint: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        dirs = expand_session_args(args.session_dirs)
        report = lint_sessions(
            dirs,
            rule_ids=rule_ids,
            workers=args.workers,
            cache_path=args.cache,
        )
    except StatCheckError as e:
        print(f"viprof lint: {e}", file=sys.stderr)
        return 2

    if args.write_baseline:
        n = _baseline.write_baseline(args.write_baseline, report, dirs)
        print(
            f"baseline: recorded {n} finding(s) to {args.write_baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            fingerprints = _baseline.load_baseline(args.baseline)
        except StatCheckError as e:
            print(f"viprof lint: {e}", file=sys.stderr)
            return 2
        report, suppressed = _baseline.apply_baseline(
            report, fingerprints, dirs
        )

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report.format_json())
    elif fmt == "sarif":
        print(_sarif_text(report, dirs))
    else:
        print(report.format_text())
        if suppressed:
            print(f"{suppressed} baselined finding(s) suppressed")
    return report.exit_code(fail_on=Severity(args.fail_on))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="viprof lint",
        description="statically verify VIProf sessions' profile "
        "artifacts (code maps, sample files, metadata) — accepts many "
        "sessions, parallel workers, an incremental cache, baselines, "
        "and SARIF output",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
