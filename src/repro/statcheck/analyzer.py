"""Artifact-analyzer front end (drives ``viprof lint``).

Loads a session directory's artifacts, runs the registered rules, and
renders the findings.  Importable API (:func:`lint_session`) for tests
and tooling; :func:`main` backs both the ``viprof lint`` subcommand and
``python -m repro.statcheck.analyzer``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable

from repro.errors import StatCheckError
from repro.statcheck.artifacts import load_session
from repro.statcheck.findings import FindingReport, Severity
from repro.statcheck.rules import all_rules, run_rules

__all__ = ["lint_session", "main"]


def lint_session(
    session_dir: Path | str,
    rule_ids: Iterable[str] | None = None,
) -> FindingReport:
    """Statically verify one session directory; returns all findings."""
    return run_rules(load_session(session_dir), rule_ids=rule_ids)


def _format_rule_table() -> str:
    lines = [f"{'id':<7}{'name':<22}{'severity':<9} description"]
    for r in all_rules():
        lines.append(
            f"{r.rule_id:<7}{r.name:<22}{r.severity.value:<9} "
            f"{r.description}"
        )
    return "\n".join(lines)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared by ``viprof lint`` and ``-m``)."""
    parser.add_argument(
        "session_dir", nargs="?", default=None,
        help="session directory (live or archived)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these comma-separated rule ids (default: all)",
    )
    parser.add_argument(
        "--fail-on", choices=[s.value for s in Severity], default="error",
        help="lowest severity that makes the exit code nonzero",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_format_rule_table())
        return 0
    if args.session_dir is None:
        print(
            "viprof lint: session_dir is required unless --list-rules",
            file=sys.stderr,
        )
        return 2
    rule_ids = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rule_ids:
            print(
                "viprof lint: --rules given but no rule ids named",
                file=sys.stderr,
            )
            return 2
    try:
        report = lint_session(args.session_dir, rule_ids=rule_ids)
    except StatCheckError as e:
        print(f"viprof lint: {e}", file=sys.stderr)
        return 2
    print(report.format_json() if args.json else report.format_text())
    return report.exit_code(fail_on=Severity(args.fail_on))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="viprof lint",
        description="statically verify a VIProf session's profile "
        "artifacts (code maps, sample files, metadata)",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
