"""Tolerant loading of a session directory's profile artifacts.

The analyzer must be able to *look at* corrupt artifacts — that is its
whole point — so this loader deliberately bypasses the strict validation
the runtime classes perform (``CodeMap`` rejects overlapping records at
construction; here an overlap must surface as a finding, not an
exception).  Parse failures that make an artifact unreadable are demoted
to ``VP100`` findings so one rotten file never hides the findings in the
rest of the session.

Understood layouts (live session dirs and ``SessionStore`` archives)::

    <session>/jit-maps/jit-map.NNNNN    per-epoch partial code maps
    <session>/samples/<EVENT>.samples   packed sample files
    <session>/meta.json                 archive metadata (optional)
    <session>/salvage.json              crash-recovery manifest (optional,
                                        written by ``viprof recover``)
    <session>/*/quarantine/             artifacts salvage set aside
    <session>/dom<N>/                   fleet sessions only: one complete
                                        sub-session per guest domain
                                        (loaded recursively)

The salvage manifest is loaded as a raw dict (``SessionArtifacts.salvage``)
so the VP107–VP109 rules can validate its *structure* as well as its
claims; a session that was never salvaged has ``salvage is None``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CodeMapError, SampleFormatError, StatCheckError
from repro.jvm.bootimage import RvmMap, build_boot_image
from repro.profiling.model import RawSample
from repro.profiling.record_codec import open_sample_record_file
from repro.statcheck.findings import Finding, FindingReport, Severity
from repro.viprof.codemap import CodeMapRecord
from repro.viprof.runtime_profiler import VmRegistration

__all__ = [
    "RULE_MALFORMED",
    "EpochMapArtifact",
    "SampleArtifact",
    "SessionArtifacts",
    "load_session",
]

#: Rule id for artifacts that could not be parsed at all.
RULE_MALFORMED = "VP100"

MAP_DIR_NAME = "jit-maps"
SAMPLE_DIR_NAME = "samples"
META_NAME = "meta.json"
SALVAGE_NAME = "salvage.json"
QUARANTINE_DIR_NAME = "quarantine"

_MAP_FILE_RE = re.compile(r"^jit-map\.(\d{5})$")
_MAP_HEADER_RE = re.compile(r"^# viprof code map epoch (\d+)$")
_DOMAIN_DIR_RE = re.compile(r"^dom(\d+)$")


@dataclass(frozen=True, slots=True)
class EpochMapArtifact:
    """One epoch's code-map file, loaded without well-formedness checks."""

    epoch: int
    path: Path
    records: tuple[CodeMapRecord, ...]


@dataclass(frozen=True, slots=True)
class SampleArtifact:
    """One packed sample file, fully decoded.

    ``domain_ids`` carries the per-record domain tags of the XenoProf
    (``XPRS``) format, aligned with ``samples``; it is None for the core
    ``VPRS`` format, which has no domain column.
    """

    path: Path
    event_name: str
    period: int
    samples: tuple[RawSample, ...]
    domain_ids: tuple[int, ...] | None = None


@dataclass
class SessionArtifacts:
    """Everything the artifact rules inspect, plus load-time findings."""

    session_dir: Path
    maps: dict[int, EpochMapArtifact] = field(default_factory=dict)
    sample_files: tuple[SampleArtifact, ...] = ()
    meta: dict | None = None
    registration: VmRegistration | None = None
    boot_map: RvmMap | None = None
    salvage: dict | None = None
    #: A multi-domain (fleet) session root holds one complete sub-session
    #: per guest under ``dom<N>/``; single-stack sessions leave this empty.
    domains: dict[int, "SessionArtifacts"] = field(default_factory=dict)
    load_findings: list[Finding] = field(default_factory=list)

    @property
    def epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self.maps))

    @property
    def quarantined_epochs(self) -> tuple[int, ...]:
        """Epochs the salvage manifest fenced off (empty when the session
        was never salvaged or the manifest is malformed — VP107 reports
        the latter)."""
        if not isinstance(self.salvage, dict):
            return ()
        q = self.salvage.get("quarantined_epochs")
        if not isinstance(q, list):
            return ()
        return tuple(e for e in q if isinstance(e, int))

    def map_label(self, epoch: int) -> str:
        """Artifact label for findings against one epoch's map."""
        art = self.maps.get(epoch)
        return str(art.path) if art is not None else f"epoch-{epoch}"


def _load_map_file(
    path: Path, report: FindingReport
) -> EpochMapArtifact | None:
    """Parse one map file leniently; bad lines become VP100 findings."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        report.add(
            Severity.ERROR, RULE_MALFORMED, str(path), "-",
            f"unreadable map file: {e}",
        )
        return None
    if not lines or _MAP_HEADER_RE.match(lines[0]) is None:
        report.add(
            Severity.ERROR, RULE_MALFORMED, str(path), "line 1",
            f"bad or missing map header: {lines[0]!r}" if lines
            else "empty map file",
        )
        return None
    epoch = int(_MAP_HEADER_RE.match(lines[0]).group(1))
    m = _MAP_FILE_RE.match(path.name)
    if m is not None and int(m.group(1)) != epoch:
        report.add(
            Severity.ERROR, RULE_MALFORMED, str(path), "line 1",
            f"filename epoch {int(m.group(1))} != header epoch {epoch}",
        )
    records: list[CodeMapRecord] = []
    for lineno, ln in enumerate(lines[1:], start=2):
        if not ln.strip():
            continue
        try:
            records.append(CodeMapRecord.from_line(ln))
        except CodeMapError as e:
            report.add(
                Severity.ERROR, RULE_MALFORMED, str(path),
                f"line {lineno}", str(e),
            )
    return EpochMapArtifact(epoch=epoch, path=path, records=tuple(records))


def load_session(session_dir: Path | str) -> SessionArtifacts:
    """Load every artifact the rules need; never raises on *corrupt* data.

    Raises:
        StatCheckError: if ``session_dir`` is not a session directory at
            all (missing, or contains none of the expected artifacts).
    """
    session_dir = Path(session_dir)
    if not session_dir.is_dir():
        raise StatCheckError(f"{session_dir}: not a directory")
    map_dir = session_dir / MAP_DIR_NAME
    sample_dir = session_dir / SAMPLE_DIR_NAME
    meta_path = session_dir / META_NAME
    if not map_dir.is_dir() and not sample_dir.is_dir() \
            and not meta_path.is_file():
        raise StatCheckError(
            f"{session_dir}: no {MAP_DIR_NAME}/, {SAMPLE_DIR_NAME}/ or "
            f"{META_NAME} — not a VIProf session directory"
        )

    report = FindingReport()
    arts = SessionArtifacts(session_dir=session_dir)

    if map_dir.is_dir():
        for path in sorted(map_dir.iterdir()):
            if _MAP_FILE_RE.match(path.name) is None:
                continue
            art = _load_map_file(path, report)
            if art is None:
                continue
            if art.epoch in arts.maps:
                report.add(
                    Severity.ERROR, RULE_MALFORMED, str(path), "line 1",
                    f"duplicate map for epoch {art.epoch} "
                    f"(first seen in {arts.maps[art.epoch].path.name})",
                )
                continue
            arts.maps[art.epoch] = art

    if sample_dir.is_dir():
        sample_files: list[SampleArtifact] = []
        for path in sorted(sample_dir.glob("*.samples")):
            try:
                # Magic-sniffing reader: live sessions write the core
                # format, Xen archives the domain-tagged one; the rules
                # inspect the core record either way, and the domain
                # column (when present) feeds the fleet-isolation rule.
                with open_sample_record_file(path) as reader:
                    records = tuple(reader)
                    sample_files.append(
                        SampleArtifact(
                            path=path,
                            event_name=reader.event_name,
                            period=reader.period,
                            samples=tuple(r.sample for r in records),
                            domain_ids=(
                                tuple(r.domain_id for r in records)
                                if reader.codec.has_domain
                                else None
                            ),
                        )
                    )
            except SampleFormatError as e:
                report.add(
                    Severity.ERROR, RULE_MALFORMED, str(path), "-", str(e)
                )
        arts.sample_files = tuple(sample_files)

    if meta_path.is_file():
        try:
            arts.meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            report.add(
                Severity.ERROR, RULE_MALFORMED, str(meta_path), "-",
                f"unreadable metadata: {e}",
            )
    if arts.meta is not None:
        reg = arts.meta.get("registration")
        if isinstance(reg, dict):
            try:
                arts.registration = VmRegistration(
                    task_id=int(reg["task_id"]),
                    heap_low=int(reg["heap_low"]),
                    heap_high=int(reg["heap_high"]),
                )
            except (KeyError, TypeError, ValueError):
                report.add(
                    Severity.ERROR, RULE_MALFORMED, str(meta_path),
                    "registration",
                    f"bad VM registration record: {reg!r}",
                )

    salvage_path = session_dir / SALVAGE_NAME
    if salvage_path.is_file():
        try:
            arts.salvage = json.loads(
                salvage_path.read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as e:
            report.add(
                Severity.ERROR, RULE_MALFORMED, str(salvage_path), "-",
                f"unreadable salvage manifest: {e}",
            )

    # A fleet session root carries one complete sub-session per guest
    # domain under dom<N>/; load each recursively so the cross-domain
    # isolation rule (VP112) can compare them against the root stream.
    # Their load-time findings propagate — a rotten artifact in a domain
    # sub-session must not pass silently just because the lint ran at
    # the fleet root.
    for sub_dir in sorted(session_dir.iterdir()):
        m = _DOMAIN_DIR_RE.match(sub_dir.name)
        if m is None or not sub_dir.is_dir():
            continue
        try:
            sub = load_session(sub_dir)
        except StatCheckError as e:
            report.add(
                Severity.ERROR, RULE_MALFORMED, str(sub_dir), "-",
                f"dom directory is not a session: {e}",
            )
            continue
        arts.domains[int(m.group(1))] = sub
        report.extend(sub.load_findings)

    arts.boot_map = build_boot_image().rvm_map
    arts.load_findings = list(report)
    return arts
