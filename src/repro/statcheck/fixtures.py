"""Deterministic lint-fixture sessions (clean + seeded corruptions).

Tests and CI need sessions whose ground truth is known *by construction*:
one clean session the analyzer must pass, and six sessions each seeded
with exactly one corruption the analyzer must catch under the right rule
id.  Building them here — instead of checking in opaque artifacts or
running the whole simulator — keeps the fixtures readable, regenerable,
and independent of engine behaviour.

Usage::

    python -m repro.statcheck.fixtures DEST      # write all six sessions
    python -m repro.statcheck.fixtures --selftest  # generate + verify
    python -m repro.statcheck.fixtures --damaged DEST  # salvaged session
    python -m repro.statcheck.fixtures --fleet-damaged DEST  # 2-domain
                                                 # salvaged fleet session

The session shape mirrors a real (tiny) run: three epochs of partial
code maps with a compile, two GC moves, address reuse, and a sample file
whose heap samples all resolve via the paper's backward walk.

The *damaged* fixture starts from the clean shape, applies two
deterministic injuries (a sample file cut mid-record, one code map torn
inside a hex field) and then runs ``salvage_session`` over the wreck, so
the checked-in copy carries a real ``salvage.json`` and quarantine
directory for the VP107–VP109 rules to validate.  It must lint with no
findings above INFO: the damage is fully accounted for by the manifest.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.errors import CodeMapError, StatCheckError
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileWriter
from repro.statcheck.findings import Severity
from repro.viprof.arena import build_arena
from repro.viprof.codemap import CodeMapRecord, CodeMapWriter

__all__ = [
    "CORRUPTIONS",
    "EXPECTED_RULE",
    "FLEET_CORRUPTIONS",
    "write_fixture_session",
    "write_all_fixtures",
    "write_damaged_fixture_session",
    "write_fleet_fixture_session",
    "write_fleet_damaged_fixture_session",
    "main",
]

#: Corruption names, each tripping exactly one rule.
CORRUPTIONS = (
    "overlap",
    "epoch-gap",
    "orphan",
    "signature-collision",
    "stale-moved",
    "stale-arena",
)

#: Which rule id each corruption must be reported under.
EXPECTED_RULE = {
    "overlap": "VP101",
    "epoch-gap": "VP102",
    "orphan": "VP103",
    "signature-collision": "VP104",
    "stale-moved": "VP105",
    "stale-arena": "VP111",
}

_TASK_ID = 42
_HEAP_LOW = 0x6080_0000
_HEAP_HIGH = 0x6200_0000
_EVENT = "GLOBAL_POWER_EVENTS"
_PERIOD = 90_000

#: A boot-image symbol (see repro.jvm.bootimage) used to seed the
#: signature-collision corruption.
_BOOT_SYMBOL = "org.mmtk.plan.CopySpace.traceObject"


def _rec(
    addr: int, size: int, name: str, tier: str = "base", moved: bool = False
) -> CodeMapRecord:
    return CodeMapRecord(
        address=addr, size=size, tier=tier, name=name, moved=moved
    )


def write_fixture_session(
    dest: Path | str, corruption: str | None = None, batch: bool = False
) -> Path:
    """Write one fixture session into ``dest`` (created, must not exist).

    ``corruption=None`` writes the clean session; otherwise one of
    :data:`CORRUPTIONS` is seeded on top of the clean shape.
    ``batch=True`` emits the sample file through the batched write path
    (``write_batch``) instead of per-record ``write`` — the sample bytes
    are identical either way (that is the batching contract), and the
    session's ``meta.json`` records which path produced it.
    """
    if corruption is not None and corruption not in CORRUPTIONS:
        raise StatCheckError(
            f"unknown corruption {corruption!r} "
            f"(known: {', '.join(CORRUPTIONS)})"
        )
    dest = Path(dest)
    if dest.exists():
        raise StatCheckError(f"{dest}: already exists")
    dest.mkdir(parents=True)

    # --- epoch code maps ---------------------------------------------
    # Epoch 0: A and B compiled.  The GC closing epoch 0 moves A.
    # Epoch 1: A's post-move home (moved flag) + C compiled.  The GC
    #          closing epoch 1 moves B.
    # Epoch 2: B's post-move home (moved flag) + D compiled.
    epoch0 = [
        _rec(0x6080_1000, 0x200, "fixture.app.Alpha.run"),
        _rec(0x6080_2000, 0x300, "fixture.app.Beta.step"),
    ]
    epoch1 = [
        _rec(0x6081_0000, 0x200, "fixture.app.Alpha.run", moved=True),
        _rec(0x6080_4000, 0x100, "fixture.app.Gamma.scan", tier="O1"),
    ]
    epoch2 = [
        _rec(0x6081_4000, 0x300, "fixture.app.Beta.step", moved=True),
        _rec(0x6080_6000, 0x180, "fixture.app.Delta.emit", tier="O1"),
    ]

    if corruption == "overlap":
        epoch1.append(
            _rec(0x6081_0080, 0x100, "fixture.app.Evil.clobber")
        )
    if corruption == "signature-collision":
        epoch2 = [
            _rec(0x6081_4000, 0x300, "fixture.app.Beta.step", moved=True),
            _rec(0x6080_6000, 0x180, _BOOT_SYMBOL, tier="O1"),
        ]
    if corruption == "stale-moved":
        epoch2.append(
            _rec(0x6081_8000, 0x100, "fixture.app.Ghost.phantom",
                 moved=True)
        )

    last_epoch = 3 if corruption == "epoch-gap" else 2
    writer = CodeMapWriter(dest / "jit-maps")
    writer.write(0, epoch0)
    writer.write(1, epoch1)
    writer.write(last_epoch, epoch2)

    # Compile the zero-copy arena the way a real session teardown would,
    # so the fixtures exercise VP111 and the arena-backed loader.  The
    # overlap corruption cannot compile (the strict loader rejects it —
    # exactly the production behaviour), so that session ships text-only.
    try:
        build_arena(dest / "jit-maps")
    except CodeMapError:
        pass

    if corruption == "stale-arena":
        # Tamper *after* compiling: a harmless extra record (disjoint,
        # unique name, not moved, never sampled) drifts the map file out
        # from under the arena's recorded digests without waking any
        # other rule.  Loaders fall back to text; VP111 flags the drift.
        extra = _rec(0x6081_8000, 0x100, "fixture.app.Extra.late")
        with open(
            writer.path_for(last_epoch), "a", encoding="utf-8"
        ) as fh:
            fh.write(extra.to_line() + "\n")

    # --- samples ------------------------------------------------------
    def s(pc: int, cycle: int, epoch: int, kernel: bool = False) -> RawSample:
        return RawSample(
            pc=pc, event_name=_EVENT, task_id=_TASK_ID,
            kernel_mode=kernel, cycle=cycle, epoch=epoch,
        )

    samples = [
        s(0x6080_1010, 1_000, 0),            # A, own epoch
        s(0x6080_2040, 2_000, 0),            # B, own epoch
        s(0x6081_0010, 3_000, 1),            # A post-move, own epoch
        s(0x6080_2040, 3_500, 1),            # B, one epoch back
        s(0xC000_1000, 4_000, 1, kernel=True),
        s(0x6080_6010, 5_000, last_epoch),   # D, own epoch
        s(0x6081_4020, 5_500, last_epoch),   # B post-move, own epoch
    ]
    if corruption == "orphan":
        samples.append(s(0x61F0_0000, 6_000, 2))  # mapped in no epoch

    sample_dir = dest / "samples"
    sample_dir.mkdir()
    with SampleFileWriter(
        sample_dir / f"{_EVENT}.samples", _EVENT, _PERIOD
    ) as w:
        if batch:
            w.write_batch(samples)
        else:
            for sample in samples:
                w.write(sample)

    # --- metadata -----------------------------------------------------
    meta = {
        "benchmark": "fixture",
        "mode": "viprof",
        "period": _PERIOD,
        "seed": 7,
        "time_scale": 0.1,
        "wall_cycles": 10_000,
        "write_path": "batched" if batch else "per-record",
        "registration": {
            "task_id": _TASK_ID,
            "heap_low": _HEAP_LOW,
            "heap_high": _HEAP_HIGH,
        },
    }
    (dest / "meta.json").write_text(json.dumps(meta, indent=2))
    return dest


#: How many bytes the damaged fixture chops off its sample file.  Must
#: be a strict sub-record amount (the core record is 29 bytes) so the
#: cut lands *inside* the final record and salvage must truncate.
_DAMAGE_CHOP_BYTES = 10


def write_damaged_fixture_session(dest: Path | str) -> Path:
    """Write the clean session, injure it deterministically, salvage it.

    Injuries (mirroring the fault-injection crash shapes):

    * the sample file loses its last :data:`_DAMAGE_CHOP_BYTES` bytes —
      a torn final record, as a crash between watermark spill and flush
      would leave;
    * the epoch-1 code map is cut three characters into its first record
      line (``0x6``…), as a crash mid ``CodeMapWriter.write`` would
      leave.

    ``salvage_session`` then truncates the sample file at the last whole
    record, quarantines the torn map, and writes ``salvage.json`` with
    ``quarantined_epochs == (1,)``.  The result lints with nothing above
    INFO severity.
    """
    from repro.viprof.salvage import salvage_session

    dest = write_fixture_session(dest)

    sample_path = dest / "samples" / f"{_EVENT}.samples"
    data = sample_path.read_bytes()
    sample_path.write_bytes(data[: -_DAMAGE_CHOP_BYTES])

    map_path = dest / "jit-maps" / "jit-map.00001"
    text = map_path.read_text(encoding="utf-8")
    header, _, body = text.partition("\n")
    map_path.write_text(header + "\n" + body[:3], encoding="utf-8")

    salvage_session(dest)

    # Make the checked-in copy machine-independent: the manifest's
    # free-text reasons embed the absolute session path at salvage time.
    manifest_path = dest / "salvage.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for entry in manifest["maps"] + manifest["sample_files"]:
        if isinstance(entry.get("reason"), str):
            entry["reason"] = (
                entry["reason"]
                .replace(str(dest.resolve()), ".")
                .replace(str(dest), ".")
            )
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return dest


#: Fleet corruptions, each tripping the cross-domain rule (VP112) at the
#: session root and nothing else there.
FLEET_CORRUPTIONS = ("tag-leak", "quarantine-leak")

#: The guest domains of the fleet fixture (dom0 is the hypervisor's).
_FLEET_DOMAINS = (1, 2)


def _xenoize_domain_session(
    dom_dir: Path, domain_id: int
) -> list[tuple[RawSample, int]]:
    """Rewrite one fixture sub-session's sample file in the domain-tagged
    ``XPRS`` format (what XenoProf's daemon writes) and return the tagged
    records for the root stream."""
    from repro.profiling.record_codec import (
        DOMAIN_CODEC,
        RecordFileWriter,
        open_sample_record_file,
    )

    old = dom_dir / "samples" / f"{_EVENT}.samples"
    with open_sample_record_file(old) as reader:
        samples = [r.sample for r in reader]
    old.unlink()
    path = dom_dir / "samples" / f"xenoprof.{_EVENT}.samples"
    with RecordFileWriter(path, DOMAIN_CODEC, _EVENT, _PERIOD) as w:
        for s in samples:
            w.write(s, domain_id=domain_id)
    return [(s, domain_id) for s in samples]


def _injure_and_salvage_domain(dom_dir: Path) -> None:
    """Tear one domain's newest-but-one code map (the shape a killed
    guest leaves) and salvage its sub-session, manifest made
    machine-independent like the single-stack damaged fixture."""
    from repro.viprof.salvage import salvage_session

    map_path = dom_dir / "jit-maps" / "jit-map.00001"
    text = map_path.read_text(encoding="utf-8")
    header, _, body = text.partition("\n")
    map_path.write_text(header + "\n" + body[:3], encoding="utf-8")
    salvage_session(dom_dir)

    manifest_path = dom_dir / "salvage.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for entry in manifest["maps"] + manifest["sample_files"]:
        if isinstance(entry.get("reason"), str):
            entry["reason"] = (
                entry["reason"]
                .replace(str(dom_dir.resolve()), ".")
                .replace(str(dom_dir), ".")
            )
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def write_fleet_fixture_session(
    dest: Path | str, corruption: str | None = None
) -> Path:
    """Write a two-domain fleet fixture session into ``dest``.

    The layout mirrors ``MultiStackResult.save_fleet_session``: a root
    ``samples/`` stream holding every domain's records (domain-tagged,
    interleaved by cycle) plus one complete sub-session per guest under
    ``dom<N>/`` whose records partition the root exactly.  Each
    sub-session is the clean single-stack fixture shape, so it lints
    clean on its own and the cross-domain rule (VP112) has known ground
    truth at the root.

    Corruptions (:data:`FLEET_CORRUPTIONS`):

    * ``tag-leak`` — one record in dom2's file is retagged dom1: one
      guest's stream bled into another's sub-session;
    * ``quarantine-leak`` — dom1 is legitimately damaged and salvaged,
      then its ``salvage.json`` is copied onto healthy dom2: dom2 now
      quarantines an epoch its own healthy map contradicts.
    """
    from repro.profiling.record_codec import (
        DOMAIN_CODEC,
        RecordFileWriter,
        open_sample_record_file,
    )

    if corruption is not None and corruption not in FLEET_CORRUPTIONS:
        raise StatCheckError(
            f"unknown fleet corruption {corruption!r} "
            f"(known: {', '.join(FLEET_CORRUPTIONS)})"
        )
    dest = Path(dest)
    if dest.exists():
        raise StatCheckError(f"{dest}: already exists")
    dest.mkdir(parents=True)

    tagged: list[tuple[RawSample, int]] = []
    for did in _FLEET_DOMAINS:
        write_fixture_session(dest / f"dom{did}")
        tagged += _xenoize_domain_session(dest / f"dom{did}", did)
    # Buffer order: by cycle, domain id breaking the fixture's exact
    # ties.  Per-domain cycles are increasing, so each domain's
    # subsequence of the root equals its own file — an exact partition.
    tagged.sort(key=lambda pair: (pair[0].cycle, pair[1]))

    root_dir = dest / "samples"
    root_dir.mkdir()
    with RecordFileWriter(
        root_dir / f"xenoprof.{_EVENT}.samples", DOMAIN_CODEC, _EVENT,
        _PERIOD,
    ) as w:
        for s, t in tagged:
            w.write(s, domain_id=t)

    (dest / "meta.json").write_text(
        json.dumps(
            {
                "benchmark": "fleet-fixture",
                "mode": "xenoprof",
                "period": _PERIOD,
                "domains": list(_FLEET_DOMAINS),
            },
            indent=2,
        )
    )

    if corruption == "tag-leak":
        path = dest / "dom2" / "samples" / f"xenoprof.{_EVENT}.samples"
        with open_sample_record_file(path) as reader:
            samples = [r.sample for r in reader]
        path.unlink()
        with RecordFileWriter(path, DOMAIN_CODEC, _EVENT, _PERIOD) as w:
            for i, s in enumerate(samples):
                w.write(s, domain_id=1 if i == len(samples) - 1 else 2)
    elif corruption == "quarantine-leak":
        _injure_and_salvage_domain(dest / "dom1")
        shutil.copyfile(
            dest / "dom1" / "salvage.json", dest / "dom2" / "salvage.json"
        )
    return dest


def write_fleet_damaged_fixture_session(dest: Path | str) -> Path:
    """The checked-in multi-domain damaged shape: dom1 torn and salvaged
    (quarantined epoch, manifest), dom2 healthy, root stream intact.
    Must lint with nothing above INFO at the root *and* in each
    sub-session: one guest's damage is fully accounted for by its own
    manifest and never leaks into the sibling's accounting."""
    dest = write_fleet_fixture_session(dest)
    _injure_and_salvage_domain(dest / "dom1")
    return dest


def write_all_fixtures(dest: Path | str, batch: bool = False) -> dict[str, Path]:
    """Write ``clean/`` plus one directory per corruption under ``dest``."""
    dest = Path(dest)
    out = {"clean": write_fixture_session(dest / "clean", batch=batch)}
    for c in CORRUPTIONS:
        out[c] = write_fixture_session(dest / c, corruption=c, batch=batch)
    return out


def selftest() -> int:
    """Generate every fixture and verify the analyzer's verdicts."""
    from repro.statcheck.analyzer import lint_session

    tmp = Path(tempfile.mkdtemp(prefix="viprof-lint-fixtures-"))
    failures: list[str] = []
    try:
        sessions = write_all_fixtures(tmp)
        clean = lint_session(sessions["clean"])
        if clean.exit_code() != 0 or len(clean) != 0:
            failures.append(
                f"clean session not clean:\n{clean.format_text()}"
            )
        for c in CORRUPTIONS:
            expected = EXPECTED_RULE[c]
            report = lint_session(sessions[c])
            if not report.by_rule(expected):
                failures.append(
                    f"{c}: rule {expected} not triggered:\n"
                    f"{report.format_text()}"
                )
            unexpected = [r for r in report.rule_ids if r != expected]
            if unexpected:
                failures.append(
                    f"{c}: unexpected rules {unexpected}:\n"
                    f"{report.format_text()}"
                )
            if report.exit_code(fail_on=Severity.WARNING) == 0:
                failures.append(f"{c}: analyzer exit code was 0")
        damaged = write_damaged_fixture_session(tmp / "damaged")
        report = lint_session(damaged)
        if report.exit_code(fail_on=Severity.WARNING) != 0:
            failures.append(
                "damaged session has unaccounted damage:\n"
                f"{report.format_text()}"
            )
        if not (damaged / "salvage.json").is_file():
            failures.append("damaged session has no salvage manifest")

        # Fleet fixtures: clean and damaged-but-salvaged lint clean at
        # the root and per sub-session; each corruption trips exactly
        # the cross-domain rule at the root.
        for name, writer in (
            ("fleet-clean", write_fleet_fixture_session),
            ("fleet-damaged", write_fleet_damaged_fixture_session),
        ):
            root = writer(tmp / name)
            for d in (root, *(root / f"dom{n}" for n in _FLEET_DOMAINS)):
                report = lint_session(d)
                if report.exit_code(fail_on=Severity.WARNING) != 0:
                    failures.append(
                        f"{name}: {d.name} not clean:\n"
                        f"{report.format_text()}"
                    )
        for c in FLEET_CORRUPTIONS:
            root = write_fleet_fixture_session(tmp / f"fleet-{c}", c)
            report = lint_session(root)
            if not report.by_rule("VP112"):
                failures.append(
                    f"fleet {c}: VP112 not triggered:\n"
                    f"{report.format_text()}"
                )
            unexpected = [r for r in report.rule_ids if r != "VP112"]
            if unexpected:
                failures.append(
                    f"fleet {c}: unexpected rules {unexpected}:\n"
                    f"{report.format_text()}"
                )
            if report.exit_code(fail_on=Severity.WARNING) == 0:
                failures.append(f"fleet {c}: analyzer exit code was 0")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if failures:
        print("\n\n".join(failures), file=sys.stderr)
        return 1
    print(f"fixture selftest ok: clean + {len(CORRUPTIONS)} corruptions "
          f"+ fleet (clean, damaged, {len(FLEET_CORRUPTIONS)} corruptions) "
          "verified")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck.fixtures",
        description="generate (or verify) lint fixture sessions",
    )
    parser.add_argument(
        "dest", nargs="?", default=None,
        help="directory to write the fixture sessions into",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="generate into a temp dir, lint, verify verdicts, clean up",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="emit sample files through the batched write path",
    )
    parser.add_argument(
        "--damaged", action="store_true",
        help="write only the damaged-and-salvaged session into dest",
    )
    parser.add_argument(
        "--fleet-damaged", action="store_true",
        help="write only the damaged-and-salvaged two-domain fleet "
        "session into dest",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    if args.dest is None:
        parser.error("dest is required unless --selftest")
    if args.damaged:
        print(f"{'damaged':<22} {write_damaged_fixture_session(args.dest)}")
        return 0
    if args.fleet_damaged:
        print(
            f"{'fleet-damaged':<22} "
            f"{write_fleet_damaged_fixture_session(args.dest)}"
        )
        return 0
    sessions = write_all_fixtures(args.dest, batch=args.batch)
    for name, path in sessions.items():
        print(f"{name:<22} {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
