"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is the one format CI
platforms ingest natively — code-scanning annotations, artifact upload,
cross-run result tracking — so both lint front ends (``viprof lint``
and the source selflint) can emit it via ``--format sarif``.  Only the
small stable core of the spec is produced: one run, the tool's rule
catalog, and one result per finding with a physical location and an
optional stable fingerprint for baseline-style dedup on the CI side.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

from repro.statcheck.findings import Finding, FindingReport, Severity

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "report_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF result levels per severity (SARIF has no "info" level).
_LEVEL = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

_LINE_RE = re.compile(r"\bline (\d+)\b")


def _result(
    finding: Finding,
    rule_index: dict[str, int],
    fingerprint: Callable[[Finding], str] | None,
) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.artifact.replace("\\", "/")}
        }
    }
    message = finding.message
    m = _LINE_RE.search(finding.location)
    if m:
        location["physicalLocation"]["region"] = {
            "startLine": int(m.group(1))
        }
    elif finding.location not in ("", "-"):
        # Free-form locations (epoch, record index, dotted site) have no
        # physical region; keep them visible in the message instead.
        message = f"{finding.location}: {message}"
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVEL[finding.severity],
        "message": {"text": message},
        "locations": [location],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if fingerprint is not None:
        result["partialFingerprints"] = {
            "viprofFingerprint/v1": fingerprint(finding)
        }
    return result


def report_to_sarif(
    report: FindingReport,
    tool_name: str,
    rules_meta: Iterable[dict],
    fingerprint: Callable[[Finding], str] | None = None,
) -> dict:
    """Render a report as a SARIF 2.1.0 log (a JSON-serializable dict).

    ``rules_meta`` describes the tool's rule catalog: dicts with ``id``,
    ``name``, ``description`` and a default :class:`Severity`.
    ``fingerprint``, when given, stamps each result with a stable
    partial fingerprint (the same one ``--baseline`` files use)."""
    driver_rules = []
    rule_index: dict[str, int] = {}
    for meta in rules_meta:
        rule_index[meta["id"]] = len(driver_rules)
        driver_rules.append(
            {
                "id": meta["id"],
                "name": meta["name"],
                "shortDescription": {"text": meta["description"]},
                "defaultConfiguration": {
                    "level": _LEVEL[meta["severity"]]
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": driver_rules,
                    }
                },
                "results": [
                    _result(f, rule_index, fingerprint)
                    for f in report.sorted()
                ],
            }
        ],
    }
