"""Repo-invariant source lint (``python -m repro.statcheck.selflint``).

An ``ast``-based pass over our own sources enforcing invariants that
general-purpose linters cannot know:

SL201  int-address          Addresses, PCs, offsets, sizes, epochs and
                            cycle counts are exact machine quantities —
                            annotating or defaulting one as ``float``
                            invites rounding a PC.
SL202  errors-hierarchy     Every exception raised inside ``repro.*``
                            derives from :mod:`repro.errors`, so callers
                            can catch ``ReproError`` at API boundaries.
SL203  no-naked-except      ``except:`` swallows ``KeyboardInterrupt``
                            and hides simulator bugs.
SL204  public-annotations   Public functions in ``repro/viprof/`` and
                            ``repro/profiling/`` are the paper-facing
                            API; they carry full type annotations.

Findings reuse :mod:`repro.statcheck.findings`; exit code 1 when any
ERROR-severity finding exists, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator

import repro.errors as _errors
from repro.errors import StatCheckError
from repro.statcheck.findings import Finding, FindingReport, Severity

__all__ = ["lint_source", "lint_tree", "main"]

#: Identifier segments that denote exact machine quantities (SL201).
_INT_SEGMENTS = {
    "addr", "address", "pc", "offset", "size", "start", "end",
    "epoch", "cycle", "cycles",
}

#: Exception names that may be raised without deriving from repro.errors:
#: Python protocol obligations (``__getattr__`` must raise AttributeError,
#: iterators StopIteration, ...) and control-flow exceptions that callers
#: are never expected to catch as repro failures.
_ALLOWED_RAISES = set(_errors.__all__) | {
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "AttributeError",
    "SystemExit",
    "KeyboardInterrupt",
    "AssertionError",
}

#: Path fragments whose public functions must be fully annotated (SL204).
_ANNOTATION_SCOPE = ("viprof", "profiling", "pipeline")


def _is_int_quantity_name(name: str) -> bool:
    return any(seg in _INT_SEGMENTS for seg in name.lower().split("_"))


def _is_float_annotation(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Name) and node.id == "float"


class _SelfLint(ast.NodeVisitor):
    """One file's worth of lint passes, sharing a single AST walk."""

    def __init__(self, path: Path, rel: str, check_annotations: bool):
        self.path = path
        self.rel = rel
        self.check_annotations = check_annotations
        self.findings: list[Finding] = []
        self._depth = 0  # nesting depth of function definitions

    def _add(
        self, severity: Severity, rule_id: str, lineno: int, msg: str
    ) -> None:
        self.findings.append(
            Finding(
                severity=severity,
                rule_id=rule_id,
                artifact=self.rel,
                location=f"line {lineno}",
                message=msg,
            )
        )

    # -- SL201: float-typed machine quantities -------------------------

    def _check_int_quantity(
        self, name: str, annotation: ast.expr | None,
        default: ast.expr | None, lineno: int,
    ) -> None:
        if not _is_int_quantity_name(name):
            return
        if _is_float_annotation(annotation):
            self._add(
                Severity.ERROR, "SL201", lineno,
                f"{name!r} is annotated 'float': addresses/sizes/epochs "
                "must be exact ints",
            )
        if (
            isinstance(default, ast.Constant)
            and isinstance(default.value, float)
        ):
            self._add(
                Severity.ERROR, "SL201", lineno,
                f"{name!r} defaults to a float literal: "
                "addresses/sizes/epochs must be exact ints",
            )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._check_int_quantity(
                node.target.id, node.annotation, node.value, node.lineno
            )
        self.generic_visit(node)

    # -- SL202: raise discipline ---------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            # `raise CamelCase` is a class re-raise; `raise err` is a
            # caught-instance re-raise, which we cannot (and need not)
            # resolve statically.
            name = exc.id if exc.id[:1].isupper() else None
        if name is not None and name not in _ALLOWED_RAISES:
            self._add(
                Severity.ERROR, "SL202", node.lineno,
                f"raises {name}: exceptions raised in repro.* must "
                "derive from the repro.errors hierarchy",
            )
        self.generic_visit(node)

    # -- SL203: naked except -------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                Severity.ERROR, "SL203", node.lineno,
                "naked 'except:' — name the exception(s), or catch "
                "ReproError at an API boundary",
            )
        self.generic_visit(node)

    # -- SL204 + function-argument SL201 -------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        a = node.args
        params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
        defaults: dict[str, ast.expr] = {}
        pos = [*a.posonlyargs, *a.args]
        for arg, d in zip(reversed(pos), reversed(a.defaults)):
            defaults[arg.arg] = d
        for arg, d in zip(a.kwonlyargs, a.kw_defaults):
            if d is not None:
                defaults[arg.arg] = d
        for arg in params:
            self._check_int_quantity(
                arg.arg, arg.annotation, defaults.get(arg.arg), arg.lineno
            )

        public = not node.name.startswith("_")
        top_level = self._depth == 0
        if self.check_annotations and public and top_level:
            unannotated = [
                arg.arg
                for i, arg in enumerate(params)
                if arg.annotation is None
                and not (i == 0 and arg.arg in ("self", "cls"))
            ]
            if unannotated:
                self._add(
                    Severity.ERROR, "SL204", node.lineno,
                    f"public function {node.name!r} has unannotated "
                    f"parameter(s): {', '.join(unannotated)}",
                )
            if node.returns is None:
                self._add(
                    Severity.ERROR, "SL204", node.lineno,
                    f"public function {node.name!r} has no return "
                    "annotation",
                )

        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods of a top-level class count as top-level API; functions
        # nested inside functions never do.
        self.generic_visit(node)


def lint_source(path: Path, root: Path | None = None) -> list[Finding]:
    """Lint one Python source file; returns its findings."""
    rel = str(path.relative_to(root)) if root is not None else str(path)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError) as e:
        raise StatCheckError(f"{path}: cannot lint: {e}") from None
    posix = path.as_posix()
    check_annotations = any(
        f"/{frag}/" in posix for frag in _ANNOTATION_SCOPE
    )
    linter = _SelfLint(path, rel, check_annotations)
    linter.visit(tree)
    return linter.findings


def _iter_sources(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_tree(roots: list[Path | str]) -> FindingReport:
    """Lint every ``.py`` file under the given roots."""
    report = FindingReport()
    for root in roots:
        root = Path(root)
        if not root.exists():
            raise StatCheckError(f"{root}: no such file or directory")
        base = root if root.is_dir() else root.parent
        for path in _iter_sources(root):
            report.extend(lint_source(path, root=base))
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck.selflint",
        description="custom AST lint enforcing repo invariants",
    )
    parser.add_argument(
        "roots", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    args = parser.parse_args(argv)

    try:
        report = lint_tree(args.roots)
    except StatCheckError as e:
        print(f"selflint: {e}", file=sys.stderr)
        return 2
    print(report.format_json() if args.json else report.format_text())
    return report.exit_code(fail_on=Severity.ERROR)


if __name__ == "__main__":
    sys.exit(main())
