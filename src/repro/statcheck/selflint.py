"""Repo-invariant source lint (``python -m repro.statcheck.selflint``).

An ``ast``-based pass over our own sources enforcing invariants that
general-purpose linters cannot know.  SL201–SL204 are single-walk
syntactic rules; SL205–SL209 (in :mod:`repro.statcheck.flowchecks`) run
on per-function control-flow graphs and module-level constant folding:

SL201  int-quantities       Addresses, PCs, offsets, sizes, epochs and
                            cycle counts are exact machine quantities —
                            annotating or defaulting one as ``float``
                            invites rounding a PC.
SL202  errors-hierarchy     Every exception raised inside ``repro.*``
                            derives from :mod:`repro.errors`, so callers
                            can catch ``ReproError`` at API boundaries.
SL203  no-naked-except      ``except:`` swallows ``KeyboardInterrupt``
                            and hides simulator bugs.
SL204  public-annotations   Public functions in ``repro/viprof/`` and
                            ``repro/profiling/`` are the paper-facing
                            API; they carry full type annotations.
SL205  resource-leak        Locally-opened record/sample handles reach
                            ``close()`` or a ``with`` on every path.
SL206  fork-shared-state    Shard-pool worker functions read no mutable
                            module-level state (fork-divergence races).
SL207  codec-consistency    Struct formats parse; ``*_RECORD_SIZE``
                            matches ``calcsize(*_RECORD_FORMAT)``;
                            magics are 4 bytes.
SL208  counter-accounting   Stats classes merge and export every
                            counter they maintain; columnar/batch
                            functions scale bumps by the group size.
SL209  fault-point-coverage The fault registry and ``fire()`` call
                            sites are in bijection.

Findings reuse :mod:`repro.statcheck.findings`; exit code 1 when any
ERROR-severity finding exists, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator

import repro.errors as _errors
from repro.errors import StatCheckError
from repro.statcheck import flowchecks
from repro.statcheck.findings import Finding, FindingReport, Severity

__all__ = ["SL_RULES", "lint_source", "lint_tree", "main"]

#: The selflint rule catalog: id -> (name, one-line description).  All
#: rules report at ERROR severity except where a finding is inherently
#: advisory (SL209 emits WARNING for unresolvable ``fire()`` args).
SL_RULES: dict[str, tuple[str, str]] = {
    "SL201": (
        "int-quantities",
        "addresses/PCs/offsets/sizes/epochs must be exact ints, "
        "never float-annotated or float-defaulted",
    ),
    "SL202": (
        "errors-hierarchy",
        "exceptions raised in repro.* derive from repro.errors",
    ),
    "SL203": (
        "no-naked-except",
        "no bare 'except:' clauses",
    ),
    "SL204": (
        "public-annotations",
        "public functions in the paper-facing packages are fully "
        "annotated",
    ),
    "SL205": (
        "resource-leak",
        "locally-opened record/sample handles reach close() or a "
        "'with' on every path (CFG reaching analysis)",
    ),
    "SL206": (
        "fork-shared-state",
        "process-pool worker functions read no module-level mutable "
        "state",
    ),
    "SL207": (
        "codec-consistency",
        "struct formats parse and *_RECORD_SIZE constants match "
        "calcsize(*_RECORD_FORMAT); record magics are 4 bytes",
    ),
    "SL208": (
        "counter-accounting",
        "stats classes merge() and export every counter they maintain; "
        "columnar/batch functions scale counter bumps by the group size",
    ),
    "SL209": (
        "fault-point-coverage",
        "fault-injection registry names and fire() call sites are in "
        "bijection",
    ),
}

#: Identifier segments that denote exact machine quantities (SL201).
_INT_SEGMENTS = {
    "addr", "address", "pc", "offset", "size", "start", "end",
    "epoch", "cycle", "cycles",
}

#: Exception names that may be raised without deriving from repro.errors:
#: Python protocol obligations (``__getattr__`` must raise AttributeError,
#: iterators StopIteration, ...) and control-flow exceptions that callers
#: are never expected to catch as repro failures.
_ALLOWED_RAISES = set(_errors.__all__) | {
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "AttributeError",
    "SystemExit",
    "KeyboardInterrupt",
    "AssertionError",
}

#: Path fragments whose public functions must be fully annotated (SL204).
_ANNOTATION_SCOPE = ("viprof", "profiling", "pipeline", "metrics")


def _select_rules(rules: Iterable[str] | None) -> frozenset[str]:
    if rules is None:
        return frozenset(SL_RULES)
    selected = frozenset(rules)
    unknown = selected - SL_RULES.keys()
    if unknown:
        known = ", ".join(sorted(SL_RULES))
        raise StatCheckError(
            f"unknown selflint rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {known})"
        )
    return selected


def _is_int_quantity_name(name: str) -> bool:
    return any(seg in _INT_SEGMENTS for seg in name.lower().split("_"))


def _is_float_annotation(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Name) and node.id == "float"


class _SelfLint(ast.NodeVisitor):
    """The single-walk rules (SL201–SL204), sharing one AST traversal."""

    def __init__(
        self,
        path: Path,
        rel: str,
        check_annotations: bool,
        enabled: frozenset[str],
    ):
        self.path = path
        self.rel = rel
        self.check_annotations = check_annotations
        self.enabled = enabled
        self.findings: list[Finding] = []
        self._depth = 0  # nesting depth of function definitions

    def _add(
        self, severity: Severity, rule_id: str, lineno: int, msg: str
    ) -> None:
        if rule_id not in self.enabled:
            return
        self.findings.append(
            Finding(
                severity=severity,
                rule_id=rule_id,
                artifact=self.rel,
                location=f"line {lineno}",
                message=msg,
            )
        )

    # -- SL201: float-typed machine quantities -------------------------

    def _check_int_quantity(
        self, name: str, annotation: ast.expr | None,
        default: ast.expr | None, lineno: int,
    ) -> None:
        if not _is_int_quantity_name(name):
            return
        if _is_float_annotation(annotation):
            self._add(
                Severity.ERROR, "SL201", lineno,
                f"{name!r} is annotated 'float': addresses/sizes/epochs "
                "must be exact ints",
            )
        if (
            isinstance(default, ast.Constant)
            and isinstance(default.value, float)
        ):
            self._add(
                Severity.ERROR, "SL201", lineno,
                f"{name!r} defaults to a float literal: "
                "addresses/sizes/epochs must be exact ints",
            )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._check_int_quantity(
                node.target.id, node.annotation, node.value, node.lineno
            )
        self.generic_visit(node)

    # -- SL202: raise discipline ---------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            # `raise CamelCase` is a class re-raise; `raise err` is a
            # caught-instance re-raise, which we cannot (and need not)
            # resolve statically.
            name = exc.id if exc.id[:1].isupper() else None
        if name is not None and name not in _ALLOWED_RAISES:
            self._add(
                Severity.ERROR, "SL202", node.lineno,
                f"raises {name}: exceptions raised in repro.* must "
                "derive from the repro.errors hierarchy",
            )
        self.generic_visit(node)

    # -- SL203: naked except -------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                Severity.ERROR, "SL203", node.lineno,
                "naked 'except:' — name the exception(s), or catch "
                "ReproError at an API boundary",
            )
        self.generic_visit(node)

    # -- SL204 + function-argument SL201 -------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        a = node.args
        params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
        defaults: dict[str, ast.expr] = {}
        pos = [*a.posonlyargs, *a.args]
        for arg, d in zip(reversed(pos), reversed(a.defaults)):
            defaults[arg.arg] = d
        for arg, d in zip(a.kwonlyargs, a.kw_defaults):
            if d is not None:
                defaults[arg.arg] = d
        for arg in params:
            self._check_int_quantity(
                arg.arg, arg.annotation, defaults.get(arg.arg), arg.lineno
            )

        public = not node.name.startswith("_")
        top_level = self._depth == 0
        if self.check_annotations and public and top_level:
            unannotated = [
                arg.arg
                for i, arg in enumerate(params)
                if arg.annotation is None
                and not (i == 0 and arg.arg in ("self", "cls"))
            ]
            if unannotated:
                self._add(
                    Severity.ERROR, "SL204", node.lineno,
                    f"public function {node.name!r} has unannotated "
                    f"parameter(s): {', '.join(unannotated)}",
                )
            if node.returns is None:
                self._add(
                    Severity.ERROR, "SL204", node.lineno,
                    f"public function {node.name!r} has no return "
                    "annotation",
                )

        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods of a top-level class count as top-level API; functions
        # nested inside functions never do.
        self.generic_visit(node)


def _lint_file(
    path: Path, root: Path | None, selected: frozenset[str]
) -> tuple[list[Finding], dict[str, int] | None]:
    """Lint one file; returns its findings plus the fault-point names it
    fires (for the cross-file SL209 pass; None when SL209 is off)."""
    rel = str(path.relative_to(root)) if root is not None else str(path)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError) as e:
        raise StatCheckError(f"{path}: cannot lint: {e}") from None
    findings: list[Finding] = []

    if selected & {"SL201", "SL202", "SL203", "SL204"}:
        posix = path.as_posix()
        check_annotations = any(
            f"/{frag}/" in posix for frag in _ANNOTATION_SCOPE
        )
        linter = _SelfLint(path, rel, check_annotations, selected)
        linter.visit(tree)
        findings.extend(linter.findings)

    if "SL205" in selected:
        findings.extend(flowchecks.check_resource_leaks(tree, rel))
    if "SL206" in selected:
        findings.extend(flowchecks.check_fork_shared_state(tree, rel))
    if "SL207" in selected:
        findings.extend(flowchecks.check_codec_consistency(tree, rel))
    if "SL208" in selected:
        findings.extend(flowchecks.check_counter_accounting(tree, rel))

    fired: dict[str, int] | None = None
    if "SL209" in selected:
        fired, fire_findings = flowchecks.collect_fire_calls(tree, rel)
        findings.extend(fire_findings)
    return findings, fired


def lint_source(
    path: Path,
    root: Path | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one Python source file; returns its findings.

    Single-file linting runs every selected rule except the cross-file
    half of SL209 (site coverage needs the whole tree; use
    :func:`lint_tree`)."""
    findings, _fired = _lint_file(path, root, _select_rules(rules))
    return findings


def _iter_sources(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_tree(
    roots: list[Path | str],
    rules: Iterable[str] | None = None,
) -> FindingReport:
    """Lint every ``.py`` file under the given roots."""
    selected = _select_rules(rules)
    report = FindingReport()
    fires_by_file: dict[str, tuple[str, dict[str, int]]] = {}
    for root in roots:
        root = Path(root)
        if not root.exists():
            raise StatCheckError(f"{root}: no such file or directory")
        base = root if root.is_dir() else root.parent
        for path in _iter_sources(root):
            rel = str(path.relative_to(base))
            findings, fired = _lint_file(path, base, selected)
            report.extend(findings)
            if fired is not None:
                fires_by_file[path.resolve().as_posix()] = (rel, fired)
    if "SL209" in selected:
        report.extend(flowchecks.check_fault_point_sites(fires_by_file))
    return report


def _format_rule_table() -> str:
    lines = [f"{'id':<7}{'name':<22} description"]
    for rule_id, (name, description) in sorted(SL_RULES.items()):
        lines.append(f"{rule_id:<7}{name:<22} {description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck.selflint",
        description="custom AST lint enforcing repo invariants",
    )
    parser.add_argument(
        "roots", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these comma-separated rule ids (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit findings as JSON (alias for --format json)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list selflint rules and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_format_rule_table())
        return 0

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rules:
            print(
                "selflint: --rules given but no rule ids named",
                file=sys.stderr,
            )
            return 2
    try:
        report = lint_tree(args.roots, rules=rules)
    except StatCheckError as e:
        print(f"selflint: {e}", file=sys.stderr)
        return 2
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report.format_json())
    elif fmt == "sarif":
        from repro.statcheck.sarif import report_to_sarif

        rules_meta = [
            {
                "id": rule_id,
                "name": name,
                "description": description,
                "severity": Severity.ERROR,
            }
            for rule_id, (name, description) in sorted(SL_RULES.items())
        ]
        print(json.dumps(
            report_to_sarif(report, "viprof-selflint", rules_meta),
            indent=2,
        ))
    else:
        print(report.format_text())
    return report.exit_code(fail_on=Severity.ERROR)


if __name__ == "__main__":
    sys.exit(main())
