"""Static integrity analysis for VIProf artifacts and sources.

Two front ends over one findings model:

* **Artifact analyzer** (``viprof lint <session-dir>``) — verifies a
  session's epoch code maps, sample files, and metadata against the
  paper's epoch semantics without running a simulation.  See
  :mod:`repro.statcheck.checks` for the rule catalogue.
* **Source self-lint** (``python -m repro.statcheck.selflint src/``) —
  an AST pass enforcing repo invariants (int-typed addresses, the
  ``repro.errors`` hierarchy, no naked excepts, annotated public API).

Both are CI gates; ``docs/static_analysis.md`` documents every rule and
how to add one.
"""

from typing import Any

from repro.statcheck.artifacts import SessionArtifacts, load_session
from repro.statcheck.findings import Finding, FindingReport, Severity
from repro.statcheck.rules import Rule, all_rules, get_rule, rule, run_rules


def __getattr__(name: str) -> Any:
    # The two front-end entry points are loaded lazily so that
    # ``python -m repro.statcheck.selflint`` / ``.analyzer`` don't import
    # their own module a second time through the package (runpy warning).
    if name == "lint_session":
        from repro.statcheck.analyzer import lint_session

        return lint_session
    if name == "lint_tree":
        from repro.statcheck.selflint import lint_tree

        return lint_tree
    raise AttributeError(name)

__all__ = [
    "Finding",
    "FindingReport",
    "Severity",
    "Rule",
    "rule",
    "all_rules",
    "get_rule",
    "run_rules",
    "SessionArtifacts",
    "load_session",
    "lint_session",
    "lint_tree",
]
