"""Per-function control-flow graphs and forward dataflow analysis.

This is the engine behind the dataflow self-lint rules (SL205/SL206 in
:mod:`repro.statcheck.selflint`): a function body is lowered to basic
blocks connected by explicit control-flow edges, and a generic worklist
solver propagates *facts* (e.g. "file handle ``fh`` opened at line 40 is
still open") forward until a fixed point.  A rule supplies only its
transfer function; path enumeration, loops, exception routing and
``finally`` threading live here once.

Design choices, chosen so the rules stay precise on this repository's
real code without modelling full CPython semantics:

* **Exception edges are statement-granular and carry pre-state.**
  Inside a ``try`` body every statement gets its own block with a
  *pre-edge* to each handler entry: a pre-edge propagates the state
  *before* the statement, because an exception raised mid-statement
  means the statement's own binding never happened (``fh = open(...)``
  raising must not make ``fh`` look open inside the handler).
* **Only explicit ``raise`` statements leave a function exceptionally.**
  Implicit raise potential (any call can raise) is modelled *only* as
  the handler pre-edges above; we do not add an exit edge from every
  statement, which would drown must-hold analyses in infeasible paths.
* **Abrupt exits thread the innermost ``finally``.**  ``return`` /
  ``raise`` / ``break`` / ``continue`` inside ``try .. finally`` are
  routed through the ``finally`` entry block, and the ``finally`` exit
  then fans out to every continuation that was routed through it.  The
  approximation (all abrupt paths share one ``finally`` body) is the
  standard conservative one.
* The solver is a **may-analysis** (union meet): a fact holds at a
  point if it holds on *some* path there.  "Open on some path reaching
  the exit" is exactly the resource-leak question.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator

__all__ = [
    "Header",
    "Block",
    "CFG",
    "build_cfg",
    "run_forward",
    "iter_functions",
]

#: Facts are opaque hashable values owned by the rule.
Fact = Hashable


@dataclass(frozen=True)
class Header:
    """The header of a compound statement, placed in the block that
    evaluates it.

    ``node`` is the compound statement (``If``/``While``/``For``/
    ``With``...); ``exprs`` are exactly the expressions the header
    evaluates (test, iterable, context managers, loop target), so a
    transfer function can scan them for uses without ever seeing the
    statement's body — the body lives in its own blocks.
    """

    node: ast.stmt
    exprs: tuple[ast.AST, ...]

    @property
    def lineno(self) -> int:
        return self.node.lineno


#: A block element: a simple statement, or a compound-statement header.
Element = "ast.stmt | Header"


@dataclass
class Block:
    """One basic block: elements executed in order, then a branch."""

    idx: int
    elements: list = field(default_factory=list)
    #: Normal edges: the state *after* this block flows to these blocks.
    succs: set = field(default_factory=set)
    #: Exception edges: the state *before* this block flows to these
    #: blocks (see module docstring).  Only try-body blocks have them,
    #: and try-body blocks hold at most one element.
    pre_succs: set = field(default_factory=set)
    #: For a ``finally`` entry block: the finally body's statements, so
    #: a rule can apply cleanup-trust (e.g. "a ``close()`` anywhere in
    #: this finally counts as closing") before the path-sensitive walk.
    finally_body: list | None = None


class CFG:
    """A function's control-flow graph.  ``entry`` starts the body;
    every path ends at the single empty ``exit`` block."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry: int = 0
        self.exit: int = 0

    def new_block(self) -> Block:
        b = Block(idx=len(self.blocks))
        self.blocks.append(b)
        return b

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


@dataclass
class _FinallyFrame:
    """One enclosing ``try .. finally`` while building its body."""

    entry: int
    loop_depth: int
    pending: set = field(default_factory=set)


class _Builder:
    """Lowers one function body to a :class:`CFG`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: Block | None = self.cfg.new_block()
        self.cfg.entry = self.current.idx
        exit_block = self.cfg.new_block()
        self.cfg.exit = exit_block.idx
        #: Handler entry ids per enclosing try-with-handlers, innermost last.
        self._handlers: list[list[int]] = []
        #: Enclosing try-finally frames, innermost last.
        self._finallies: list[_FinallyFrame] = []
        #: (head_idx, after_idx) per enclosing loop, innermost last.
        self._loops: list[tuple[int, int]] = []

    # -- primitives ----------------------------------------------------

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].succs.add(dst)

    def _emit(self, element) -> None:
        """Append an element to the current block; inside a try body,
        give it its own block with pre-edges to every enclosing handler."""
        if self.current is None:  # unreachable code (after return/raise)
            self.current = self.cfg.new_block()
        blk = self.current
        blk.elements.append(element)
        if self._handlers:
            for handlers in self._handlers:
                blk.pre_succs.update(handlers)
            nxt = self.cfg.new_block()
            self._edge(blk.idx, nxt.idx)
            self.current = nxt

    def _terminate(self) -> None:
        """Mark everything after the current statement unreachable."""
        self.current = None

    def _route_abrupt(self, target: int, exits_loops: bool = False) -> None:
        """Route an abrupt exit (return/raise/break/continue) from the
        current block to ``target``, threading the innermost ``finally``
        that the exit actually leaves.  ``exits_loops`` is False for
        break/continue, which stay inside their loop and therefore skip
        ``finally`` frames entered outside it."""
        if self.current is None:
            return
        src = self.current.idx
        frame: _FinallyFrame | None = None
        if self._finallies:
            innermost = self._finallies[-1]
            if exits_loops or innermost.loop_depth >= len(self._loops):
                frame = innermost
        if frame is not None:
            self._edge(src, frame.entry)
            frame.pending.add(target)
        else:
            self._edge(src, target)
        self._terminate()

    # -- statement lowering --------------------------------------------

    def build_body(self, stmts: list) -> None:
        for stmt in stmts:
            self._build_stmt(stmt)

    def _build_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._build_if(node)
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._build_loop(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._build_with(node)
        elif isinstance(node, ast.Try):
            self._build_try(node)
        elif isinstance(node, ast.Return):
            self._emit(node)
            self._route_abrupt(self.cfg.exit, exits_loops=True)
        elif isinstance(node, ast.Raise):
            self._emit(node)
            if self._handlers:
                # Inside a try-with-handlers the raise lands in a
                # handler (the pre-edges added at emit time carry the
                # state there); a handler whose type does not match
                # would let it escape, which is out of model — see the
                # module docstring's precision stance.
                self._terminate()
            else:
                self._route_abrupt(self.cfg.exit, exits_loops=True)
        elif isinstance(node, ast.Break):
            if self._loops:
                self._route_abrupt(self._loops[-1][1])
            else:  # malformed code; keep the walk total
                self._terminate()
        elif isinstance(node, ast.Continue):
            if self._loops:
                self._route_abrupt(self._loops[-1][0])
            else:
                self._terminate()
        else:
            # Simple statements — and any compound statement we do not
            # model (e.g. ``match``), which a rule then sees whole and
            # must treat conservatively.
            self._emit(node)

    def _build_if(self, node: ast.If) -> None:
        self._emit(Header(node, (node.test,)))
        head = self.current
        after = self.cfg.new_block()
        self.current = self.cfg.new_block()
        self._edge(head.idx, self.current.idx)
        self.build_body(node.body)
        if self.current is not None:
            self._edge(self.current.idx, after.idx)
        if node.orelse:
            self.current = self.cfg.new_block()
            self._edge(head.idx, self.current.idx)
            self.build_body(node.orelse)
            if self.current is not None:
                self._edge(self.current.idx, after.idx)
        else:
            self._edge(head.idx, after.idx)
        self.current = after

    def _build_loop(self, node) -> None:
        if isinstance(node, ast.While):
            exprs: tuple = (node.test,)
        else:  # For / AsyncFor: the target is (re)bound each iteration
            exprs = (node.iter, node.target)
        head = self.cfg.new_block()
        if self.current is not None:
            self._edge(self.current.idx, head.idx)
        self.current = head
        self._emit(Header(node, exprs))
        head = self.current  # _emit may have split inside a try body
        after = self.cfg.new_block()
        body = self.cfg.new_block()
        self._edge(head.idx, body.idx)
        self._loops.append((head.idx, after.idx))
        self.current = body
        self.build_body(node.body)
        if self.current is not None:
            self._edge(self.current.idx, head.idx)
        self._loops.pop()
        if node.orelse:
            self.current = self.cfg.new_block()
            self._edge(head.idx, self.current.idx)
            self.build_body(node.orelse)
            if self.current is not None:
                self._edge(self.current.idx, after.idx)
        else:
            self._edge(head.idx, after.idx)
        self.current = after

    def _build_with(self, node) -> None:
        exprs: list[ast.AST] = []
        for item in node.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        self._emit(Header(node, tuple(exprs)))
        self.build_body(node.body)

    def _build_try(self, node: ast.Try) -> None:
        after = self.cfg.new_block()
        fin_frame: _FinallyFrame | None = None
        if node.finalbody:
            fin_entry = self.cfg.new_block()
            fin_entry.finally_body = list(node.finalbody)
            fin_frame = _FinallyFrame(
                entry=fin_entry.idx, loop_depth=len(self._loops)
            )
            self._finallies.append(fin_frame)

        handler_entries = [self.cfg.new_block() for _ in node.handlers]

        # Body: statement-granular blocks with pre-edges to the handlers.
        if node.handlers:
            self._handlers.append([b.idx for b in handler_entries])
        self.build_body(node.body)
        if node.handlers:
            self._handlers.pop()
        if self.current is not None and node.orelse:
            self.build_body(node.orelse)
        normal_exit = self.current

        def route_to_after(blk: Block | None) -> None:
            if blk is None:
                return
            if fin_frame is not None:
                self._edge(blk.idx, fin_frame.entry)
                fin_frame.pending.add(after.idx)
            else:
                self._edge(blk.idx, after.idx)

        route_to_after(normal_exit)

        for handler, entry in zip(node.handlers, handler_entries):
            self.current = entry
            self.build_body(handler.body)
            route_to_after(self.current)

        if fin_frame is not None:
            self._finallies.pop()
            self.current = self.cfg.blocks[fin_frame.entry]
            self.build_body(node.finalbody)
            fin_exit = self.current
            if fin_exit is not None:
                # Normal completion falls through to ``after`` even when
                # nothing was routed (e.g. body ends in ``return``).
                fin_frame.pending.add(after.idx)
                for target in fin_frame.pending:
                    self._edge(fin_exit.idx, target)
        self.current = after


def build_cfg(fn) -> CFG:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    b = _Builder()
    b.build_body(fn.body)
    if b.current is not None:  # falling off the end returns None
        b._edge(b.current.idx, b.cfg.exit)
    return b.cfg


# ----------------------------------------------------------------------
# the solver
# ----------------------------------------------------------------------

#: A transfer function: (block, facts-at-entry) -> facts-at-exit.  Must
#: be monotone (growing input never shrinks output) for termination.
Transfer = Callable[[Block, frozenset], frozenset]


def run_forward(
    cfg: CFG,
    transfer: Transfer,
    entry_facts: frozenset = frozenset(),
) -> dict[int, frozenset]:
    """Forward may-analysis to a fixed point; returns IN facts per block.

    The meet is set union: a fact reaches a block if it reaches it along
    any path.  Normal edges propagate a block's OUT (post-transfer)
    facts; pre-edges (exception edges) propagate its IN facts.  Only
    blocks reachable from the entry participate: dead code after a
    ``return``/``raise`` contributes nothing.
    """
    n = len(cfg.blocks)
    reachable = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        blk = cfg.blocks[stack.pop()]
        for s in (*blk.succs, *blk.pre_succs):
            if s not in reachable:
                reachable.add(s)
                stack.append(s)
    ins: list[set] = [set() for _ in range(n)]
    ins[cfg.entry] = set(entry_facts)
    outs: list[frozenset] = [frozenset()] * n
    work = sorted(reachable)
    seen_in: list[int] = [-1] * n  # len of IN when OUT was computed
    while work:
        idx = work.pop()
        if seen_in[idx] == len(ins[idx]) and seen_in[idx] != -1:
            continue
        seen_in[idx] = len(ins[idx])
        blk = cfg.blocks[idx]
        out = transfer(blk, frozenset(ins[idx]))
        outs[idx] = out
        for s in blk.succs:
            before = len(ins[s])
            ins[s] |= out
            if len(ins[s]) != before:
                work.append(s)
        for s in blk.pre_succs:
            before = len(ins[s])
            ins[s] |= ins[idx]
            if len(ins[s]) != before:
                work.append(s)
    return {i: frozenset(ins[i]) for i in range(n)}


def iter_functions(tree: ast.AST) -> Iterator:
    """Every function definition in a module, methods included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
