"""The pluggable rule engine behind ``viprof lint``.

A rule is a function from loaded :class:`~repro.statcheck.artifacts.
SessionArtifacts` to an iterable of findings, registered under a stable
id with the :func:`rule` decorator::

    @rule("VP109", "my-invariant", Severity.ERROR,
          "one-line description for docs and --list-rules")
    def check_my_invariant(arts: SessionArtifacts) -> Iterator[Finding]:
        ...
        yield Finding(...)

Registration makes the rule discoverable (``viprof lint --list-rules``),
selectable (``--rules VP109``), and documented.  The engine caps how many
findings any single rule may emit so a systemically corrupt artifact
(e.g. ten thousand orphan samples) cannot drown out the other rules'
output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import StatCheckError
from repro.statcheck.artifacts import SessionArtifacts
from repro.statcheck.findings import Finding, FindingReport, Severity

__all__ = ["Rule", "rule", "all_rules", "get_rule", "run_rules"]

RuleFn = Callable[[SessionArtifacts], Iterable[Finding]]

#: Per-rule finding cap (excess is summarized in one INFO finding).
MAX_FINDINGS_PER_RULE = 50


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered artifact check."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    fn: RuleFn

    def run(self, arts: SessionArtifacts) -> Iterator[Finding]:
        return iter(self.fn(arts))


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str, name: str, severity: Severity, description: str
) -> Callable[[RuleFn], RuleFn]:
    """Register an artifact rule under a stable id (decorator)."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise StatCheckError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            description=description,
            fn=fn,
        )
        return fn

    return deco


def all_rules() -> tuple[Rule, ...]:
    _ensure_builtin_rules()
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise StatCheckError(
            f"unknown rule id {rule_id!r} (known: {known})"
        ) from None


def _ensure_builtin_rules() -> None:
    # The built-in checks register themselves on import; importing here
    # (not at module top) avoids a cycle, since checks import this module.
    from repro.statcheck import checks  # noqa: F401


def run_rules(
    arts: SessionArtifacts,
    rule_ids: Iterable[str] | None = None,
    max_findings_per_rule: int = MAX_FINDINGS_PER_RULE,
) -> FindingReport:
    """Run the selected (default: all) rules over loaded artifacts.

    Load-time findings (unparseable artifacts, rule id ``VP100``) are
    always included — corrupt input must never pass silently.
    """
    _ensure_builtin_rules()
    selected = (
        all_rules()
        if rule_ids is None
        else tuple(get_rule(r) for r in rule_ids)
    )
    report = FindingReport()
    report.extend(arts.load_findings)
    for r in selected:
        emitted = 0
        for f in r.run(arts):
            if emitted < max_findings_per_rule:
                report.findings.append(f)
            emitted += 1
        if emitted > max_findings_per_rule:
            report.add(
                Severity.INFO, r.rule_id, str(arts.session_dir), "-",
                f"{emitted - max_findings_per_rule} further "
                f"{r.name} finding(s) suppressed "
                f"(cap {max_findings_per_rule})",
            )
    return report
