"""Sharded, multi-process sample resolution.

:func:`run_pipeline(..., workers=N) <repro.pipeline.aggregate.run_pipeline>`
partitions a directory-backed source's records into ``N`` contiguous
shards — whole files where possible, large files split by record-chunk
ranges (:func:`plan_shards`) — and resolves each shard in its own worker
process with its own copy of the :class:`~repro.pipeline.resolver.ResolverChain`.

Exactness is the design constraint, not best-effort parallelism:

* shards are **contiguous in global stream order** (files in sorted name
  order, record ranges in file order), and partial results are merged in
  shard order, so row/event first-seen order — the report's sort
  tie-break — matches the sequential pass exactly;
* workers reset their chain copy's counters and export pure **deltas**,
  which the parent chain absorbs
  (:meth:`~repro.pipeline.resolver.ResolverChain.absorb_stats`); counters
  are pure sums, so merged statistics equal sequential statistics;
* therefore ``workers=N`` output is byte-identical to ``workers=1``
  (golden-parity tested for N in {2, 4}).

The per-shard resolve loop is also the pipeline's sequential fast path
(:func:`consume_source`): records are decoded in batched field chunks
(one ``iter_unpack`` C call per chunk) and resolution-cache hits skip
sample-object construction entirely — the chain replays the claim's
counters and the aggregate is bumped straight from the decoded fields.
"""

from __future__ import annotations

import os
import pickle
import struct
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Sequence

import multiprocessing

from repro.errors import ProfilerError
from repro.pipeline.columnar import resolve_column_chunk
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.source import DirectorySource, PipelineSample
from repro.profiling.model import RawSample
from repro.profiling.record_codec import RecordFileReader
from repro.profiling.report import StreamingAggregator

__all__ = [
    "ShardChunk",
    "plan_shards",
    "resolve_workers",
    "consume_source",
    "consume_chunks",
    "run_parallel_pipeline",
]

#: Shard split points within a file are rounded to this many records so a
#: split never lands mid decode chunk (pure I/O efficiency; correctness
#: does not depend on it).
SPLIT_ALIGN_RECORDS = 4096

#: Size of each shard's shared-memory result segment.  Sized for the
#: packed aggregate of a realistic shard (a few hundred rows is a few tens
#: of KB); a shard whose result outgrows it falls back to returning the
#: blob over the pool's pickle channel — slower, never wrong.
SHARD_SEGMENT_BYTES = 1 << 20

#: ``workers="auto"`` never picks more than this many shards: resolution
#: is CPU-bound, so workers beyond the core count only add fork + merge
#: overhead, and very wide boxes hit diminishing returns on session I/O.
MAX_AUTO_WORKERS = 8


def resolve_workers(workers: int | str) -> int:
    """Resolve a worker-count knob to a concrete count.

    ``"auto"`` picks ``min(cpu_count, MAX_AUTO_WORKERS)`` — and degrades
    to 1 on a single-core box, where extra processes can only lose (fork,
    transport, and merge overhead with zero added parallelism).  Integer
    counts pass through unchanged (validated by :func:`plan_shards`).
    """
    if workers == "auto":
        cores = os.cpu_count() or 1
        return 1 if cores < 2 else min(cores, MAX_AUTO_WORKERS)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ProfilerError(
            f'worker count must be an int or "auto", got {workers!r}'
        )
    return workers


@dataclass(frozen=True, slots=True)
class ShardChunk:
    """A contiguous record range of one sample file.

    ``path`` is a string (not :class:`~pathlib.Path`) so chunk lists
    pickle cheaply across the worker boundary.
    """

    path: str
    start_record: int
    n_records: int


def plan_shards(
    paths: Sequence[Path | str], workers: int
) -> list[list[ShardChunk]]:
    """Partition files' records into ``workers`` contiguous shards.

    Files are taken in the given (sorted) order; each shard receives a
    contiguous run of the global record stream, so concatenating the
    shards in index order reproduces the sequential stream exactly.
    Large files are split at :data:`SPLIT_ALIGN_RECORDS`-aligned record
    boundaries.  Shards that would be empty (more workers than records)
    are dropped.
    """
    if workers < 1:
        raise ProfilerError(f"worker count must be >= 1, got {workers}")
    counts: list[tuple[str, int]] = []
    total = 0
    for p in paths:
        with RecordFileReader(p) as reader:
            n = len(reader)
        counts.append((str(p), n))
        total += n
    if total == 0:
        return []
    per_shard = -(-total // workers)  # ceil
    shards: list[list[ShardChunk]] = [[]]
    room = per_shard
    for path, n in counts:
        taken = 0
        while taken < n:
            if room == 0:
                shards.append([])
                room = per_shard
            take = min(n - taken, room)
            remaining_after = n - taken - take
            if 0 < remaining_after and take % SPLIT_ALIGN_RECORDS:
                # Keep every intra-file split on a decode-chunk boundary:
                # round the take down to one, or — when the shard's budget
                # is smaller than a chunk — up to a whole chunk (alignment
                # wins over perfectly even shard sizes).
                aligned = take - (take % SPLIT_ALIGN_RECORDS)
                take = (
                    aligned
                    if aligned > 0
                    else min(n - taken, SPLIT_ALIGN_RECORDS)
                )
            shards[-1].append(ShardChunk(path, taken, take))
            taken += take
            room = max(0, room - take)
    return [s for s in shards if s]


# ----------------------------------------------------------------------
# the resolve loop (sequential fast path == per-shard worker loop)
# ----------------------------------------------------------------------


def consume_chunks(
    chunks: Iterable[ShardChunk],
    chain: ResolverChain,
    agg: StreamingAggregator,
    columnar: bool = True,
) -> None:
    """Resolve every record in the given chunk ranges into ``agg``.

    This is the pipeline's hot loop.  With ``columnar=True`` (the
    default) each decode chunk is resolved by the deduplicated batch path
    (:mod:`repro.pipeline.columnar`): group by cache key, one cache probe
    per distinct key, bucketed batch stage walks for the misses, bulk
    replay for the duplicates — byte- and stats-identical to the scalar
    loop and far cheaper per sample.  Chains that cannot replay counters
    in bulk (``supports_columnar`` False, i.e. the Xen outer chain)
    silently use the scalar loop regardless of the flag.

    The scalar loop (``columnar=False``, or per-chain fallback): records
    arrive as raw struct-field tuples in batched chunks; a
    resolution-cache hit bypasses ``RawSample``/``PipelineSample``
    construction entirely — the chain replays the cached claim's counters
    and the aggregate is bumped from the decoded fields.  Only cache
    misses build sample objects and walk the stages.  The cache key
    layout must match :meth:`ResolverChain.cache_key`; ``kernel_mode``
    may be an int here (``1 == True`` hashes identically, so the keys
    unify).
    """
    columnar = columnar and chain.supports_columnar
    for chunk in chunks:
        with RecordFileReader(chunk.path) as reader:
            event_name = reader.event_name
            has_domain = reader.codec.has_domain
            if columnar:
                for fields_chunk in reader.iter_field_chunks(
                    chunk.start_record, chunk.n_records
                ):
                    resolve_column_chunk(
                        fields_chunk, has_domain, event_name, chain, agg
                    )
                continue
            cache = chain.cache
            add_counts = agg.add_counts
            add = agg.add
            replay = chain.replay
            for fields_chunk in reader.iter_field_chunks(
                chunk.start_record, chunk.n_records
            ):
                for fields in fields_chunk:
                    pc, task, kmode, cycle, epoch = fields[:5]
                    domain = fields[5] if has_domain else None
                    if cache is not None:
                        key = (pc, epoch, kmode, task, domain)
                        entry = cache.get(key)
                        if entry is not None:
                            replay(entry)
                            add_counts(event_name, entry.image, entry.symbol)
                            continue
                    sample = PipelineSample(
                        raw=RawSample(
                            pc=pc,
                            event_name=event_name,
                            task_id=task,
                            kernel_mode=bool(kmode),
                            cycle=cycle,
                            epoch=epoch,
                        ),
                        domain_id=domain,
                    )
                    if cache is not None:
                        add(chain.resolve_miss(sample, key))
                    else:
                        add(chain.resolve(sample))


def consume_source(
    source: Iterable[object],
    chain: ResolverChain,
    agg: StreamingAggregator,
    columnar: bool = True,
) -> None:
    """Resolve a whole source into ``agg``, using the fused fast path for
    directory-backed sources and the generic stream loop otherwise."""
    if isinstance(source, DirectorySource):
        whole_files = [
            ShardChunk(str(p), 0, _record_count(p)) for p in source.paths()
        ]
        consume_chunks(whole_files, chain, agg, columnar=columnar)
        return
    for resolved in chain.resolve_stream(source):
        agg.add(resolved)


def _record_count(path: Path | str) -> int:
    with RecordFileReader(path) as reader:
        return len(reader)


# ----------------------------------------------------------------------
# the multi-process runner
# ----------------------------------------------------------------------


def _pack_shard_payload(
    agg: StreamingAggregator, chain: ResolverChain
) -> bytes:
    """Flatten a worker's whole shard result — chain counter deltas plus
    the packed aggregate — into one binary blob for the shared-memory
    segment (pickle-free except the tiny stage-detail dict).

    Layout: ``n_counters:u32, counters:i64[]`` (per-stage hit/miss pairs
    in chain order, then ``cache_present, cache hits, misses, size``),
    ``details_len:u32 + pickled detail dict``, ``rows_len:u32 +``
    :meth:`StreamingAggregator.pack_rows` blob.
    """
    counters: list[int] = []
    for st in chain.stats():
        counters.append(st.hits)
        counters.append(st.misses)
    cache = chain.cache
    if cache is not None:
        counters.extend((1, cache.hits, cache.misses, len(cache)))
    else:
        counters.extend((0, 0, 0, 0))
    details = {
        s.name: state
        for s in [*chain.stages, chain.fallback]
        if (state := s.export_state()) is not None
    }
    # The detail dict is tiny but shape-rich (the Xen dispatcher nests
    # whole per-domain snapshots with int keys), so it rides pickled
    # inside the segment; the bulk of the result — counters and rows —
    # is flat binary.
    details_blob = pickle.dumps(details)
    rows_blob = agg.pack_rows()
    out = bytearray()
    out += struct.pack(f"<I{len(counters)}q", len(counters), *counters)
    out += struct.pack("<I", len(details_blob)) + details_blob
    out += struct.pack("<I", len(rows_blob)) + rows_blob
    return bytes(out)


def _absorb_shard_payload(
    data: bytes | memoryview,
    agg: StreamingAggregator,
    chain: ResolverChain,
) -> None:
    """Fold one worker's packed shard result into the parent aggregate
    and chain, replicating the merge semantics of
    ``agg.merge`` + ``chain.absorb_stats`` exactly."""
    (n_counters,) = struct.unpack_from("<I", data, 0)
    counters = struct.unpack_from(f"<{n_counters}q", data, 4)
    off = 4 + 8 * n_counters
    (details_len,) = struct.unpack_from("<I", data, off)
    off += 4
    details = pickle.loads(bytes(data[off:off + details_len]))
    off += details_len
    (rows_len,) = struct.unpack_from("<I", data, off)
    off += 4

    # Rebuild the export_stats() snapshot shape against the parent
    # chain's own stage order — the worker chain is an unpickled copy of
    # this chain, so positional counters line up by construction.
    stage_meta = [(st.name, st.terminal) for st in chain.stats()]
    expected = 2 * len(stage_meta) + 4
    if n_counters != expected:
        raise ProfilerError(
            f"shard counter block has {n_counters} entries, parent chain "
            f"expects {expected}: worker/parent chain shapes diverged"
        )
    snapshot: dict[str, object] = {
        "stages": [
            (name, counters[2 * i], counters[2 * i + 1], terminal)
            for i, (name, terminal) in enumerate(stage_meta)
        ],
        "details": details,
        "cache": (
            tuple(counters[-3:]) if counters[-4] else None
        ),
    }
    chain.absorb_stats(snapshot)
    agg.absorb_packed_rows(data[off:off + rows_len])


def _resolve_shard_worker(
    payload: tuple[
        bytes,
        list[ShardChunk],
        tuple[str, ...] | None,
        bool,
        str | None,
        bytes | None,
    ],
) -> tuple[str, int] | tuple[str, bytes]:
    """Worker entry: resolve one shard on a private chain copy and
    publish the packed result through the shard's shared-memory segment.

    Returns ``("shm", n_bytes)`` when the blob fit the segment, or
    ``("pickled", blob)`` when it did not (the pool's pickle channel is
    the overflow path — slower, never wrong).
    """
    chain_bytes, chunks, events, columnar, segment_name, warm_blob = payload
    chain: ResolverChain = pickle.loads(chain_bytes)
    chain.reset_stats()
    if warm_blob is not None and chain.cache is not None:
        # Seed after the reset (reset clears the cache): warm entries
        # carry no counters, so the shard's exported deltas still sum
        # exactly — warm workers just report more hits, fewer misses.
        chain.cache.seed(pickle.loads(warm_blob))
    agg = StreamingAggregator(events)
    consume_chunks(chunks, chain, agg, columnar=columnar)
    blob = _pack_shard_payload(agg, chain)
    if segment_name is not None:
        segment = shared_memory.SharedMemory(name=segment_name)
        try:
            if len(blob) <= segment.size:
                segment.buf[: len(blob)] = blob
                return ("shm", len(blob))
        finally:
            segment.close()
    return ("pickled", blob)


#: Default number of hot cache entries shipped to each shard worker when
#: warm-up seeding is requested (``warm_top_k=True``).  Sized to cover a
#: realistic hot working set while keeping the pickled warm blob far
#: below fork/segment costs.
DEFAULT_WARM_TOP_K = 4096


def run_parallel_pipeline(
    source: Iterable[object],
    chain: ResolverChain,
    events: tuple[str, ...] | None,
    workers: int,
    columnar: bool = True,
    warm_top_k: int | bool | None = None,
) -> StreamingAggregator:
    """Resolve a directory-backed source across ``workers`` processes.

    Returns the merged aggregator; the parent ``chain`` has absorbed every
    worker's counter deltas, so ``chain.stats_dict()`` reports the whole
    run.  Falls back to the sequential fast path when the plan yields a
    single shard (tiny inputs) — same results either way.

    ``warm_top_k`` seeds every worker's resolution cache with the
    parent's hottest entries before its shard starts (``True`` for
    :data:`DEFAULT_WARM_TOP_K`, an int for an explicit bound).  This
    only matters when the parent chain is itself warm — a re-run over a
    live chain, the fleet-service scenario — and is output-neutral by
    construction: resolution is a pure function of the key, so a seeded
    hit returns exactly what the walk would have (parity-tested in
    ``tests/pipeline/test_warmup.py``).  Only the hit/miss split moves.

    Shard results travel through per-shard ``multiprocessing.shared_memory``
    segments as flat packed blobs (:func:`_pack_shard_payload`) rather
    than pickled ``StreamingAggregator`` objects: the parent absorbs each
    segment in shard order, so transport cost no longer scales with
    Python object graph size.  A result too large for its segment
    (:data:`SHARD_SEGMENT_BYTES`) falls back to the pickle channel.
    """
    if not isinstance(source, DirectorySource):
        raise ProfilerError(
            "parallel resolution needs a directory-backed source "
            f"(got {type(source).__name__}); filtered or in-memory streams "
            "resolve sequentially"
        )
    warm_blob: bytes | None = None
    if warm_top_k and chain.cache is not None:
        top_k = (
            DEFAULT_WARM_TOP_K if warm_top_k is True else int(warm_top_k)
        )
        warm = chain.cache.export_warm(top_k)
        if warm:
            warm_blob = pickle.dumps(warm)
    try:
        chain_bytes = pickle.dumps(chain)
    except Exception as e:
        raise ProfilerError(
            f"resolver chain is not picklable for worker processes: {e}"
        ) from e
    shards = plan_shards(source.paths(), workers)
    agg = StreamingAggregator(events)
    if not shards:
        return agg
    if len(shards) == 1:
        consume_chunks(shards[0], chain, agg, columnar=columnar)
        return agg
    # fork shares the parent's loaded modules and page cache; spawn works
    # too (workers re-import repro) but pays interpreter start-up.
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    ctx = multiprocessing.get_context(method)
    # The parent owns every segment's lifecycle (create + unlink), so a
    # crashed worker can never leak shared memory past this call.
    segments = [
        shared_memory.SharedMemory(create=True, size=SHARD_SEGMENT_BYTES)
        for _ in shards
    ]
    try:
        payloads = [
            (chain_bytes, shard, events, columnar, segment.name, warm_blob)
            for shard, segment in zip(shards, segments)
        ]
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=ctx
        ) as pool:
            results = list(pool.map(_resolve_shard_worker, payloads))
        # Merge in shard order: shards are contiguous in stream order, so
        # order-preserving merges reproduce the sequential first-seen
        # order.
        for segment, (kind, value) in zip(segments, results):
            if kind == "shm":
                view = segment.buf[:value]
                try:
                    _absorb_shard_payload(view, agg, chain)
                finally:
                    view.release()
            else:
                _absorb_shard_payload(value, agg, chain)
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()
    return agg
