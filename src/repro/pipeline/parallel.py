"""Sharded, multi-process sample resolution.

:func:`run_pipeline(..., workers=N) <repro.pipeline.aggregate.run_pipeline>`
partitions a directory-backed source's records into ``N`` contiguous
shards — whole files where possible, large files split by record-chunk
ranges (:func:`plan_shards`) — and resolves each shard in its own worker
process with its own copy of the :class:`~repro.pipeline.resolver.ResolverChain`.

Exactness is the design constraint, not best-effort parallelism:

* shards are **contiguous in global stream order** (files in sorted name
  order, record ranges in file order), and partial results are merged in
  shard order, so row/event first-seen order — the report's sort
  tie-break — matches the sequential pass exactly;
* workers reset their chain copy's counters and export pure **deltas**,
  which the parent chain absorbs
  (:meth:`~repro.pipeline.resolver.ResolverChain.absorb_stats`); counters
  are pure sums, so merged statistics equal sequential statistics;
* therefore ``workers=N`` output is byte-identical to ``workers=1``
  (golden-parity tested for N in {2, 4}).

The per-shard resolve loop is also the pipeline's sequential fast path
(:func:`consume_source`): records are decoded in batched field chunks
(one ``iter_unpack`` C call per chunk) and resolution-cache hits skip
sample-object construction entirely — the chain replays the claim's
counters and the aggregate is bumped straight from the decoded fields.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import multiprocessing

from repro.errors import ProfilerError
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.source import DirectorySource, PipelineSample
from repro.profiling.model import RawSample
from repro.profiling.record_codec import RecordFileReader
from repro.profiling.report import StreamingAggregator

__all__ = [
    "ShardChunk",
    "plan_shards",
    "consume_source",
    "consume_chunks",
    "run_parallel_pipeline",
]

#: Shard split points within a file are rounded to this many records so a
#: split never lands mid decode chunk (pure I/O efficiency; correctness
#: does not depend on it).
SPLIT_ALIGN_RECORDS = 4096


@dataclass(frozen=True, slots=True)
class ShardChunk:
    """A contiguous record range of one sample file.

    ``path`` is a string (not :class:`~pathlib.Path`) so chunk lists
    pickle cheaply across the worker boundary.
    """

    path: str
    start_record: int
    n_records: int


def plan_shards(
    paths: Sequence[Path | str], workers: int
) -> list[list[ShardChunk]]:
    """Partition files' records into ``workers`` contiguous shards.

    Files are taken in the given (sorted) order; each shard receives a
    contiguous run of the global record stream, so concatenating the
    shards in index order reproduces the sequential stream exactly.
    Large files are split at :data:`SPLIT_ALIGN_RECORDS`-aligned record
    boundaries.  Shards that would be empty (more workers than records)
    are dropped.
    """
    if workers < 1:
        raise ProfilerError(f"worker count must be >= 1, got {workers}")
    counts: list[tuple[str, int]] = []
    total = 0
    for p in paths:
        with RecordFileReader(p) as reader:
            n = len(reader)
        counts.append((str(p), n))
        total += n
    if total == 0:
        return []
    per_shard = -(-total // workers)  # ceil
    shards: list[list[ShardChunk]] = [[]]
    room = per_shard
    for path, n in counts:
        taken = 0
        while taken < n:
            if room == 0:
                shards.append([])
                room = per_shard
            take = min(n - taken, room)
            remaining_after = n - taken - take
            if 0 < remaining_after and take % SPLIT_ALIGN_RECORDS:
                # Keep every intra-file split on a decode-chunk boundary:
                # round the take down to one, or — when the shard's budget
                # is smaller than a chunk — up to a whole chunk (alignment
                # wins over perfectly even shard sizes).
                aligned = take - (take % SPLIT_ALIGN_RECORDS)
                take = (
                    aligned
                    if aligned > 0
                    else min(n - taken, SPLIT_ALIGN_RECORDS)
                )
            shards[-1].append(ShardChunk(path, taken, take))
            taken += take
            room = max(0, room - take)
    return [s for s in shards if s]


# ----------------------------------------------------------------------
# the resolve loop (sequential fast path == per-shard worker loop)
# ----------------------------------------------------------------------


def consume_chunks(
    chunks: Iterable[ShardChunk],
    chain: ResolverChain,
    agg: StreamingAggregator,
) -> None:
    """Resolve every record in the given chunk ranges into ``agg``.

    This is the pipeline's hot loop.  Records arrive as raw struct-field
    tuples in batched chunks; a resolution-cache hit bypasses
    ``RawSample``/``PipelineSample`` construction entirely — the chain
    replays the cached claim's counters and the aggregate is bumped from
    the decoded fields.  Only cache misses build sample objects and walk
    the stages.  The cache key layout must match
    :meth:`ResolverChain.cache_key`; ``kernel_mode`` may be an int here
    (``1 == True`` hashes identically, so the keys unify).
    """
    for chunk in chunks:
        with RecordFileReader(chunk.path) as reader:
            event_name = reader.event_name
            has_domain = reader.codec.has_domain
            cache = chain.cache
            add_counts = agg.add_counts
            add = agg.add
            replay = chain.replay
            for fields_chunk in reader.iter_field_chunks(
                chunk.start_record, chunk.n_records
            ):
                for fields in fields_chunk:
                    pc, task, kmode, cycle, epoch = fields[:5]
                    domain = fields[5] if has_domain else None
                    if cache is not None:
                        key = (pc, epoch, kmode, task, domain)
                        entry = cache.get(key)
                        if entry is not None:
                            replay(entry)
                            add_counts(event_name, entry.image, entry.symbol)
                            continue
                    sample = PipelineSample(
                        raw=RawSample(
                            pc=pc,
                            event_name=event_name,
                            task_id=task,
                            kernel_mode=bool(kmode),
                            cycle=cycle,
                            epoch=epoch,
                        ),
                        domain_id=domain,
                    )
                    if cache is not None:
                        add(chain.resolve_miss(sample, key))
                    else:
                        add(chain.resolve(sample))


def consume_source(
    source: Iterable[object],
    chain: ResolverChain,
    agg: StreamingAggregator,
) -> None:
    """Resolve a whole source into ``agg``, using the fused fast path for
    directory-backed sources and the generic stream loop otherwise."""
    if isinstance(source, DirectorySource):
        whole_files = [
            ShardChunk(str(p), 0, _record_count(p)) for p in source.paths()
        ]
        consume_chunks(whole_files, chain, agg)
        return
    for resolved in chain.resolve_stream(source):
        agg.add(resolved)


def _record_count(path: Path | str) -> int:
    with RecordFileReader(path) as reader:
        return len(reader)


# ----------------------------------------------------------------------
# the multi-process runner
# ----------------------------------------------------------------------


def _resolve_shard_worker(
    payload: tuple[bytes, list[ShardChunk], tuple[str, ...] | None],
) -> tuple[StreamingAggregator, dict[str, object]]:
    """Worker entry: resolve one shard on a private chain copy and return
    the partial aggregate plus the chain's counter deltas."""
    chain_bytes, chunks, events = payload
    chain: ResolverChain = pickle.loads(chain_bytes)
    chain.reset_stats()
    agg = StreamingAggregator(events)
    consume_chunks(chunks, chain, agg)
    return agg, chain.export_stats()


def run_parallel_pipeline(
    source: Iterable[object],
    chain: ResolverChain,
    events: tuple[str, ...] | None,
    workers: int,
) -> StreamingAggregator:
    """Resolve a directory-backed source across ``workers`` processes.

    Returns the merged aggregator; the parent ``chain`` has absorbed every
    worker's counter deltas, so ``chain.stats_dict()`` reports the whole
    run.  Falls back to the sequential fast path when the plan yields a
    single shard (tiny inputs) — same results either way.
    """
    if not isinstance(source, DirectorySource):
        raise ProfilerError(
            "parallel resolution needs a directory-backed source "
            f"(got {type(source).__name__}); filtered or in-memory streams "
            "resolve sequentially"
        )
    try:
        chain_bytes = pickle.dumps(chain)
    except Exception as e:
        raise ProfilerError(
            f"resolver chain is not picklable for worker processes: {e}"
        ) from e
    shards = plan_shards(source.paths(), workers)
    agg = StreamingAggregator(events)
    if not shards:
        return agg
    if len(shards) == 1:
        consume_chunks(shards[0], chain, agg)
        return agg
    # fork shares the parent's loaded modules and page cache; spawn works
    # too (workers re-import repro) but pays interpreter start-up.
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    ctx = multiprocessing.get_context(method)
    payloads = [(chain_bytes, shard, events) for shard in shards]
    with ProcessPoolExecutor(
        max_workers=len(shards), mp_context=ctx
    ) as pool:
        results = list(pool.map(_resolve_shard_worker, payloads))
    # Merge in shard order: shards are contiguous in stream order, so
    # order-preserving merges reproduce the sequential first-seen order.
    for shard_agg, stats_snapshot in results:
        agg.merge(shard_agg)
        chain.absorb_stats(stats_snapshot)
    return agg
