"""Call-graph recording — one module for both flavours.

OProfile can record, for each sample, the caller chain discovered by
walking stack frames (``opcontrol --callgraph``); our engine supplies a
*stack witness* — the (caller, callee) context at the moment of the
sample — which :class:`CallGraphRecorder` turns into weighted arcs.
VIProf extends this across layers: :class:`CrossLayerCallGraph` tags each
node with its vertical layer so the report can isolate the arcs that
*cross* layer boundaries — VM internals invoking JIT code, JIT code
calling into libc, anything trapping into the kernel.  Those arcs are the
ones single-layer profilers structurally cannot see (paper §4.2; results
omitted there for brevity, implemented and exercised here).

The two flavours were formerly near-duplicate modules under
``repro.oprofile`` and ``repro.viprof``; those now re-export from here.
:func:`layered_node_for` derives a node from a resolver chain's output,
so call-graph recording composes with any chain the pipeline can build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.bootimage import RVM_MAP_IMAGE_LABEL
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.profiling.model import Layer, ResolvedSample

__all__ = [
    "NodeKey",
    "CallArc",
    "CallGraphRecorder",
    "LayeredNode",
    "CrossLayerCallGraph",
    "layered_node_for",
]

#: (image, symbol) — the node key used in arcs.
NodeKey = tuple[str, str]


@dataclass(frozen=True, slots=True)
class CallArc:
    """A directed caller→callee arc with a per-event sample count."""

    caller: NodeKey
    callee: NodeKey


@dataclass
class CallGraphRecorder:
    """Accumulates weighted call arcs from per-sample stack witnesses."""

    arcs: dict[CallArc, dict[str, int]] = field(default_factory=dict)
    self_samples: dict[NodeKey, dict[str, int]] = field(default_factory=dict)

    def record(
        self,
        caller: NodeKey | None,
        callee: NodeKey,
        event_name: str,
        count: int = 1,
    ) -> None:
        """Record ``count`` samples landing in ``callee`` while called from
        ``caller`` (None for a root frame).  The engine emits whole runs of
        identical witnesses in one call instead of looping per sample."""
        if count <= 0:
            return
        per_ev = self.self_samples.setdefault(callee, {})
        per_ev[event_name] = per_ev.get(event_name, 0) + count
        if caller is None:
            return
        arc = CallArc(caller=caller, callee=callee)
        per_ev = self.arcs.setdefault(arc, {})
        per_ev[event_name] = per_ev.get(event_name, 0) + count

    def top_arcs(self, event_name: str, limit: int = 10) -> list[tuple[CallArc, int]]:
        weighted = [
            (arc, counts.get(event_name, 0)) for arc, counts in self.arcs.items()
        ]
        weighted = [(a, n) for a, n in weighted if n > 0]
        weighted.sort(key=lambda x: (-x[1], x[0].caller, x[0].callee))
        return weighted[:limit]

    def arcs_from(self, caller: NodeKey) -> list[CallArc]:
        return [a for a in self.arcs if a.caller == caller]

    def arcs_into(self, callee: NodeKey) -> list[CallArc]:
        return [a for a in self.arcs if a.callee == callee]

    def format_table(self, event_name: str, limit: int = 10) -> str:
        lines = [f"{'samples':>8}  caller -> callee ({event_name})"]
        for arc, n in self.top_arcs(event_name, limit):
            lines.append(
                f"{n:8d}  {arc.caller[0]}:{arc.caller[1]} -> "
                f"{arc.callee[0]}:{arc.callee[1]}"
            )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class LayeredNode:
    """A call-graph node with its vertical layer."""

    layer: Layer
    image: str
    symbol: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.image, self.symbol)


def layered_node_for(resolved: ResolvedSample) -> LayeredNode:
    """The call-graph node for a resolver chain's output.

    The layer is recovered from the attribution the stages produced: the
    JIT stage labels heap samples ``JIT.App``, the boot-image stage labels
    VM samples with the RVM map image, kernel-mode samples are kernel, and
    everything else is native user code.  This is how call-graph recording
    composes with any chain the pipeline can build.
    """
    if resolved.image == JIT_APP_IMAGE_LABEL:
        layer = Layer.APP_JIT
    elif resolved.image == RVM_MAP_IMAGE_LABEL:
        layer = Layer.VM
    elif resolved.raw.kernel_mode:
        layer = Layer.KERNEL
    else:
        layer = Layer.NATIVE
    return LayeredNode(layer=layer, image=resolved.image, symbol=resolved.symbol)


@dataclass
class CrossLayerCallGraph:
    """Arc recorder that also tracks each node's layer."""

    recorder: CallGraphRecorder = field(default_factory=CallGraphRecorder)
    _layers: dict[tuple[str, str], Layer] = field(default_factory=dict)

    def record(
        self,
        caller: LayeredNode | None,
        callee: LayeredNode,
        event_name: str,
        count: int = 1,
    ) -> None:
        self._layers[callee.key] = callee.layer
        if caller is not None:
            self._layers[caller.key] = caller.layer
        self.recorder.record(
            caller.key if caller is not None else None,
            callee.key,
            event_name,
            count=count,
        )

    def layer_of(self, key: tuple[str, str]) -> Layer | None:
        return self._layers.get(key)

    def cross_layer_arcs(
        self, event_name: str
    ) -> list[tuple[CallArc, int, Layer, Layer]]:
        """Arcs whose endpoints live in different layers, weighted by
        samples for ``event_name``, heaviest first."""
        out: list[tuple[CallArc, int, Layer, Layer]] = []
        for arc, counts in self.recorder.arcs.items():
            n = counts.get(event_name, 0)
            if n <= 0:
                continue
            l_from = self._layers.get(arc.caller)
            l_to = self._layers.get(arc.callee)
            if l_from is None or l_to is None or l_from is l_to:
                continue
            out.append((arc, n, l_from, l_to))
        out.sort(key=lambda x: (-x[1], x[0].caller, x[0].callee))
        return out

    def layer_transition_matrix(self, event_name: str) -> dict[tuple[Layer, Layer], int]:
        """Aggregate sample counts over (caller layer, callee layer) pairs."""
        matrix: dict[tuple[Layer, Layer], int] = {}
        for arc, counts in self.recorder.arcs.items():
            n = counts.get(event_name, 0)
            if n <= 0:
                continue
            l_from = self._layers.get(arc.caller)
            l_to = self._layers.get(arc.callee)
            if l_from is None or l_to is None:
                continue
            matrix[(l_from, l_to)] = matrix.get((l_from, l_to), 0) + n
        return matrix

    def format_cross_layer_table(self, event_name: str, limit: int = 12) -> str:
        lines = [f"{'samples':>8}  layer:caller -> layer:callee ({event_name})"]
        for arc, n, l_from, l_to in self.cross_layer_arcs(event_name)[:limit]:
            lines.append(
                f"{n:8d}  {l_from.value}:{arc.caller[1]} -> "
                f"{l_to.value}:{arc.callee[1]}"
            )
        return "\n".join(lines)
