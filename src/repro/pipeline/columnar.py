"""Columnar (batch) sample resolution — the deduplicated hot loop.

The scalar loop (:func:`repro.pipeline.parallel.consume_chunks`) pays the
full per-sample cost even when a decode chunk is thousands of repeats of a
few dozen PCs — which is what profiles look like.  The columnar path works
per **decode chunk** instead of per sample:

1. **Group.**  The chunk's field tuples are folded into a first-seen-order
   ``{cache key: count}`` dict — one dict op per sample, nothing else on
   the per-sample path.  The key is the resolution-cache key,
   ``(pc, epoch, kernel_mode, task_id, domain_id)``.
2. **Probe once per distinct key.**  With the cache enabled, each distinct
   key costs one LRU probe (counted as exactly one hit or miss, like the
   scalar loop's first encounter of the key in this chunk).
3. **Bucket + batch-walk the misses.**  Missing keys are sorted and
   bucketed by ``(epoch, kernel_mode, task_id, domain_id)``; each bucket
   is one ascending PC run, resolved by one chain walk
   (:meth:`~repro.pipeline.resolver.ResolverChain.resolve_key_run`) in
   which the JIT stage answers the whole run with a single batched
   backward epoch walk over the ``IntervalIndex`` instead of a walk per
   sample.
4. **Bulk replay + aggregate.**  Duplicates are accounted with
   :meth:`~repro.pipeline.resolver.ResolverChain.replay_bulk` and folded
   into the aggregate with one ``add_counts(..., n)`` per group, iterating
   groups in first-seen order so row/event insertion order — the report's
   sort tie-break — matches the scalar pass exactly.

**Why this is byte- and stats-identical to the scalar loop.**  Resolution
is a pure function of the cache key (the cache-soundness argument in
:mod:`repro.pipeline.cache`), so resolving one representative per key and
replaying the duplicates produces the same rows and the same counters:
replay re-applies precisely the per-stage and detail deltas the repeated
walks would have made, and group-order aggregation preserves first-seen
row order.  Parity is pinned by the golden fixtures
(``tests/pipeline/test_columnar.py``).

One observable difference is allowed and documented: LRU *recency*.  The
columnar path touches each distinct key once per chunk, so under eviction
pressure the cache may retain a different entry set than the scalar loop
would (hit/miss totals still agree while the distinct-key working set
fits the cache, the sized-for case).  Chains with a stage that owns inner
chains (the Xen domain dispatcher) cannot replay inner counters, so they
fall back to the scalar loop — the same rule that disables their outer
cache (``ResolverChain.supports_columnar``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.cache import CachedResolution
    from repro.pipeline.resolver import ResolverChain
    from repro.profiling.report import StreamingAggregator

__all__ = ["resolve_column_chunk", "resolve_key_runs"]


def _bucket_sort_key(key: tuple) -> tuple:
    # Bucket id first (epoch, kernel_mode, task, domain), ascending pc
    # within the bucket.  domain_id is None for single-stack codecs; map
    # it below any real domain so the sort never compares None with int.
    pc, epoch, kmode, task, domain = key
    return (epoch, kmode, task, -1 if domain is None else domain, pc)


def resolve_key_runs(
    chain: "ResolverChain",
    miss_keys: list[tuple],
    event_name: str,
) -> dict[tuple, "CachedResolution"]:
    """Resolve distinct cache keys by bucketed ascending-PC runs.

    Sorts the keys once, slices them into per-bucket runs (shared
    ``(epoch, kernel_mode, task_id, domain_id)``), and walks the chain
    once per run.  Returns entries keyed by input key; counter deltas
    equal one scalar walk per key.
    """
    miss_keys.sort(key=_bucket_sort_key)
    entries: dict[tuple, CachedResolution] = {}
    n = len(miss_keys)
    start = 0
    while start < n:
        bucket_id = miss_keys[start][1:]
        end = start + 1
        while end < n and miss_keys[end][1:] == bucket_id:
            end += 1
        entries.update(
            chain.resolve_key_run(miss_keys[start:end], event_name)
        )
        start = end
    return entries


def resolve_column_chunk(
    fields_chunk: Sequence[tuple],
    has_domain: bool,
    event_name: str,
    chain: "ResolverChain",
    agg: "StreamingAggregator",
) -> None:
    """Resolve one decoded field chunk into ``agg`` the columnar way.

    ``fields_chunk`` is a batch of raw struct-field tuples
    ``(pc, task_id, kernel_mode, cycle, epoch[, domain_id])`` as yielded
    by :meth:`~repro.profiling.record_codec.RecordFileReader.iter_field_chunks`.
    """
    groups: dict[tuple, int] = {}
    get = groups.get
    if has_domain:
        for f in fields_chunk:
            key = (f[0], f[4], f[2], f[1], f[5])
            groups[key] = get(key, 0) + 1
    else:
        for f in fields_chunk:
            key = (f[0], f[4], f[2], f[1], None)
            groups[key] = get(key, 0) + 1

    cache = chain.cache
    entries: dict[tuple, CachedResolution] = {}
    if cache is not None:
        miss_keys: list[tuple] = []
        probe = cache.get
        for key in groups:
            entry = probe(key)  # counts exactly one hit or miss per key
            if entry is None:
                miss_keys.append(key)
            else:
                entries[key] = entry
    else:
        miss_keys = list(groups)
    if miss_keys:
        was_missed = set(miss_keys)
        entries.update(resolve_key_runs(chain, miss_keys, event_name))
    else:
        was_missed = ()

    add_counts = agg.add_counts
    replay_bulk = chain.replay_bulk
    if cache is not None:
        count_bulk_hits = cache.count_bulk_hits
        for key, count in groups.items():
            entry = entries[key]
            # Scalar accounting for a group of `count` samples: the first
            # encounter was already counted by the probe (a hit replaying
            # nothing extra here, or a miss whose full walk just counted
            # itself once); every duplicate is a cache hit plus a replay.
            if count > 1:
                count_bulk_hits(count - 1)
            replay_bulk(entry, count if key not in was_missed else count - 1)
            add_counts(event_name, entry.image, entry.symbol, count)
    else:
        for key, count in groups.items():
            entry = entries[key]
            replay_bulk(entry, count - 1)
            add_counts(event_name, entry.image, entry.symbol, count)
