"""The streaming sample-resolution pipeline.

One vocabulary for every profile in the tree: a *source* streams samples
(:mod:`repro.pipeline.source`), a *resolver chain* of ordered stages maps
each PC to an (image, symbol) attribution with per-stage hit/miss
counters (:mod:`repro.pipeline.stages`, :mod:`repro.pipeline.resolver`),
and a single-pass constant-memory aggregator folds the resolved stream
into a report (:mod:`repro.pipeline.aggregate`).

The three report flavours are nothing but chain compositions:

* :func:`opreport_chain` — kernel symbols, then task VMAs (stock
  ``opreport``);
* :func:`viprof_chain` — kernel, JIT epoch maps, RVM boot image, task
  VMAs (the paper's vertically integrated profile);
* :func:`xen_domain_chain` / a :class:`~repro.pipeline.stages.DomainDispatchStage`
  over per-domain chains behind a :class:`~repro.pipeline.stages.HypervisorStage`
  (XenoProf multi-stack).

``repro.oprofile.opreport``, ``repro.viprof.postprocess``, and
``repro.xen.xenoprof`` are thin wrappers over these compositions — there
is exactly one "PC → symbol" code path in the tree, and it is here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.pipeline.aggregate import run_pipeline
from repro.pipeline.cache import (
    DEFAULT_RESOLVE_CACHE_SIZE,
    CachedResolution,
    ResolutionCache,
)
from repro.pipeline.callgraph import (
    CallArc,
    CallGraphRecorder,
    CrossLayerCallGraph,
    LayeredNode,
    NodeKey,
    layered_node_for,
)
from repro.pipeline.parallel import (
    ShardChunk,
    consume_source,
    plan_shards,
    run_parallel_pipeline,
)
from repro.pipeline.resolver import ResolverChain, StageStats
from repro.pipeline.source import (
    DirectorySource,
    PipelineSample,
    as_pipeline_sample,
    file_source,
    iter_pipeline_samples,
)
from repro.pipeline.stages import (
    UNKNOWN_IMAGE,
    UNRESOLVED_JIT,
    BootImageStage,
    DomainDispatchStage,
    FallbackStage,
    HypervisorStage,
    JitEpochStage,
    JitStageStats,
    KernelSymbolStage,
    ResolverStage,
    TaskVmaStage,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.jvm.bootimage import RvmMap
    from repro.os.kernel import Kernel
    from repro.viprof.codemap import CodeMapIndex
    from repro.viprof.runtime_profiler import VmRegistration
    from repro.xen.hypervisor import Hypervisor

__all__ = [
    "PipelineSample",
    "as_pipeline_sample",
    "iter_pipeline_samples",
    "file_source",
    "DirectorySource",
    "ResolverStage",
    "KernelSymbolStage",
    "JitEpochStage",
    "JitStageStats",
    "BootImageStage",
    "TaskVmaStage",
    "HypervisorStage",
    "DomainDispatchStage",
    "FallbackStage",
    "UNKNOWN_IMAGE",
    "UNRESOLVED_JIT",
    "ResolverChain",
    "StageStats",
    "run_pipeline",
    "DEFAULT_RESOLVE_CACHE_SIZE",
    "CachedResolution",
    "ResolutionCache",
    "ShardChunk",
    "plan_shards",
    "consume_source",
    "run_parallel_pipeline",
    "NodeKey",
    "CallArc",
    "CallGraphRecorder",
    "LayeredNode",
    "CrossLayerCallGraph",
    "layered_node_for",
    "opreport_chain",
    "viprof_chain",
    "xen_domain_chain",
    "xen_chain",
]


def opreport_chain(kernel: "Kernel") -> ResolverChain:
    """Stock ``opreport`` resolution: kernel symbols, then task VMAs."""
    return ResolverChain([KernelSymbolStage(kernel), TaskVmaStage(kernel)])


def viprof_chain(
    kernel: "Kernel",
    codemaps: "CodeMapIndex",
    rvm_map: "RvmMap",
    registrations: Iterable["VmRegistration"],
    backward: bool = True,
    strict: bool = True,
) -> ResolverChain:
    """The paper's vertically integrated resolution: kernel symbols, JIT
    epoch maps (backward walk), RVM boot image, then task VMAs.

    ``strict=False`` builds the degraded post-salvage flavour: epoch
    walks blocked at a quarantine barrier fall to ``(unresolved jit)``
    and are counted, instead of raising.
    """
    return ResolverChain(
        [
            KernelSymbolStage(kernel),
            JitEpochStage(
                codemaps, registrations, backward=backward, strict=strict
            ),
            BootImageStage(kernel, rvm_map),
            TaskVmaStage(kernel),
        ]
    )


def xen_domain_chain(
    kernel: "Kernel",
    codemaps: "CodeMapIndex",
    rvm_map: "RvmMap",
    registrations: Iterable["VmRegistration"],
    backward: bool = True,
    strict: bool = True,
) -> ResolverChain:
    """One guest domain's resolution inside a multi-stack profile — the
    VIProf chain, scoped to that domain's kernel and VM state."""
    return viprof_chain(
        kernel, codemaps, rvm_map, registrations, backward, strict=strict
    )


def xen_chain(
    hypervisor: "Hypervisor", domain_chains: Mapping[int, ResolverChain]
) -> ResolverChain:
    """XenoProf multi-stack resolution: hypervisor addresses first, then
    dispatch on the sample's domain tag to that domain's own chain."""
    return ResolverChain(
        [HypervisorStage(hypervisor), DomainDispatchStage(domain_chains)]
    )
