"""Epoch-aware PC resolution memoization.

Profiles have extreme PC locality — a hot loop delivers the same
interrupted PC thousands of times — so the resolver chain keeps a bounded
LRU cache in front of the stage walk, keyed on
``(pc, epoch, kernel_mode, task_id, domain_id)``.

**Why the key is sound.**  Every input a stage consults is immutable
during a post-processing pass: symbol tables, VMA sets, and boot-image
maps are the session's final snapshot, and the epoch code maps are
immutable *per epoch* — the backward epoch-walk for ``(epoch, pc)`` can
never change once the session's maps are on disk.  The one time-varying
input the profiler tracks (which JIT method occupied an address) is
exactly what the epoch stamp captures, so putting ``epoch`` in the key
makes even a cached ``(unresolved jit)`` verdict permanent: map *e* and
everything below it will never gain the address.  ``domain_id`` keeps
multi-stack (Xen) streams from aliasing across guests.

A cache entry records *how* the chain resolved the sample — which stage
claimed it and any stage-detail token (the JIT own/earlier-epoch split) —
so a hit replays the exact per-stage counter updates the full walk would
have made.  Cached reports are therefore byte-identical to uncached ones,
statistics included (golden-parity tested).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ProfilerError

__all__ = [
    "DEFAULT_RESOLVE_CACHE_SIZE",
    "CachedResolution",
    "ResolutionCache",
]

#: Default entry bound for a chain's resolution cache.  Sized for the
#: distinct-PC working set of a long session (hot profiles concentrate on
#: far fewer PCs); one entry is a small tuple-keyed dataclass, so the
#: worst-case footprint is a few MB.
DEFAULT_RESOLVE_CACHE_SIZE = 1 << 16


@dataclass(frozen=True, slots=True)
class CachedResolution:
    """The outcome of one full stage walk, replayable on later hits.

    ``claim_index`` is the position of the claiming stage in the chain
    (``len(stages)`` for the terminal fallback); ``token`` is the claiming
    stage's opaque detail token (see
    :meth:`~repro.pipeline.stages.ResolverStage.claim_token`), replayed so
    stage-local counters stay exact.
    """

    image: str
    symbol: str
    offset: int
    claim_index: int
    token: object | None = None


class ResolutionCache:
    """Bounded LRU map from sample key to :class:`CachedResolution`."""

    __slots__ = ("capacity", "hits", "misses", "_entries", "_absorbed_size")

    def __init__(self, capacity: int = DEFAULT_RESOLVE_CACHE_SIZE) -> None:
        if capacity <= 0:
            raise ProfilerError(f"non-positive cache capacity {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Largest entry count reported by any absorbed worker cache (see
        #: :meth:`absorb_counters`); 0 until a parallel run merges in.
        self._absorbed_size = 0
        self._entries: OrderedDict[tuple, CachedResolution] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> CachedResolution | None:
        """Look a key up, counting the hit/miss and refreshing recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, entry: CachedResolution) -> None:
        entries = self._entries
        entries[key] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def count_bulk_hits(self, n: int) -> None:
        """Count ``n`` additional hits against an entry the caller already
        looked up — the columnar path probes once per distinct key and
        bulk-counts the duplicates so totals match the per-sample loop."""
        self.hits += n

    def export_warm(self, top_k: int) -> list[tuple[tuple, CachedResolution]]:
        """The ``top_k`` most-recently-used entries, **coldest first**.

        That order lets a receiver :meth:`seed` them one by one and end up
        with the same relative recency this cache had — the hottest key is
        the last seeded, so it is also the last evicted.  Used by the
        parallel scheduler to warm shard workers with the parent's hot
        set before the workers fork.
        """
        if top_k <= 0:
            return []
        entries = self._entries
        start = max(0, len(entries) - top_k)
        items = list(entries.items())[start:]
        return items

    def seed(self, entries: Iterable[tuple[tuple, CachedResolution]]) -> None:
        """Pre-warm with already-resolved entries, touching **no**
        counters: a seeded entry was resolved (and counted) by whoever
        exported it.  Later :meth:`get` probes count normally — which is
        exactly why warm-started workers report *more* hits and *fewer*
        misses, never different totals.
        """
        for key, entry in entries:
            self.put(key, entry)

    def __getstate__(self) -> dict:
        """Pickle counters and geometry, **not** the entry table.

        A pickled cache travels to a shard worker, which immediately
        zeroes its state (``ResolverChain.reset_stats``) — shipping the
        parent's whole LRU dict would be pure serialization cost.  Warm
        state travels separately (and bounded) via :meth:`export_warm`.
        """
        return {
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "_absorbed_size": self._absorbed_size,
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self._absorbed_size = state["_absorbed_size"]
        self._entries = OrderedDict()

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._absorbed_size = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping the entries warm."""
        self.hits = 0
        self.misses = 0
        self._absorbed_size = 0

    def absorb_counters(self, hits: int, misses: int, size: int = 0) -> None:
        """Fold a worker cache's counters into this one (stat merging).

        ``size`` is the worker cache's entry count at export time.  Worker
        caches are private copies warmed over overlapping key sets, so
        sizes are **not** additive — summing would double-count every hot
        key shared between shards.  The merged ``size`` therefore reports
        the *maximum* single-worker working set, a lower bound on the
        distinct-key population that is exact when one worker saw every
        key.
        """
        self.hits += hits
        self.misses += misses
        self._absorbed_size = max(self._absorbed_size, size)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def merged_size(self) -> int:
        """Entry count including absorbed workers: the parent's own
        entries, or — after a parallel run leaves the parent cache cold —
        the largest absorbed worker working set."""
        return max(len(self._entries), self._absorbed_size)

    def stats_dict(self) -> dict[str, int | float]:
        return {
            "capacity": self.capacity,
            "size": self.merged_size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
