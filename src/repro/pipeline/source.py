"""Sample sources — the streaming input side of the resolution pipeline.

A *source* is anything iterable that yields :class:`PipelineSample`: the
core sample record plus the optional domain tag.  Sources never
materialize the sample stream; files are decoded chunk by chunk through
the shared record codec (:mod:`repro.profiling.record_codec`), so the
pipeline's memory use is constant in the number of samples.

Three sources cover every consumer in the tree:

* :class:`DirectorySource` — a session's per-event sample files
  (``opreport``/VIProf post-processing, any codec mix);
* :func:`file_source` — one sample file of any registered format;
* :func:`iter_pipeline_samples` — adapts in-memory streams
  (:class:`~repro.profiling.model.RawSample` iterables, XenoProf buffers)
  into the pipeline's sample shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ProfilerError
from repro.profiling.model import RawSample
from repro.profiling.record_codec import open_sample_record_file

__all__ = [
    "PipelineSample",
    "as_pipeline_sample",
    "iter_pipeline_samples",
    "file_source",
    "DirectorySource",
]


@dataclass(frozen=True, slots=True)
class PipelineSample:
    """One sample flowing through the pipeline.

    ``domain_id`` is None for single-stack profiles; multi-stack (Xen)
    streams tag each sample with the domain that was running, and the
    domain-dispatch stage routes on it.
    """

    raw: RawSample
    domain_id: int | None = None


def as_pipeline_sample(obj: object) -> PipelineSample:
    """Coerce a raw sample, a domain-tagged sample (anything with ``raw``
    and ``domain_id`` attributes, e.g. ``XenoSample``), or an existing
    :class:`PipelineSample` into the pipeline's sample shape."""
    if isinstance(obj, PipelineSample):
        return obj
    if isinstance(obj, RawSample):
        return PipelineSample(raw=obj)
    raw = getattr(obj, "raw", None)
    if isinstance(raw, RawSample):
        return PipelineSample(raw=raw, domain_id=getattr(obj, "domain_id", None))
    raise ProfilerError(f"cannot adapt {obj!r} into a pipeline sample")


def iter_pipeline_samples(samples: Iterable[object]) -> Iterator[PipelineSample]:
    """Stream any mix of sample shapes as :class:`PipelineSample`."""
    for s in samples:
        yield as_pipeline_sample(s)


def file_source(path: Path | str) -> Iterator[PipelineSample]:
    """Stream one sample file of any registered codec (magic-sniffed).

    The reader is a context manager; its handle is released as soon as
    the file is drained (or the generator is closed early).
    """
    with open_sample_record_file(path) as reader:
        for record in reader:
            yield PipelineSample(raw=record.sample, domain_id=record.domain_id)


class DirectorySource:
    """Streams every sample from a session's per-event sample files.

    Files are visited in sorted name order and decoded through the codec
    registry, so a directory may mix core and domain-tagged files.  The
    source is re-iterable; each iteration re-opens the files.

    For parallel resolution, :meth:`shards` partitions the directory's
    records — whole files, and large files by record-chunk ranges — into
    contiguous, disjoint shards (see :mod:`repro.pipeline.parallel`).
    """

    def __init__(self, sample_dir: Path | str, pattern: str = "*.samples") -> None:
        self.sample_dir = Path(sample_dir)
        self.pattern = pattern
        if not self.sample_dir.is_dir():
            raise ProfilerError(f"no sample directory {self.sample_dir}")

    def paths(self) -> list[Path]:
        paths = sorted(self.sample_dir.glob(self.pattern))
        if not paths:
            raise ProfilerError(f"no sample files in {self.sample_dir}")
        return paths

    def __iter__(self) -> Iterator[PipelineSample]:
        for path in self.paths():
            yield from file_source(path)

    def shards(self, workers: int) -> "list[list]":
        """Partition the directory's records into ``workers`` contiguous
        shards of :class:`~repro.pipeline.parallel.ShardChunk` ranges."""
        from repro.pipeline.parallel import plan_shards

        return plan_shards(self.paths(), workers)

    def event_names(self) -> tuple[str, ...]:
        """Event column order: the time event first (as the paper's tables
        print it), then the rest alphabetically."""
        names = []
        for p in self.paths():
            with open_sample_record_file(p) as reader:
                names.append(reader.event_name)
        return tuple(
            sorted(names, key=lambda n: (n != "GLOBAL_POWER_EVENTS", n))
        )
