"""Single-pass streaming aggregation: source → chain → report.

:func:`run_pipeline` is the whole pipeline in one call: it streams samples
out of a source, resolves each through the chain, and folds them into a
:class:`~repro.profiling.report.StreamingAggregator` — never holding more
than one sample (plus the aggregate's per-symbol rows) in memory.
"""

from __future__ import annotations

from typing import Iterable

from repro.pipeline.resolver import ResolverChain
from repro.profiling.report import ProfileReport, StreamingAggregator

__all__ = ["run_pipeline"]


def run_pipeline(
    source: Iterable[object],
    chain: ResolverChain,
    events: tuple[str, ...] | None = None,
) -> ProfileReport:
    """Resolve and aggregate a sample stream in one constant-memory pass.

    ``source`` may yield raw, domain-tagged, or pipeline samples (any
    shape :func:`~repro.pipeline.source.as_pipeline_sample` accepts);
    ``events`` fixes the report's column order and drops other events.
    """
    agg = StreamingAggregator(events)
    for resolved in chain.resolve_stream(source):
        agg.add(resolved)
    return agg.report()
