"""Single-pass streaming aggregation: source → chain → report.

:func:`run_pipeline` is the whole pipeline in one call: it streams samples
out of a source, resolves each through the chain, and folds them into a
:class:`~repro.profiling.report.StreamingAggregator` — never holding more
than one decode chunk (plus the aggregate's per-symbol rows) in memory.

``workers=N`` shards a directory-backed source across ``N`` worker
processes (:mod:`repro.pipeline.parallel`); the merged output is
byte-identical to the sequential pass, statistics included.
"""

from __future__ import annotations

from typing import Iterable

from repro.pipeline.resolver import ResolverChain
from repro.profiling.report import ProfileReport, StreamingAggregator

__all__ = ["run_pipeline"]


def run_pipeline(
    source: Iterable[object],
    chain: ResolverChain,
    events: tuple[str, ...] | None = None,
    workers: int | str = 1,
    columnar: bool = True,
    warm_top_k: int | bool | None = None,
) -> ProfileReport:
    """Resolve and aggregate a sample stream in one constant-memory pass.

    ``source`` may yield raw, domain-tagged, or pipeline samples (any
    shape :func:`~repro.pipeline.source.as_pipeline_sample` accepts);
    ``events`` fixes the report's column order and drops other events.
    ``workers > 1`` requires a :class:`~repro.pipeline.source.DirectorySource`
    (sharding needs record-addressable files); ``workers="auto"`` picks a
    count from the machine's core count (1 on a single-core box).  After
    the run the chain's ``stats_dict()`` covers the whole stream either
    way.  ``columnar`` selects the deduplicated batch resolution path
    (byte-identical output; see :mod:`repro.pipeline.columnar`).
    ``warm_top_k`` seeds shard workers with the parent cache's hottest
    entries (see :func:`~repro.pipeline.parallel.run_parallel_pipeline`);
    the sequential path ignores it — the parent cache *is* the cache.
    """
    from repro.pipeline.parallel import (
        consume_source,
        resolve_workers,
        run_parallel_pipeline,
    )

    workers = resolve_workers(workers)
    if workers > 1:
        agg = run_parallel_pipeline(
            source,
            chain,
            events,
            workers,
            columnar=columnar,
            warm_top_k=warm_top_k,
        )
    else:
        agg = StreamingAggregator(events)
        consume_source(source, chain, agg, columnar=columnar)
    return agg.report()
