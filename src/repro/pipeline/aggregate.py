"""Single-pass streaming aggregation: source → chain → report.

:func:`run_pipeline` is the whole pipeline in one call: it streams samples
out of a source, resolves each through the chain, and folds them into a
:class:`~repro.profiling.report.StreamingAggregator` — never holding more
than one decode chunk (plus the aggregate's per-symbol rows) in memory.

``workers=N`` shards a directory-backed source across ``N`` worker
processes (:mod:`repro.pipeline.parallel`); the merged output is
byte-identical to the sequential pass, statistics included.
"""

from __future__ import annotations

from typing import Iterable

from repro.pipeline.resolver import ResolverChain
from repro.profiling.report import ProfileReport, StreamingAggregator

__all__ = ["run_pipeline"]


def run_pipeline(
    source: Iterable[object],
    chain: ResolverChain,
    events: tuple[str, ...] | None = None,
    workers: int = 1,
) -> ProfileReport:
    """Resolve and aggregate a sample stream in one constant-memory pass.

    ``source`` may yield raw, domain-tagged, or pipeline samples (any
    shape :func:`~repro.pipeline.source.as_pipeline_sample` accepts);
    ``events`` fixes the report's column order and drops other events.
    ``workers > 1`` requires a :class:`~repro.pipeline.source.DirectorySource`
    (sharding needs record-addressable files); after the run the chain's
    ``stats_dict()`` covers the whole stream either way.
    """
    from repro.pipeline.parallel import consume_source, run_parallel_pipeline

    if workers > 1:
        agg = run_parallel_pipeline(source, chain, events, workers)
    else:
        agg = StreamingAggregator(events)
        consume_source(source, chain, agg)
    return agg.report()
