"""The resolver chain: ordered stages with per-stage hit/miss counters.

A :class:`ResolverChain` is the pipeline's "PC → symbol" engine.  Samples
are offered to each stage in order; the first stage to return a resolved
sample claims it and the chain's counters record which stage that was.
Samples no stage claims fall through to the terminal fallback stage
(``(unknown)`` attribution by default).

The counters subsume the old ad-hoc ``JitResolutionStats``: every report
now exposes the same per-stage accounting (:meth:`ResolverChain.stats` /
:meth:`ResolverChain.stats_dict`), and stages with richer detail (the JIT
epoch stage's own/earlier-epoch split) contribute it through their
``detail_dict`` hook.

Two performance features live here:

* a bounded LRU **resolution cache** in front of the stage walk
  (:mod:`repro.pipeline.cache`), keyed on
  ``(pc, epoch, kernel_mode, task_id, domain_id)``.  Hits replay the
  exact counter updates the full walk would have made, so cached and
  uncached runs produce byte-identical reports *and* statistics;
* **mergeable statistics** (:meth:`StageStats.merge`,
  :meth:`ResolverChain.export_stats` / :meth:`ResolverChain.absorb_stats`)
  so shard workers (:mod:`repro.pipeline.parallel`) can resolve disjoint
  sample ranges on chain copies and fold their counters back exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ProfilerError
from repro.pipeline.cache import (
    DEFAULT_RESOLVE_CACHE_SIZE,
    CachedResolution,
    ResolutionCache,
)
from repro.pipeline.source import PipelineSample, iter_pipeline_samples
from repro.pipeline.stages import FallbackStage, ResolverStage
from repro.profiling.model import RawSample, ResolvedSample

__all__ = ["StageStats", "ResolverChain"]


@dataclass
class StageStats:
    """Hit/miss counters for one stage of a chain.

    ``hits`` counts samples the stage claimed; ``misses`` counts samples it
    was offered and passed down the chain.  ``terminal`` marks a stage that
    *cannot* pass a sample on (the chain's fallback): its misses are zero
    by construction — ``offered == hits`` — and :meth:`check` asserts that
    invariant rather than leaving the uncounted misses implicit.
    """

    name: str
    hits: int = 0
    misses: int = 0
    terminal: bool = False

    @property
    def offered(self) -> int:
        return self.hits + self.misses

    def check(self) -> "StageStats":
        """Assert the terminality invariant (``offered == hits`` for a
        terminal stage); returns self for chaining."""
        if self.terminal and self.misses:
            raise ProfilerError(
                f"terminal stage {self.name!r} recorded {self.misses} "
                "misses; a fallback claims every sample it is offered"
            )
        return self

    def merge(self, other: "StageStats") -> "StageStats":
        """Fold another shard's counters for the *same* stage into this
        one, in place.  Merging is exact: counters are pure sums."""
        if other.name != self.name or other.terminal != self.terminal:
            raise ProfilerError(
                f"cannot merge stats for stage {other.name!r} "
                f"(terminal={other.terminal}) into {self.name!r} "
                f"(terminal={self.terminal})"
            )
        other.check()
        self.hits += other.hits
        self.misses += other.misses
        return self

    def __add__(self, other: "StageStats") -> "StageStats":
        return StageStats(
            self.name, self.hits, self.misses, self.terminal
        ).merge(other)


class ResolverChain:
    """Ordered resolver stages plus a terminal fallback.

    The chain is the only place resolution order lives: ``opreport``,
    VIProf, and XenoProf reports differ solely in the stage list they are
    built from (see the composition helpers in :mod:`repro.pipeline`).

    ``cache_size`` bounds the chain's resolution cache; 0 disables it.
    Chains containing a stage that routes to *inner* chains with their own
    counters (``owns_inner_chains``, e.g. the Xen domain dispatcher) never
    cache at this level — a hit here could not replay the inner chains'
    counters — but the inner chains cache normally.
    """

    def __init__(
        self,
        stages: Sequence[ResolverStage],
        fallback: ResolverStage | None = None,
        cache_size: int = DEFAULT_RESOLVE_CACHE_SIZE,
    ) -> None:
        self.stages = list(stages)
        self.fallback = fallback if fallback is not None else FallbackStage()
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ProfilerError(f"duplicate stage names in chain: {names}")
        self._by_name = {s.name: s for s in self.stages}
        self._by_name[self.fallback.name] = self.fallback
        if len(self._by_name) != len(self.stages) + 1:
            raise ProfilerError(
                f"fallback stage name {self.fallback.name!r} collides "
                f"with a chain stage"
            )
        # Ordered stats: one per stage, fallback (terminal) last.
        self._stats_list = [StageStats(s.name) for s in self.stages]
        self._stats_list.append(StageStats(self.fallback.name, terminal=True))
        self._stats = {st.name: st for st in self._stats_list}
        cacheable = not any(
            getattr(s, "owns_inner_chains", False) for s in self.stages
        )
        self.cache: ResolutionCache | None = (
            ResolutionCache(cache_size) if cache_size > 0 and cacheable else None
        )
        #: Columnar (deduplicated) resolution relies on the same soundness
        #: property as caching: replaying one walk's counters stands in for
        #: repeating it.  A stage owning inner chains breaks that (the
        #: replay cannot reach the inner counters), so such chains resolve
        #: per sample even when the caller asks for the columnar path.
        self.supports_columnar: bool = cacheable

    def stage(self, name: str) -> ResolverStage:
        """Look a stage up by name (e.g. ``chain.stage("jit-epoch")``)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProfilerError(f"no stage named {name!r} in chain") from None

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    @staticmethod
    def cache_key(sample: PipelineSample) -> tuple:
        """The sample's resolution-cache key.  Everything any stage reads
        from a sample is in here (see :mod:`repro.pipeline.cache` for the
        correctness argument); ``cycle`` and ``event_name`` are not,
        because no stage consults them."""
        raw = sample.raw
        return (
            raw.pc, raw.epoch, raw.kernel_mode, raw.task_id, sample.domain_id
        )

    def _resolve_uncached(
        self, sample: PipelineSample
    ) -> tuple[ResolvedSample, int, object | None]:
        """The full stage walk.  Returns the resolved sample, the claiming
        stage's index (``len(stages)`` for the fallback), and the claiming
        stage's detail token for cache replay."""
        stats = self._stats_list
        for i, s in enumerate(self.stages):
            resolved = s.resolve(sample)
            st = stats[i]
            if resolved is not None:
                st.hits += 1
                return resolved, i, s.claim_token()
            st.misses += 1
        resolved = self.fallback.resolve(sample)
        if resolved is None:  # a fallback must be terminal
            raise ProfilerError(
                f"fallback stage {self.fallback.name!r} declined a sample"
            )
        stats[-1].hits += 1
        return resolved, len(self.stages), self.fallback.claim_token()

    def replay(self, entry: CachedResolution) -> None:
        """Re-apply the counter updates a cached walk would have made:
        a miss for every stage above the claimant, a hit for the claimant,
        and the claimant's own detail counters via its token."""
        stats = self._stats_list
        idx = entry.claim_index
        for i in range(idx):
            stats[i].misses += 1
        stats[idx].hits += 1
        if entry.token is not None:
            claimant = (
                self.fallback if idx == len(self.stages) else self.stages[idx]
            )
            claimant.replay_token(entry.token)

    def replay_bulk(self, entry: CachedResolution, n: int) -> None:
        """:meth:`replay` for ``n`` identical samples in one shot: the
        columnar path resolves each distinct key once and replays the
        duplicates in bulk.  Counter deltas equal ``n`` scalar replays."""
        if n <= 0:
            return
        stats = self._stats_list
        idx = entry.claim_index
        for i in range(idx):
            stats[i].misses += n
        stats[idx].hits += n
        if entry.token is not None:
            claimant = (
                self.fallback if idx == len(self.stages) else self.stages[idx]
            )
            claimant.replay_token_bulk(entry.token, n)

    def resolve_key_run(
        self, keys: Sequence[tuple], event_name: str
    ) -> dict[tuple, CachedResolution]:
        """Walk the stages once for a bucket of **distinct** cache keys
        sharing ``(epoch, kernel_mode, task_id, domain_id)``, with PCs
        ascending (the columnar resolver's bucket shape).

        Each key is offered down the chain exactly as one scalar walk
        would be — stages that implement :meth:`ResolverStage.resolve_group`
        (the JIT epoch stage) answer the whole remaining bucket with one
        batched probe; others are offered samples one by one.  Counter
        deltas equal one scalar walk per key.  Results are cached (when
        the chain caches) and returned keyed by input key.
        """
        samples = [
            PipelineSample(
                raw=RawSample(
                    pc=key[0],
                    event_name=event_name,
                    task_id=key[3],
                    kernel_mode=bool(key[2]),
                    cycle=0,
                    epoch=key[1],
                ),
                domain_id=key[4],
            )
            for key in keys
        ]
        entries: dict[tuple, CachedResolution] = {}
        stats = self._stats_list
        pending = list(range(len(keys)))
        for idx, stage in enumerate(self.stages):
            if not pending:
                break
            group = stage.resolve_group([samples[i] for i in pending])
            still: list[int] = []
            if group is not None:
                for i, res in zip(pending, group):
                    if res is None:
                        still.append(i)
                        continue
                    resolved, token = res
                    entries[keys[i]] = CachedResolution(
                        image=resolved.image,
                        symbol=resolved.symbol,
                        offset=resolved.offset,
                        claim_index=idx,
                        token=token,
                    )
            else:
                for i in pending:
                    resolved = stage.resolve(samples[i])
                    if resolved is None:
                        still.append(i)
                        continue
                    entries[keys[i]] = CachedResolution(
                        image=resolved.image,
                        symbol=resolved.symbol,
                        offset=resolved.offset,
                        claim_index=idx,
                        token=stage.claim_token(),
                    )
            st = stats[idx]
            st.hits += len(pending) - len(still)
            st.misses += len(still)
            pending = still
        fallback_index = len(self.stages)
        for i in pending:
            resolved = self.fallback.resolve(samples[i])
            if resolved is None:  # a fallback must be terminal
                raise ProfilerError(
                    f"fallback stage {self.fallback.name!r} declined a sample"
                )
            entries[keys[i]] = CachedResolution(
                image=resolved.image,
                symbol=resolved.symbol,
                offset=resolved.offset,
                claim_index=fallback_index,
                token=self.fallback.claim_token(),
            )
        stats[-1].hits += len(pending)
        if self.cache is not None:
            put = self.cache.put
            for key in keys:
                put(key, entries[key])
        return entries

    def resolve_miss(
        self, sample: PipelineSample, key: tuple
    ) -> ResolvedSample:
        """Resolve a sample the cache did not hold and insert the result.
        The caller has already consulted (and counted) the cache."""
        resolved, idx, token = self._resolve_uncached(sample)
        if self.cache is not None:
            self.cache.put(
                key,
                CachedResolution(
                    image=resolved.image,
                    symbol=resolved.symbol,
                    offset=resolved.offset,
                    claim_index=idx,
                    token=token,
                ),
            )
        return resolved

    def resolve(self, sample: PipelineSample) -> ResolvedSample:
        """Resolve one sample, counting which stage claimed it."""
        cache = self.cache
        if cache is None:
            return self._resolve_uncached(sample)[0]
        key = self.cache_key(sample)
        entry = cache.get(key)
        if entry is not None:
            self.replay(entry)
            return ResolvedSample(
                raw=sample.raw,
                image=entry.image,
                symbol=entry.symbol,
                offset=entry.offset,
            )
        return self.resolve_miss(sample, key)

    def resolve_stream(
        self, samples: Iterable[object]
    ) -> Iterator[ResolvedSample]:
        """Stream resolution: raw, domain-tagged, or pipeline samples in;
        resolved samples out, one at a time."""
        for sample in iter_pipeline_samples(samples):
            yield self.resolve(sample)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Samples this chain has resolved: every sample is claimed by
        exactly one stage (the fallback is terminal), so the hit sum is
        the stream length — the denominator for cache hit-rate math."""
        return sum(st.hits for st in self._stats_list)

    def stats(self) -> list[StageStats]:
        """Per-stage counters in chain order (fallback last)."""
        return [st.check() for st in self._stats_list]

    def stats_dict(self) -> dict[str, object]:
        """JSON-able snapshot of the chain's counters, including any
        stage-specific detail (e.g. the JIT epoch split), degradation
        counters for stages running in degraded (post-salvage) mode, the
        resolution cache's hit rate, and ``total_samples`` as the
        denominator."""
        stages: list[dict[str, object]] = []
        degraded_any = False
        for st in self.stats():
            entry: dict[str, object] = {
                "stage": st.name,
                "hits": st.hits,
                "misses": st.misses,
            }
            if st.terminal:
                entry["terminal"] = True
            stage = self.stage(st.name)
            detail = getattr(stage, "detail_dict", None)
            if callable(detail):
                entry["detail"] = detail()
            degraded = getattr(stage, "degraded_dict", None)
            if callable(degraded):
                counters = degraded()
                if counters is not None:
                    entry["degraded"] = counters
                    degraded_any = True
            stages.append(entry)
        return {
            "stages": stages,
            "total_samples": self.total_samples,
            "degraded": degraded_any,
            "cache": (
                self.cache.stats_dict() if self.cache is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # shard-worker support (see repro.pipeline.parallel)
    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every counter (stage, stage detail, cache) — a shard
        worker resets its chain copy so the exported counters are pure
        deltas."""
        for st in self._stats_list:
            st.hits = 0
            st.misses = 0
        for s in [*self.stages, self.fallback]:
            s.reset_state()
        if self.cache is not None:
            self.cache.clear()

    def export_stats(self) -> dict[str, object]:
        """Picklable counter snapshot for cross-process merging."""
        return {
            "stages": [
                (st.name, st.hits, st.misses, st.terminal)
                for st in self.stats()
            ],
            "details": {
                s.name: state
                for s in [*self.stages, self.fallback]
                if (state := s.export_state()) is not None
            },
            "cache": (
                (self.cache.hits, self.cache.misses, len(self.cache))
                if self.cache is not None
                else None
            ),
        }

    def absorb_stats(self, snapshot: dict[str, object]) -> None:
        """Fold a worker chain's exported counters into this chain.

        Merging is exact — counters are sums — so sequential resolution
        and sharded resolution plus absorption produce identical
        statistics (property-tested)."""
        for name, hits, misses, terminal in snapshot["stages"]:
            st = self._stats.get(name)
            if st is None:
                raise ProfilerError(
                    f"cannot absorb stats for unknown stage {name!r}"
                )
            st.merge(StageStats(name, hits, misses, terminal))
        for name, state in snapshot["details"].items():
            self.stage(name).merge_state(state)
        cache_counts = snapshot.get("cache")
        if cache_counts is not None and self.cache is not None:
            self.cache.absorb_counters(*cache_counts)
