"""The resolver chain: ordered stages with per-stage hit/miss counters.

A :class:`ResolverChain` is the pipeline's "PC → symbol" engine.  Samples
are offered to each stage in order; the first stage to return a resolved
sample claims it and the chain's counters record which stage that was.
Samples no stage claims fall through to the terminal fallback stage
(``(unknown)`` attribution by default).

The counters subsume the old ad-hoc ``JitResolutionStats``: every report
now exposes the same per-stage accounting (:meth:`ResolverChain.stats` /
:meth:`ResolverChain.stats_dict`), and stages with richer detail (the JIT
epoch stage's own/earlier-epoch split) contribute it through their
``detail_dict`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ProfilerError
from repro.pipeline.source import PipelineSample, iter_pipeline_samples
from repro.pipeline.stages import FallbackStage, ResolverStage
from repro.profiling.model import ResolvedSample

__all__ = ["StageStats", "ResolverChain"]


@dataclass
class StageStats:
    """Hit/miss counters for one stage of a chain.

    ``hits`` counts samples the stage claimed; ``misses`` counts samples it
    was offered and passed down the chain.
    """

    name: str
    hits: int = 0
    misses: int = 0

    @property
    def offered(self) -> int:
        return self.hits + self.misses


class ResolverChain:
    """Ordered resolver stages plus a terminal fallback.

    The chain is the only place resolution order lives: ``opreport``,
    VIProf, and XenoProf reports differ solely in the stage list they are
    built from (see the composition helpers in :mod:`repro.pipeline`).
    """

    def __init__(
        self,
        stages: Sequence[ResolverStage],
        fallback: ResolverStage | None = None,
    ) -> None:
        self.stages = list(stages)
        self.fallback = fallback if fallback is not None else FallbackStage()
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ProfilerError(f"duplicate stage names in chain: {names}")
        self._stats = {s.name: StageStats(s.name) for s in self.stages}
        self._stats[self.fallback.name] = StageStats(self.fallback.name)

    def stage(self, name: str) -> ResolverStage:
        """Look a stage up by name (e.g. ``chain.stage("jit-epoch")``)."""
        for s in self.stages:
            if s.name == name:
                return s
        if self.fallback.name == name:
            return self.fallback
        raise ProfilerError(f"no stage named {name!r} in chain")

    def resolve(self, sample: PipelineSample) -> ResolvedSample:
        """Resolve one sample, counting which stage claimed it."""
        for s in self.stages:
            resolved = s.resolve(sample)
            st = self._stats[s.name]
            if resolved is not None:
                st.hits += 1
                return resolved
            st.misses += 1
        resolved = self.fallback.resolve(sample)
        if resolved is None:  # a fallback must be terminal
            raise ProfilerError(
                f"fallback stage {self.fallback.name!r} declined a sample"
            )
        self._stats[self.fallback.name].hits += 1
        return resolved

    def resolve_stream(
        self, samples: Iterable[object]
    ) -> Iterator[ResolvedSample]:
        """Stream resolution: raw, domain-tagged, or pipeline samples in;
        resolved samples out, one at a time."""
        for sample in iter_pipeline_samples(samples):
            yield self.resolve(sample)

    def stats(self) -> list[StageStats]:
        """Per-stage counters in chain order (fallback last)."""
        return [self._stats[s.name] for s in self.stages] + [
            self._stats[self.fallback.name]
        ]

    def stats_dict(self) -> dict[str, object]:
        """JSON-able snapshot of the chain's counters, including any
        stage-specific detail (e.g. the JIT epoch split)."""
        stages: list[dict[str, object]] = []
        for st in self.stats():
            entry: dict[str, object] = {
                "stage": st.name,
                "hits": st.hits,
                "misses": st.misses,
            }
            stage = self.stage(st.name)
            detail = getattr(stage, "detail_dict", None)
            if callable(detail):
                entry["detail"] = detail()
            stages.append(entry)
        return {"stages": stages}
