"""Resolver stages — the single "PC → symbol" vocabulary of the tree.

Each stage answers one question about a sample and either *claims* it
(returns a :class:`~repro.profiling.model.ResolvedSample`) or passes it
down the chain (returns None).  Stock ``opreport``, VIProf, and the
multi-domain XenoProf report are nothing but different orderings of these
stages (see :mod:`repro.pipeline` for the canonical compositions):

* :class:`KernelSymbolStage` — kernel-mode PCs against the ``vmlinux``
  symbol table;
* :class:`JitEpochStage` — PCs inside a registered VM heap through the
  epoch code maps, walking strictly backwards from the sample's epoch
  (paper §3.2); terminal for heap samples (a miss is ``(unresolved jit)``,
  never a fall-through);
* :class:`BootImageStage` — PCs in the stripped boot-image mapping through
  the Jikes RVM internal map (``RVM.map``);
* :class:`TaskVmaStage` — the owning task's VMA set: file-backed mappings
  through ELF symbols, anonymous mappings to an ``anon (range:...)``
  label;
* :class:`HypervisorStage` — Xen-layer PCs against the hypervisor symbol
  table;
* :class:`DomainDispatchStage` — routes each sample to its domain's own
  sub-chain (XenoProf multi-stack resolution);
* :class:`FallbackStage` — the terminal ``(unknown)`` attribution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.jvm.bootimage import BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.os.address_space import VmaKind
from repro.os.binary import NO_SYMBOLS
from repro.os.kernel import Kernel
from repro.profiling.model import ResolvedSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.jvm.bootimage import RvmMap
    from repro.pipeline.resolver import ResolverChain
    from repro.pipeline.source import PipelineSample
    from repro.viprof.codemap import CodeMapIndex
    from repro.viprof.runtime_profiler import VmRegistration
    from repro.xen.hypervisor import Hypervisor

__all__ = [
    "UNKNOWN_IMAGE",
    "UNRESOLVED_JIT",
    "ResolverStage",
    "KernelSymbolStage",
    "JitEpochStage",
    "JitStageStats",
    "BootImageStage",
    "TaskVmaStage",
    "HypervisorStage",
    "DomainDispatchStage",
    "FallbackStage",
]

#: Label for samples whose PC matches no mapping at all.
UNKNOWN_IMAGE = "(unknown)"

#: Symbol label for VM-heap samples no epoch map ever held.
UNRESOLVED_JIT = "(unresolved jit)"


class ResolverStage:
    """One step of a resolver chain.

    ``resolve`` returns a resolved sample to claim the sample, or None to
    pass it to the next stage.  ``name`` keys the chain's per-stage
    hit/miss counters.

    Stages with per-resolution detail counters (beyond the chain's
    hit/miss) implement the *claim token* hooks so the chain's resolution
    cache can replay them exactly: after a claim, :meth:`claim_token`
    describes what the stage just counted, and :meth:`replay_token`
    re-applies that counting on a later cache hit.  The *state* hooks
    (:meth:`export_state` / :meth:`merge_state` / :meth:`reset_state`)
    carry the same detail counters across shard-worker process boundaries
    (:mod:`repro.pipeline.parallel`).
    """

    name: str = "stage"

    #: True for stages that dispatch to inner chains with their own
    #: counters; a chain containing one never caches above it.
    owns_inner_chains: bool = False

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        raise NotImplementedError

    def claim_token(self) -> object | None:
        """Opaque description of the detail counters the stage updated for
        the claim it just made; None when the stage keeps no detail."""
        return None

    def replay_token(self, token: object) -> None:
        """Re-apply the detail counting described by a claim token."""

    def replay_token_bulk(self, token: object, n: int) -> None:
        """Re-apply a claim token's detail counting ``n`` times — the
        columnar path's duplicate replay.  The default repeats the scalar
        replay (exact for any stage); stages with pure-sum detail counters
        override with O(1) bulk bumps."""
        for _ in range(n):
            self.replay_token(token)

    def resolve_group(
        self, samples: "list[PipelineSample]"
    ) -> list[tuple[ResolvedSample, object | None] | None] | None:
        """Batched resolve for a columnar bucket: samples share
        ``(epoch, kernel_mode, task_id, domain_id)`` and arrive with PCs
        ascending.  Returns a positionally-aligned list — ``(resolved,
        claim token)`` for claims, None for pass-downs — or None when the
        stage has no batched path (the chain then offers samples one by
        one).  Implementations must update the same detail counters one
        scalar resolve per claimed sample would have."""
        return None

    def export_state(self) -> object | None:
        """Picklable snapshot of the stage's detail counters (None when
        the stage keeps none)."""
        return None

    def merge_state(self, state: object) -> None:
        """Fold a worker stage's exported detail counters into this one."""

    def reset_state(self) -> None:
        """Zero the stage's detail counters."""


class KernelSymbolStage(ResolverStage):
    """Kernel-mode samples (or kernel-range PCs) against ``vmlinux``."""

    name = "kernel"

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        raw = sample.raw
        if not raw.kernel_mode and not self.kernel.is_kernel_address(raw.pc):
            return None
        image, symbol = self.kernel.resolve_kernel(raw.pc)
        koff = raw.pc - self.kernel.layout.kernel_base
        sym = self.kernel.image.symbol_at(koff)
        return ResolvedSample(
            raw=raw, image=image, symbol=symbol,
            offset=(koff - sym.offset) if sym is not None else -1,
        )


class JitStageStats:
    """Per-stage resolution detail for JIT samples (accuracy reporting).

    Replaces the old ad-hoc ``JitResolutionStats``: the counters now live
    on the stage that produces them and are exposed uniformly through the
    chain's stats (:meth:`~repro.pipeline.resolver.ResolverChain.stats_dict`).
    """

    def __init__(self) -> None:
        self.jit_samples = 0
        self.resolved_in_own_epoch = 0
        self.resolved_in_earlier_epoch = 0
        self.unresolved = 0
        #: degraded mode only: samples whose backward walk hit a
        #: quarantined epoch and were remapped to ``(unresolved jit)``
        self.blocked_at_quarantine = 0

    @property
    def resolved(self) -> int:
        return self.resolved_in_own_epoch + self.resolved_in_earlier_epoch

    @property
    def resolution_rate(self) -> float:
        return self.resolved / self.jit_samples if self.jit_samples else 1.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "jit_samples": self.jit_samples,
            "resolved_in_own_epoch": self.resolved_in_own_epoch,
            "resolved_in_earlier_epoch": self.resolved_in_earlier_epoch,
            "unresolved": self.unresolved,
            "blocked_at_quarantine": self.blocked_at_quarantine,
            "resolution_rate": self.resolution_rate,
        }

    def merge(self, other: "JitStageStats") -> "JitStageStats":
        """Fold another shard's JIT counters into this one, in place.
        Counters are pure sums, so merging shard results equals counting
        the concatenated stream (property-tested)."""
        self.jit_samples += other.jit_samples
        self.resolved_in_own_epoch += other.resolved_in_own_epoch
        self.resolved_in_earlier_epoch += other.resolved_in_earlier_epoch
        self.unresolved += other.unresolved
        self.blocked_at_quarantine += other.blocked_at_quarantine
        return self

    def __add__(self, other: "JitStageStats") -> "JitStageStats":
        out = JitStageStats()
        return out.merge(self).merge(other)

    def reset(self) -> None:
        self.jit_samples = 0
        self.resolved_in_own_epoch = 0
        self.resolved_in_earlier_epoch = 0
        self.unresolved = 0
        self.blocked_at_quarantine = 0


class JitEpochStage(ResolverStage):
    """VM-heap samples through the epoch code maps (backward walk).

    Terminal for samples inside a registered heap: resolution failures are
    attributed to ``JIT.App (unresolved jit)`` rather than passed on,
    because no later stage can know more about anonymous heap memory.

    ``backward=False`` is the paper's ablation: only the sample's own
    epoch map is consulted.

    ``strict=False`` is degraded (post-salvage) mode: a walk blocked by a
    quarantined epoch (:data:`~repro.viprof.codemap.RESOLVE_BLOCKED`) is
    remapped to ``(unresolved jit)`` and counted in
    ``stats.blocked_at_quarantine`` — never attributed to a possibly-stale
    record.  In strict mode (the default) a blocked walk is an error: a
    strict pipeline must not silently consume a salvaged session.
    """

    name = "jit-epoch"

    def __init__(
        self,
        codemaps: "CodeMapIndex",
        registrations: Iterable["VmRegistration"],
        backward: bool = True,
        strict: bool = True,
    ) -> None:
        self.codemaps = codemaps
        self.backward = backward
        self.strict = strict
        self._registrations = {r.task_id: r for r in registrations}
        self.stats = JitStageStats()
        self._last_outcome: str | None = None

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        from repro.viprof.codemap import RESOLVE_BLOCKED

        raw = sample.raw
        reg = self._registrations.get(raw.task_id)
        if reg is None or not reg.covers(raw.pc):
            return None
        self.stats.jit_samples += 1
        hit = self.codemaps.resolve(raw.epoch, raw.pc, backward=self.backward)
        if hit is RESOLVE_BLOCKED:
            if self.strict:
                from repro.errors import ProfilerError

                raise ProfilerError(
                    f"epoch walk for pc {raw.pc:#x} (epoch {raw.epoch}) "
                    "blocked by a quarantined code map; rerun the pipeline "
                    "in degraded mode (strict=False) to account for "
                    "salvaged sessions"
                )
            self.stats.blocked_at_quarantine += 1
            self._last_outcome = "blocked"
            return ResolvedSample(
                raw=raw, image=JIT_APP_IMAGE_LABEL, symbol=UNRESOLVED_JIT
            )
        if hit is None:
            self.stats.unresolved += 1
            self._last_outcome = "unresolved"
            return ResolvedSample(
                raw=raw, image=JIT_APP_IMAGE_LABEL, symbol=UNRESOLVED_JIT
            )
        record, found_epoch = hit
        if found_epoch == raw.epoch:
            self.stats.resolved_in_own_epoch += 1
            self._last_outcome = "own"
        else:
            self.stats.resolved_in_earlier_epoch += 1
            self._last_outcome = "earlier"
        return ResolvedSample(
            raw=raw, image=JIT_APP_IMAGE_LABEL, symbol=record.name,
            offset=raw.pc - record.address,
        )

    def resolve_group(
        self, samples: "list[PipelineSample]"
    ) -> list[tuple[ResolvedSample, object | None] | None] | None:
        """Batched bucket resolve: one epoch walk for the whole ascending
        PC run (:meth:`~repro.viprof.codemap.CodeMapIndex.resolve_run`)
        instead of one backward walk per sample.  Counter deltas — stage
        detail and the codemap index's own — match per-sample resolution
        exactly."""
        from repro.viprof.codemap import RESOLVE_BLOCKED

        if not samples:
            return []
        # The columnar bucket shares task_id (it is part of the bucket
        # key), so registration and heap bounds are checked once per run.
        reg = self._registrations.get(samples[0].raw.task_id)
        out: list[tuple[ResolvedSample, object | None] | None] = (
            [None] * len(samples)
        )
        if reg is None:
            return out
        covered = [
            i for i, s in enumerate(samples) if reg.covers(s.raw.pc)
        ]
        if not covered:
            return out
        hits = self.codemaps.resolve_run(
            samples[covered[0]].raw.epoch,
            [samples[i].raw.pc for i in covered],
            backward=self.backward,
        )
        own = earlier = unresolved = blocked = 0
        for i, hit in zip(covered, hits):
            raw = samples[i].raw
            if hit is RESOLVE_BLOCKED:
                if self.strict:
                    from repro.errors import ProfilerError

                    raise ProfilerError(
                        f"epoch walk for pc {raw.pc:#x} (epoch {raw.epoch}) "
                        "blocked by a quarantined code map; rerun the "
                        "pipeline in degraded mode (strict=False) to "
                        "account for salvaged sessions"
                    )
                blocked += 1
                out[i] = (
                    ResolvedSample(
                        raw=raw,
                        image=JIT_APP_IMAGE_LABEL,
                        symbol=UNRESOLVED_JIT,
                    ),
                    "blocked",
                )
            elif hit is None:
                unresolved += 1
                out[i] = (
                    ResolvedSample(
                        raw=raw,
                        image=JIT_APP_IMAGE_LABEL,
                        symbol=UNRESOLVED_JIT,
                    ),
                    "unresolved",
                )
            else:
                record, found_epoch = hit
                if found_epoch == raw.epoch:
                    own += 1
                    token = "own"
                else:
                    earlier += 1
                    token = "earlier"
                out[i] = (
                    ResolvedSample(
                        raw=raw,
                        image=JIT_APP_IMAGE_LABEL,
                        symbol=record.name,
                        offset=raw.pc - record.address,
                    ),
                    token,
                )
        st = self.stats
        st.jit_samples += own + earlier + unresolved + blocked
        st.resolved_in_own_epoch += own
        st.resolved_in_earlier_epoch += earlier
        st.unresolved += unresolved
        st.blocked_at_quarantine += blocked
        return out

    def detail_dict(self) -> dict[str, int | float]:
        return self.stats.as_dict()

    def degraded_dict(self) -> dict[str, int] | None:
        """Degradation counters for the chain's ``degraded`` stats entry
        (None in strict mode — a strict stage cannot degrade)."""
        if self.strict:
            return None
        return {
            "blocked_at_quarantine": self.stats.blocked_at_quarantine,
        }

    # -- cache replay / shard merging ----------------------------------

    def claim_token(self) -> object | None:
        return self._last_outcome

    def replay_token(self, token: object) -> None:
        self.stats.jit_samples += 1
        if token == "own":
            self.stats.resolved_in_own_epoch += 1
        elif token == "earlier":
            self.stats.resolved_in_earlier_epoch += 1
        elif token == "blocked":
            self.stats.blocked_at_quarantine += 1
        else:
            self.stats.unresolved += 1

    def replay_token_bulk(self, token: object, n: int) -> None:
        st = self.stats
        st.jit_samples += n
        if token == "own":
            st.resolved_in_own_epoch += n
        elif token == "earlier":
            st.resolved_in_earlier_epoch += n
        elif token == "blocked":
            st.blocked_at_quarantine += n
        else:
            st.unresolved += n

    def export_state(self) -> object | None:
        d = self.stats.as_dict()
        d.pop("resolution_rate", None)
        return d

    def merge_state(self, state: object) -> None:
        other = JitStageStats()
        other.jit_samples = state["jit_samples"]
        other.resolved_in_own_epoch = state["resolved_in_own_epoch"]
        other.resolved_in_earlier_epoch = state["resolved_in_earlier_epoch"]
        other.unresolved = state["unresolved"]
        other.blocked_at_quarantine = state.get("blocked_at_quarantine", 0)
        self.stats.merge(other)

    def reset_state(self) -> None:
        self.stats.reset()


class BootImageStage(ResolverStage):
    """Samples in the stripped boot-image mapping through ``RVM.map``."""

    name = "boot-image"

    def __init__(self, kernel: Kernel, rvm_map: "RvmMap") -> None:
        self.kernel = kernel
        self.rvm_map = rvm_map

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        raw = sample.raw
        proc = self.kernel.process(raw.task_id)
        if proc is None:
            return None
        vma = proc.address_space.resolve(raw.pc)
        if vma is None or vma.kind is not VmaKind.FILE:
            return None
        assert vma.image is not None
        if vma.image.name != BOOT_IMAGE_NAME:
            return None
        off = vma.to_image_offset(raw.pc)
        entry = self.rvm_map.resolve(off)
        if entry is None:
            return ResolvedSample(
                raw=raw, image=RVM_MAP_IMAGE_LABEL, symbol=NO_SYMBOLS
            )
        return ResolvedSample(
            raw=raw, image=RVM_MAP_IMAGE_LABEL, symbol=entry.name,
            offset=off - entry.offset,
        )


class TaskVmaStage(ResolverStage):
    """User PCs through the owning task's VMA set (stock opreport)."""

    name = "task-vma"

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        raw = sample.raw
        proc = self.kernel.process(raw.task_id)
        if proc is None:
            return None
        vma = proc.address_space.resolve(raw.pc)
        if vma is None:
            return None
        if vma.kind is VmaKind.FILE:
            assert vma.image is not None
            off = vma.to_image_offset(raw.pc)
            sym = vma.image.symbol_at(off)
            return ResolvedSample(
                raw=raw,
                image=vma.image.name,
                symbol=sym.name if sym is not None else NO_SYMBOLS,
                offset=(off - sym.offset) if sym is not None else -1,
            )
        return ResolvedSample(raw=raw, image=vma.label(), symbol=NO_SYMBOLS)


class HypervisorStage(ResolverStage):
    """Xen-layer PCs against the hypervisor's own symbol table."""

    name = "hypervisor"

    def __init__(self, hypervisor: "Hypervisor") -> None:
        self.hypervisor = hypervisor

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        raw = sample.raw
        if not self.hypervisor.is_xen_address(raw.pc):
            return None
        image, symbol = self.hypervisor.resolve(raw.pc)
        return ResolvedSample(raw=raw, image=image, symbol=symbol)


class DomainDispatchStage(ResolverStage):
    """Routes each sample to its domain's own resolver chain.

    Terminal: a sample tagged with an unknown domain is a corrupt stream,
    reported as a :class:`~repro.errors.ProfilerError` rather than
    silently falling through to ``(unknown)``.

    ``owns_inner_chains`` is True: the per-domain chains keep their own
    stage counters (and their own resolution caches), so the *outer* chain
    never caches above this stage — an outer cache hit could not replay
    the inner chains' counters.  The domain chains still memoize their own
    stage walks, so multi-stack resolution keeps the cache win.
    """

    name = "domain-dispatch"
    owns_inner_chains = True

    def __init__(self, chains: Mapping[int, "ResolverChain"]) -> None:
        self.chains = dict(chains)

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        from repro.errors import ProfilerError

        chain = self.chains.get(sample.domain_id)  # type: ignore[arg-type]
        if chain is None:
            raise ProfilerError(f"no resolver for domain {sample.domain_id}")
        return chain.resolve(sample)

    def detail_dict(self) -> dict[str, object]:
        """The inner chains' full counters, keyed ``dom{id}``.

        Without this hook the per-domain cache/stage statistics are
        invisible at the outer-chain level: ``stats_dict()`` on the
        multi-stack chain showed one opaque ``domain-dispatch`` hit
        count while every JIT-epoch split, cache hit-rate and degraded
        counter lived only on the inner chains nobody serialized.
        """
        return {
            f"dom{dom}": chain.stats_dict()
            for dom, chain in sorted(self.chains.items())
        }

    def degraded_dict(self) -> dict[str, int] | None:
        """Summed degradation counters across the inner chains, so a
        multi-stack chain's top-level ``degraded`` flag reflects any
        domain resolving in degraded (post-salvage) mode.  None when
        every inner chain is strict."""
        totals: dict[str, int] = {}
        any_degraded = False
        for chain in self.chains.values():
            for stage in chain.stages:
                hook = getattr(stage, "degraded_dict", None)
                if not callable(hook):
                    continue
                counters = hook()
                if counters is None:
                    continue
                any_degraded = True
                for k, v in counters.items():
                    totals[k] = totals.get(k, 0) + v
        return totals if any_degraded else None

    # -- shard merging: recurse into the per-domain chains -------------

    def export_state(self) -> object | None:
        return {
            dom: chain.export_stats() for dom, chain in self.chains.items()
        }

    def merge_state(self, state: object) -> None:
        for dom, snapshot in state.items():
            chain = self.chains.get(dom)
            if chain is None:
                from repro.errors import ProfilerError

                raise ProfilerError(
                    f"cannot absorb stats for unknown domain {dom}"
                )
            chain.absorb_stats(snapshot)

    def reset_state(self) -> None:
        for chain in self.chains.values():
            chain.reset_stats()


class FallbackStage(ResolverStage):
    """The terminal attribution for samples no stage could place."""

    name = "unresolved"

    def resolve(self, sample: "PipelineSample") -> ResolvedSample | None:
        return ResolvedSample(
            raw=sample.raw, image=UNKNOWN_IMAGE, symbol=NO_SYMBOLS
        )
