"""repro — a reproduction of *VIProf: Vertically Integrated Full-System
Performance Profiler* (Mousa, Krintz, Youseff, Wolski; IPDPS workshops 2007).

The package provides:

``repro.hardware``
    A simulated CPU with hardware performance counters (HPCs) that raise
    non-maskable interrupts (NMIs) on overflow, plus a set-associative cache
    simulator used to generate L2-miss events.
``repro.os``
    A miniature operating-system substrate: ELF-like binary images with
    symbol tables, per-process address spaces built from virtual memory
    areas, a loader, a kernel that dispatches NMIs, and a scheduler.
``repro.jvm``
    A Jikes-RVM-like Java virtual machine: bytecode-level method model,
    baseline and optimizing JIT compilers that emit code bodies into a
    garbage-collected heap, an adaptive optimization system, and a copying
    nursery collector that *moves code* and delimits GC epochs.
``repro.oprofile``
    The OProfile baseline: kernel module (NMI handler, sample buffer),
    user-level daemon, sample files and the ``opreport`` post-processor.
``repro.viprof``
    The paper's contribution: the Runtime Profiler extension (heap
    registration, JIT.App classification, epoch tagging), the VM Agent
    (compile/move hooks, partial epoch code maps), and the extended
    post-processor (backward epoch traversal, boot-image map).
``repro.workloads``
    Synthetic SPEC JVM98 / DaCapo / pseudoJBB benchmark descriptions.
``repro.system``
    The full-system execution engine and the experiment matrix used to
    regenerate the paper's figures.

Quickstart::

    from repro import viprof_profile
    from repro.workloads import dacapo

    result = viprof_profile(dacapo.ps())
    print(result.report.format_table(limit=10))
"""

from repro.version import __version__
from repro.system.api import (
    base_run,
    oprofile_profile,
    viprof_profile,
)

__all__ = [
    "__version__",
    "base_run",
    "oprofile_profile",
    "viprof_profile",
]
