"""The many-guest fleet workload family.

ROADMAP's bridge from the paper's single-host design to an Atys-style
continuous-profiling fleet service starts here: tens of guest JVMs, each
its own full stack, multiplexed on one hypervisor.  A fleet member is a
small synthetic workload stamped with one of three *phase profiles*,
chosen round-robin across the fleet so concurrent guests never move in
lockstep:

* ``steady`` — one stationary phase, narrow bursts: the long-running
  service whose hot set stops changing after warm-up;
* ``bursty`` — few phases but wide invocation bursts: request-driven
  load with hot methods shifting between traffic spikes;
* ``recompile-heavy`` — many short phases over a larger method
  population: fresh methods keep getting hot (and compiled) deep into
  the run, maximizing code-map traffic per guest.

Every member is deterministic in ``(index, seed)``; two fleets built
with the same arguments are identical, which the guest-kill isolation
matrix relies on for its fault-free twins.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticSpec, make_methods

__all__ = [
    "FLEET_PROFILES",
    "fleet_member_name",
    "fleet_workload",
    "fleet_workloads",
]

#: The staggered phase behaviours, assigned round-robin by member index.
FLEET_PROFILES: tuple[str, ...] = ("steady", "bursty", "recompile-heavy")

#: Per-profile knobs: (synthetic-spec overrides, workload overrides).
_PROFILE_KNOBS: dict[str, tuple[dict, dict]] = {
    "steady": (
        {"n_methods": 12, "zipf_s": 1.3},
        {"phases": 1, "burst": (6, 16)},
    ),
    "bursty": (
        {"n_methods": 16, "zipf_s": 1.0},
        {"phases": 2, "burst": (24, 80)},
    ),
    "recompile-heavy": (
        {"n_methods": 28, "zipf_s": 0.9},
        {"phases": 6, "burst": (4, 12)},
    ),
}


def fleet_member_name(index: int, profile: str) -> str:
    """The stable name of fleet member ``index`` (``fleet-03-bursty``)."""
    return f"fleet-{index:02d}-{profile}"


def fleet_workload(
    index: int,
    profile: str | None = None,
    base_time_s: float = 0.05,
    seed: int = 7,
) -> Workload:
    """One fleet member's workload.

    ``profile`` defaults to the member's round-robin slot in
    :data:`FLEET_PROFILES`.  The member index perturbs the generation
    seed, the base time (members finish staggered, not in lockstep) and
    the heap geometry, so every guest compiles a distinct method
    population on a distinct GC cadence.
    """
    if index < 0:
        raise WorkloadError(f"fleet member index must be >= 0, got {index}")
    if profile is None:
        profile = FLEET_PROFILES[index % len(FLEET_PROFILES)]
    try:
        spec_knobs, wl_knobs = _PROFILE_KNOBS[profile]
    except KeyError:
        raise WorkloadError(
            f"unknown fleet profile {profile!r} "
            f"(known: {', '.join(FLEET_PROFILES)})"
        ) from None
    spec = SyntheticSpec(
        package=f"fleet.m{index:02d}",
        mean_cycles_per_invocation=2200,
        alloc_bytes_per_kcycle=700,
        data_bytes=2 * 1024 * 1024,
        seed=seed * 1_000_003 + index,
        **spec_knobs,
    )
    # Stagger run lengths ±20% across the fleet so guests hit their
    # budgets (and final map flushes) at different points of the run.
    stagger = 1.0 + 0.2 * ((index % 5) - 2) / 2.0
    return Workload(
        name=fleet_member_name(index, profile),
        base_time_s=base_time_s * stagger,
        methods=make_methods(spec),
        nursery_bytes=64 * 1024 + (index % 3) * 32 * 1024,
        mature_bytes=2 * 1024 * 1024,
        seed=spec.seed,
        description=f"fleet member #{index} ({profile} phase profile)",
        **wl_knobs,
    )


def fleet_workloads(
    n: int, base_time_s: float = 0.05, seed: int = 7
) -> list[Workload]:
    """A fleet of ``n`` members with round-robin phase profiles."""
    if n < 1:
        raise WorkloadError(f"fleet size must be >= 1, got {n}")
    return [
        fleet_workload(i, base_time_s=base_time_s, seed=seed)
        for i in range(n)
    ]
