"""The generic synthetic workload generator.

Given a :class:`SyntheticSpec` this manufactures a deterministic population
of :class:`~repro.jvm.model.JavaMethod` with:

* Zipf-distributed hotness (a few very hot methods, a long tail — the shape
  of every real Java profile),
* log-uniform bytecode sizes,
* per-method allocation and data-access intensities drawn around the spec's
  averages, and
* working sets carved out of a benchmark-wide data region whose total size
  (relative to the 1 MB L2) controls the benchmark's cache behaviour.

Benchmark modules pass name banks (package prefix, class and method name
pools) so profiles show plausible frames for each suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

import numpy as np

from repro.errors import WorkloadError
from repro.hardware.memory import WorkingSet
from repro.jvm.model import JavaMethod, MethodId
from repro.workloads.base import Workload

__all__ = ["SyntheticSpec", "make_methods", "make_workload"]

#: Data heap region the working sets live in (distinct from the code heap,
#: which the engine lays out; only relative structure matters to the cache
#: model).
DATA_REGION_BASE = 0x7000_0000

_DEFAULT_CLASS_POOL = (
    "Main", "Engine", "Parser", "Scanner", "Builder", "Visitor", "Node",
    "Table", "Buffer", "Codec", "Worker", "Context", "Registry", "Emitter",
)

_DEFAULT_METHOD_POOL = (
    "run", "process", "parse", "scan", "visit", "emit", "update", "lookup",
    "insert", "next", "read", "write", "transform", "evaluate", "apply",
    "resolve", "compute", "flush", "encode", "decode",
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Knobs for one generated method population.

    Attributes:
        package: Java package prefix for generated names.
        n_methods: population size (drives compilation traffic).
        zipf_s: Zipf exponent for hotness (≈1.0 typical; higher = more
            skewed toward a few hot methods).
        bytecode_range: (lo, hi) bytecodes per method, log-uniform.
        mean_cycles_per_invocation: average per-call work at baseline.
        alloc_bytes_per_kcycle: allocation intensity (bytes per 1000
            application cycles) — with the nursery size this sets GC
            frequency.
        data_bytes: total data working set of the benchmark (vs. 1 MB L2).
        locality: average access locality in [0,1].
        accesses_per_kcycle: data accesses per 1000 cycles.
        fanout: average callee count recorded per method (call-graph shape).
        seed: generation seed.
    """

    package: str
    n_methods: int
    zipf_s: float = 1.1
    bytecode_range: tuple[int, int] = (40, 1200)
    mean_cycles_per_invocation: int = 2600
    alloc_bytes_per_kcycle: int = 40
    data_bytes: int = 24 * 1024 * 1024
    locality: float = 0.82
    accesses_per_kcycle: int = 160
    fanout: float = 2.0
    seed: int = 11
    class_pool: tuple[str, ...] = _DEFAULT_CLASS_POOL
    method_pool: tuple[str, ...] = _DEFAULT_METHOD_POOL
    pinned_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_methods < 1:
            raise WorkloadError("n_methods must be >= 1")
        if self.zipf_s <= 0:
            raise WorkloadError("zipf_s must be positive")
        lo, hi = self.bytecode_range
        if not 0 < lo <= hi:
            raise WorkloadError(f"bad bytecode_range {self.bytecode_range}")
        if self.data_bytes <= 0:
            raise WorkloadError("data_bytes must be positive")


def make_methods(spec: SyntheticSpec) -> list[JavaMethod]:
    """Generate the method population for ``spec`` (deterministic)."""
    rng = Random(spec.seed)
    nprng = np.random.default_rng(spec.seed)
    n = spec.n_methods

    # Zipf hotness over rank; ranks are shuffled so hot methods are spread
    # through the index space (and thus across schedule phases).
    ranks = list(range(1, n + 1))
    rng.shuffle(ranks)
    weights = [1.0 / (r ** spec.zipf_s) for r in ranks]

    lo, hi = spec.bytecode_range
    log_lo, log_hi = np.log(lo), np.log(hi)
    sizes = np.exp(nprng.uniform(log_lo, log_hi, size=n)).astype(int)
    sizes = np.clip(sizes, lo, hi)

    # Per-method intensity jitter around the spec averages.
    cyc_jitter = nprng.uniform(0.4, 1.8, size=n)
    alloc_jitter = nprng.uniform(0.3, 2.0, size=n)
    access_jitter = nprng.uniform(0.5, 1.6, size=n)
    locality_jitter = np.clip(
        nprng.normal(spec.locality, 0.07, size=n), 0.3, 0.98
    )

    # Slice the benchmark data region into per-method working sets sized
    # proportionally to method hotness (hot methods touch more data).
    total_w = sum(weights)
    ws_sizes = [
        max(4096, int(spec.data_bytes * w / total_w)) for w in weights
    ]

    names = _make_names(spec, rng)
    methods: list[JavaMethod] = []
    ws_base = DATA_REGION_BASE
    for i in range(n):
        cycles = max(200, int(spec.mean_cycles_per_invocation * cyc_jitter[i]))
        allocation = int(cycles / 1000 * spec.alloc_bytes_per_kcycle * alloc_jitter[i])
        accesses = max(1, int(cycles / 1000 * spec.accesses_per_kcycle * access_jitter[i]))
        # A method's hot set is bounded in absolute terms (loop-carried
        # state), not proportional to however much data the benchmark owns:
        # cap it at a quarter of the 1 MB L2 so hot accesses model reuse,
        # not streaming.  The cold tail carries the capacity misses.
        hot_fraction = min(0.12, (256 * 1024) / ws_sizes[i])
        ws = WorkingSet(
            base=ws_base,
            size=ws_sizes[i],
            locality=float(locality_jitter[i]),
            hot_fraction=hot_fraction,
            seed=spec.seed * 1_000_003 + i,
        )
        ws_base += ws_sizes[i]
        n_callees = min(n - 1, max(0, int(rng.expovariate(1.0 / spec.fanout))))
        callees = tuple(
            sorted(rng.sample([j for j in range(n) if j != i], n_callees))
        ) if n_callees else ()
        methods.append(
            JavaMethod(
                mid=names[i],
                bytecode_size=int(sizes[i]),
                weight=weights[i],
                cycles_per_invocation=cycles,
                alloc_bytes_per_invocation=allocation,
                accesses_per_invocation=accesses,
                working_set=ws,
                callees=callees,
            )
        )
    return methods


def _make_names(spec: SyntheticSpec, rng: Random) -> list[MethodId]:
    """Unique, plausible fully-qualified names; pinned names come first so
    benchmark modules can guarantee specific Figure-1 frames exist (and,
    because ranks are shuffled independently, get ordinary hotness)."""
    names: list[MethodId] = []
    seen: set[str] = set()
    for pinned in spec.pinned_names[: spec.n_methods]:
        cls, _, meth = pinned.rpartition(".")
        mid = MethodId(class_name=cls, method_name=meth)
        names.append(mid)
        seen.add(mid.full_name)
    i = 0
    while len(names) < spec.n_methods:
        cls = rng.choice(spec.class_pool)
        meth = rng.choice(spec.method_pool)
        candidate = MethodId(
            class_name=f"{spec.package}.{cls.lower()}.{cls}",
            method_name=meth if i == 0 else f"{meth}{i}",
        )
        if candidate.full_name not in seen:
            seen.add(candidate.full_name)
            names.append(candidate)
        i += 1
    return names


def make_workload(name: str, base_time_s: float, spec: SyntheticSpec, **kwargs) -> Workload:
    """Convenience: generate methods and wrap them in a Workload."""
    return Workload(
        name=name,
        base_time_s=base_time_s,
        methods=make_methods(spec),
        seed=spec.seed,
        **kwargs,
    )
