"""Workload definition and scheduling.

A :class:`Workload` satisfies :class:`repro.jvm.machine.WorkloadProgram`:
it owns a method population and yields an infinite, seeded stream of
``(method_index, invocation_burst)`` pairs.  The schedule is *phased*:
methods are partitioned into execution phases that dominate successive
stretches of the run, so fresh methods keep getting hot (and compiled)
deep into execution — the behaviour that determines how code-map writes
amortize per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.jvm.model import JavaMethod

__all__ = ["Workload", "SIM_HZ", "by_name", "paper_suite", "register"]

#: Simulated clock rate: 1/1000 of the paper's 3.4 GHz Pentium 4 Xeon.
SIM_HZ = 3_400_000

#: Default native-code mix for a benchmark that does ordinary I/O and
#: string work: (image, symbol, weight).
DEFAULT_NATIVE_MIX: tuple[tuple[str, str, float], ...] = (
    ("libc-2.3.2.so", "memcpy", 4.0),
    ("libc-2.3.2.so", "strcmp", 2.0),
    ("libc-2.3.2.so", "read", 1.5),
    ("libc-2.3.2.so", "write", 1.5),
    ("libc-2.3.2.so", "malloc", 1.0),
)


@dataclass
class Workload:
    """One benchmark's model.

    Attributes:
        name: benchmark name as it appears in the paper's figures.
        base_time_s: paper-reported base execution time (Figure 3); the
            engine's cycle budget is ``base_time_s * SIM_HZ * time_scale``.
        methods: method population (index-addressed).
        survival_rate: fraction of nursery data surviving a collection.
        javalib_fraction / native_fraction: share of application cycles
            spent in boot-image Java library code and native libraries.
        native_mix: native symbols the native share is drawn from.
        nursery_bytes / mature_bytes: heap geometry.
        phases: number of execution phases; 1 = stationary workload.
        burst: (lo, hi) invocations per schedule pick.
        seed: schedule/workload determinism root.
    """

    name: str
    base_time_s: float
    methods: list[JavaMethod]
    survival_rate: float = 0.10
    javalib_fraction: float = 0.06
    native_fraction: float = 0.05
    native_mix: tuple[tuple[str, str, float], ...] = DEFAULT_NATIVE_MIX
    nursery_bytes: int = 512 * 1024
    mature_bytes: int = 12 * 1024 * 1024
    phases: int = 4
    burst: tuple[int, int] = (8, 40)
    seed: int = 97
    description: str = ""
    _weights: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.methods:
            raise WorkloadError(f"workload {self.name!r} has no methods")
        if not 0.0 <= self.survival_rate <= 1.0:
            raise WorkloadError("survival_rate must be in [0,1]")
        if self.javalib_fraction + self.native_fraction >= 0.9:
            raise WorkloadError("javalib+native fractions leave no app time")
        if self.phases < 1:
            raise WorkloadError("phases must be >= 1")
        if not 0 < self.burst[0] <= self.burst[1]:
            raise WorkloadError(f"bad burst range {self.burst}")
        for i, m in enumerate(self.methods):
            m.index = i
        self._weights = [m.weight for m in self.methods]
        if sum(self._weights) <= 0:
            raise WorkloadError("method weights sum to zero")

    # ------------------------------------------------------------------

    def budget_cycles(self, time_scale: float = 1.0) -> int:
        """Workload-cycle budget for the engine."""
        if time_scale <= 0:
            raise WorkloadError("time_scale must be positive")
        return int(self.base_time_s * SIM_HZ * time_scale)

    def schedule(self, rng: Random) -> Iterator[tuple[int, int]]:
        """Infinite phased invocation schedule.

        Each phase strongly prefers its own slice of the method population
        (80 % of picks) with a global tail (20 %), so later phases surface
        previously cold methods — triggering compilation and code-map
        traffic throughout the run, not only at startup.
        """
        n = len(self.methods)
        indices = list(range(n))
        per_phase = max(1, n // self.phases)
        phase_groups = [
            indices[i * per_phase : (i + 1) * per_phase]
            for i in range(self.phases)
        ]
        # Any remainder methods join the last phase.
        tail = indices[self.phases * per_phase :]
        if tail:
            phase_groups[-1] = phase_groups[-1] + tail
        picks_per_phase = 400
        phase = 0
        while True:
            group = phase_groups[phase % self.phases]
            group_weights = [self._weights[i] for i in group]
            for _ in range(picks_per_phase):
                if group and rng.random() < 0.8:
                    idx = rng.choices(group, weights=group_weights)[0]
                else:
                    idx = rng.choices(indices, weights=self._weights)[0]
                burst = rng.randint(*self.burst)
                yield idx, burst
            phase += 1


# ---------------------------------------------------------------------------
# benchmark registry
# ---------------------------------------------------------------------------

WorkloadFactory = Callable[[], Workload]

_REGISTRY: dict[str, WorkloadFactory] = {}


def register(name: str, factory: WorkloadFactory) -> None:
    """Register a benchmark factory under its paper name."""
    if name in _REGISTRY:
        raise WorkloadError(f"benchmark {name!r} already registered")
    _REGISTRY[name] = factory


def by_name(name: str) -> Workload:
    """Instantiate a registered benchmark by its paper name."""
    _ensure_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown benchmark {name!r} (known: {known})") from None
    return factory()


def paper_suite() -> list[Workload]:
    """The Figure 2 benchmark set, in the figure's x-axis order."""
    _ensure_loaded()
    names = [
        "pseudojbb", "jvm98", "antlr", "bloat", "fop",
        "hsqldb", "pmd", "xalan", "ps",
    ]
    return [by_name(n) for n in names]


def _ensure_loaded() -> None:
    # Import benchmark modules for their registration side effects.
    from repro.workloads import dacapo, pseudojbb, specjvm98  # noqa: F401
