"""DaCapo benchmark models (``large`` inputs, as in the paper).

Per-benchmark characters, chosen to reproduce the dynamics the paper
reports:

* **antlr** — parser generator: a large method population compiled and
  recompiled aggressively relative to a short run, plus a high allocation
  rate.  This is why antlr shows the largest VIProf slowdown in Figure 2
  (map-write costs barely amortize).
* **bloat** — bytecode optimizer: long run, big population, steady
  allocation; amortizes well.
* **fop** — XSL-FO to PDF: the shortest run; startup compilation dominates.
* **hsqldb** — in-memory SQL database: the longest run, by far the largest
  data working set (poor L2 behaviour), few methods; amortizes best.
* **pmd** — source analyzer: mid-sized everything.
* **xalan** — XSLT processor: long run, large working set, string-heavy
  native mix.
* **ps** — PostScript interpreter (Figure 1's case study): scanner/
  interpreter loop with the paper's ``Scanner.parseLine`` among the hot
  methods.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register
from repro.workloads.synthetic import SyntheticSpec, make_methods

__all__ = [
    "antlr", "bloat", "fop", "hsqldb", "pmd", "xalan", "ps",
    "chart", "eclipse", "jython", "luindex", "lusearch",
]

MB = 1024 * 1024


def antlr() -> Workload:
    spec = SyntheticSpec(
        package="org.antlr.dacapo",
        n_methods=560,
        zipf_s=0.85,  # flat: many warm methods -> lots of compilation
        bytecode_range=(60, 1600),
        mean_cycles_per_invocation=1300,
        alloc_bytes_per_kcycle=4300,
        data_bytes=12 * MB,
        locality=0.86,
        accesses_per_kcycle=150,
        seed=101,
        class_pool=("Grammar", "Lexer", "ParserGen", "DFA", "Token",
                    "RuleBlock", "Alternative", "CodeGenerator"),
    )
    return Workload(
        name="antlr", base_time_s=8.7, methods=make_methods(spec),
        survival_rate=0.08, phases=8, burst=(6, 20), seed=spec.seed,
        description="parser generator; compile- and alloc-heavy short run",
    )


def bloat() -> Workload:
    spec = SyntheticSpec(
        package="edu.purdue.bloat",
        n_methods=420,
        zipf_s=1.1,
        bytecode_range=(50, 1400),
        mean_cycles_per_invocation=2800,
        alloc_bytes_per_kcycle=487,
        data_bytes=32 * MB,
        locality=0.8,
        accesses_per_kcycle=170,
        seed=102,
        class_pool=("ClassEditor", "MethodEditor", "FlowGraph", "Block",
                    "Expr", "Stmt", "SSAGraph", "Liveness"),
    )
    return Workload(
        name="bloat", base_time_s=28.5, methods=make_methods(spec),
        survival_rate=0.12, phases=5, seed=spec.seed,
        description="bytecode optimizer; long, steady run",
    )


def fop() -> Workload:
    spec = SyntheticSpec(
        package="org.apache.fop",
        n_methods=300,
        zipf_s=1.0,
        bytecode_range=(40, 1000),
        mean_cycles_per_invocation=2200,
        alloc_bytes_per_kcycle=721,
        data_bytes=10 * MB,
        locality=0.88,
        accesses_per_kcycle=140,
        seed=103,
        class_pool=("FOTreeBuilder", "LayoutManager", "Area", "PDFRenderer",
                    "PropertyList", "Block", "LineArea"),
    )
    return Workload(
        name="fop", base_time_s=3.2, methods=make_methods(spec),
        survival_rate=0.1, phases=3, seed=spec.seed,
        description="XSL-FO formatter; shortest run, startup-dominated",
    )


def hsqldb() -> Workload:
    spec = SyntheticSpec(
        package="org.hsqldb",
        n_methods=260,
        zipf_s=1.25,  # tight hot loop over table/index code
        bytecode_range=(60, 1200),
        mean_cycles_per_invocation=3200,
        alloc_bytes_per_kcycle=215,
        data_bytes=96 * MB,  # in-memory database: poor L2 behaviour
        locality=0.7,
        accesses_per_kcycle=260,
        seed=104,
        class_pool=("Database", "Table", "Index", "Session", "Result",
                    "Expression", "Parser", "Cache", "Row"),
    )
    return Workload(
        name="hsqldb", base_time_s=43.0, methods=make_methods(spec),
        survival_rate=0.2, phases=2, seed=spec.seed,
        nursery_bytes=512 * 1024, mature_bytes=24 * MB,
        description="in-memory SQL database; longest run, biggest data",
    )


def pmd() -> Workload:
    spec = SyntheticSpec(
        package="net.sourceforge.pmd",
        n_methods=360,
        zipf_s=1.05,
        bytecode_range=(50, 1100),
        mean_cycles_per_invocation=2500,
        alloc_bytes_per_kcycle=520,
        data_bytes=28 * MB,
        locality=0.82,
        accesses_per_kcycle=165,
        seed=105,
        class_pool=("RuleContext", "JavaParser", "ASTCompilationUnit",
                    "AbstractRule", "SymbolTable", "Scope", "NodeVisitor"),
    )
    return Workload(
        name="pmd", base_time_s=16.3, methods=make_methods(spec),
        survival_rate=0.11, phases=4, seed=spec.seed,
        description="Java source analyzer",
    )


def xalan() -> Workload:
    spec = SyntheticSpec(
        package="org.apache.xalan",
        n_methods=340,
        zipf_s=1.15,
        bytecode_range=(50, 1300),
        mean_cycles_per_invocation=2700,
        alloc_bytes_per_kcycle=521,
        data_bytes=40 * MB,
        locality=0.76,
        accesses_per_kcycle=200,
        seed=106,
        class_pool=("TransformerImpl", "StylesheetRoot", "ElemTemplate",
                    "XPathContext", "DTMManager", "SAX2DTM", "NodeSet"),
        method_pool=("transform", "execute", "getNode", "nextNode",
                     "characters", "startElement", "endElement", "select",
                     "evaluate", "resolve", "copy", "applyTemplates"),
    )
    return Workload(
        name="xalan", base_time_s=22.2, methods=make_methods(spec),
        survival_rate=0.13, phases=4, seed=spec.seed,
        native_fraction=0.08,
        description="XSLT processor; string-heavy",
    )


def ps() -> Workload:
    """DaCapo ``ps`` — the paper's Figure 1 case study.

    The pinned names guarantee the exact application frame visible in
    Figure 1 exists in the population.
    """
    spec = SyntheticSpec(
        package="edu.unm.cs.oal.dacapo.javaPostScript.red",
        n_methods=320,
        zipf_s=1.2,
        bytecode_range=(40, 1100),
        mean_cycles_per_invocation=2400,
        alloc_bytes_per_kcycle=578,
        data_bytes=20 * MB,
        locality=0.8,
        accesses_per_kcycle=175,
        seed=107,
        class_pool=("Interpreter", "Scanner", "GraphicsState", "PathBuilder",
                    "FontOp", "Dictionary", "OperandStack"),
        method_pool=("execute", "parseLine", "nextToken", "moveTo", "lineTo",
                     "fill", "stroke", "lookup", "push", "pop", "scale",
                     "show", "definefont"),
        pinned_names=(
            "edu.unm.cs.oal.dacapo.javaPostScript.red.scanner.Scanner.parseLine",
            "edu.unm.cs.oal.dacapo.javaPostScript.red.interp.Interpreter.execute",
            "edu.unm.cs.oal.dacapo.javaPostScript.red.graphics.PathBuilder.lineTo",
        ),
    )
    methods = make_methods(spec)
    # Make the Figure 1 frames genuinely hot: parseLine is the top
    # application method in the paper's listing.
    top = max(m.weight for m in methods)
    methods[0].weight = top * 1.6  # Scanner.parseLine
    methods[1].weight = top * 0.9  # Interpreter.execute
    methods[2].weight = top * 0.5  # PathBuilder.lineTo
    return Workload(
        name="ps", base_time_s=12.0, methods=methods,
        survival_rate=0.1, phases=4, seed=spec.seed,
        description="PostScript interpreter; the Figure 1 case study",
    )


# ---------------------------------------------------------------------------
# The rest of the DaCapo 2006 suite.  The paper's Figure 2 runs the seven
# benchmarks above; these five complete the suite for library users (they
# are not part of the figure reproductions).
# ---------------------------------------------------------------------------


def chart() -> Workload:
    spec = SyntheticSpec(
        package="org.jfree.chart",
        n_methods=340,
        zipf_s=1.1,
        bytecode_range=(40, 1200),
        mean_cycles_per_invocation=2600,
        alloc_bytes_per_kcycle=610,
        data_bytes=18 * MB,
        locality=0.83,
        accesses_per_kcycle=160,
        seed=108,
        class_pool=("JFreeChart", "XYPlot", "CategoryAxis", "Renderer",
                    "DatasetUtilities", "PdfGraphics2D"),
        method_pool=("draw", "render", "calculate", "getDataItem", "layout",
                     "refreshTicks", "plot", "stroke"),
    )
    return Workload(
        name="chart", base_time_s=14.0, methods=make_methods(spec),
        survival_rate=0.1, phases=3, seed=spec.seed,
        description="pdf chart renderer (DaCapo 2006; not in the paper's figures)",
    )


def eclipse() -> Workload:
    spec = SyntheticSpec(
        package="org.eclipse.jdt",
        n_methods=620,  # the biggest code base in the suite
        zipf_s=0.9,
        bytecode_range=(40, 1500),
        mean_cycles_per_invocation=2200,
        alloc_bytes_per_kcycle=760,
        data_bytes=48 * MB,
        locality=0.78,
        accesses_per_kcycle=190,
        seed=109,
        class_pool=("Compiler", "Parser", "Scanner", "TypeBinding",
                    "LookupEnvironment", "ClassFileReader", "ASTNode"),
    )
    return Workload(
        name="eclipse", base_time_s=65.0, methods=make_methods(spec),
        survival_rate=0.16, phases=6, seed=spec.seed,
        mature_bytes=32 * MB,
        description="JDT compiler workload (DaCapo 2006; not in the paper's figures)",
    )


def jython() -> Workload:
    spec = SyntheticSpec(
        package="org.python.core",
        n_methods=400,
        zipf_s=1.0,
        bytecode_range=(40, 1000),
        mean_cycles_per_invocation=2000,
        alloc_bytes_per_kcycle=1400,  # interpreters allocate furiously
        data_bytes=10 * MB,
        locality=0.85,
        accesses_per_kcycle=150,
        seed=110,
        class_pool=("PyObject", "PyFrame", "PyDictionary", "PyString",
                    "CodeLoader", "imp"),
        method_pool=("__call__", "invoke", "getattr", "setattr", "interpret",
                     "resolve", "createFrame", "intern"),
    )
    return Workload(
        name="jython", base_time_s=20.0, methods=make_methods(spec),
        survival_rate=0.07, phases=4, seed=spec.seed,
        description="pybench under Jython (DaCapo 2006; not in the paper's figures)",
    )


def luindex() -> Workload:
    spec = SyntheticSpec(
        package="org.apache.lucene.index",
        n_methods=220,
        zipf_s=1.3,
        bytecode_range=(50, 900),
        mean_cycles_per_invocation=2800,
        alloc_bytes_per_kcycle=520,
        data_bytes=22 * MB,
        locality=0.8,
        accesses_per_kcycle=180,
        seed=111,
        class_pool=("IndexWriter", "DocumentWriter", "SegmentMerger",
                    "TermInfosWriter", "FieldsWriter"),
        method_pool=("addDocument", "invertDocument", "merge", "flush",
                     "writeTerm", "sortPostings"),
    )
    return Workload(
        name="luindex", base_time_s=18.0, methods=make_methods(spec),
        survival_rate=0.12, phases=2, seed=spec.seed,
        native_fraction=0.09,  # index I/O
        description="lucene indexing (DaCapo 2006; not in the paper's figures)",
    )


def lusearch() -> Workload:
    spec = SyntheticSpec(
        package="org.apache.lucene.search",
        n_methods=180,
        zipf_s=1.4,
        bytecode_range=(50, 800),
        mean_cycles_per_invocation=2400,
        alloc_bytes_per_kcycle=680,
        data_bytes=30 * MB,
        locality=0.72,
        accesses_per_kcycle=220,
        seed=112,
        class_pool=("IndexSearcher", "TermScorer", "BooleanQuery",
                    "SegmentTermEnum", "FieldCache"),
        method_pool=("search", "score", "next", "skipTo", "readTerm",
                     "collect"),
    )
    return Workload(
        name="lusearch", base_time_s=9.0, methods=make_methods(spec),
        survival_rate=0.09, phases=2, seed=spec.seed,
        description="lucene search (DaCapo 2006; not in the paper's figures)",
    )


for _f in (antlr, bloat, fop, hsqldb, pmd, xalan, ps,
           chart, eclipse, jython, luindex, lusearch):
    register(_f.__name__, _f)
