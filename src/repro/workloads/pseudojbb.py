"""SPEC pseudoJBB model.

pseudoJBB is SPEC JBB2000 modified to run a *fixed number of transactions*
(3 warehouses x 100 K transactions in the paper) so execution time is
directly measurable.  Character: a long, steady server workload — a modest
method population that warms up quickly and then runs flat out of
opt-compiled mature code, with a substantial resident data set (the
warehouses).  The long flat phase is why pseudojbb amortizes profiling
overhead so well in Figure 2.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register
from repro.workloads.synthetic import SyntheticSpec, make_methods

__all__ = ["pseudojbb", "WAREHOUSES", "TRANSACTIONS"]

MB = 1024 * 1024

WAREHOUSES = 3
TRANSACTIONS = 100_000


def pseudojbb() -> Workload:
    spec = SyntheticSpec(
        package="spec.jbb",
        n_methods=200,
        zipf_s=1.35,  # the five TPC-C-style transactions dominate
        bytecode_range=(80, 1400),
        mean_cycles_per_invocation=3400,
        alloc_bytes_per_kcycle=398,
        data_bytes=64 * MB,  # warehouse state: large resident set
        locality=0.72,
        accesses_per_kcycle=230,
        seed=211,
        class_pool=("TransactionManager", "Warehouse", "District", "Stock",
                    "Orderline", "Customer", "NewOrderTransaction",
                    "PaymentTransaction", "DeliveryTransaction"),
        method_pool=("process", "execute", "retrieve", "update", "insert",
                     "getStock", "payment", "delivery", "orderStatus",
                     "stockLevel", "nextSequence"),
        pinned_names=(
            "spec.jbb.TransactionManager.runTxn",
            "spec.jbb.NewOrderTransaction.process",
            "spec.jbb.Warehouse.retrieveStock",
        ),
    )
    methods = make_methods(spec)
    top = max(m.weight for m in methods)
    methods[0].weight = top * 1.4
    methods[1].weight = top * 1.0
    methods[2].weight = top * 0.7
    return Workload(
        name="pseudojbb", base_time_s=31.0, methods=methods,
        survival_rate=0.18, phases=1,  # steady state: no phase churn
        seed=spec.seed,
        mature_bytes=24 * MB,
        description=f"{WAREHOUSES} warehouses, {TRANSACTIONS} transactions",
    )


register("pseudojbb", pseudojbb)
