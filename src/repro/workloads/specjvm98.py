"""SPEC JVM98 benchmark models (input size 100, as in the paper).

The paper's Figure 2 shows JVM98 as a single aggregate bar with a 5.74 s
average base time (Figure 3).  We provide the seven individual programs for
examples/tests plus :func:`jvm98`, the aggregate workload used in the
figure reproductions: a composite population with JVM98's overall character
(small-to-medium programs, modest data, quick warm-up).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register
from repro.workloads.synthetic import SyntheticSpec, make_methods

__all__ = [
    "jvm98", "compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack",
]

MB = 1024 * 1024


def _make(name: str, base_time_s: float, **overrides) -> Workload:
    defaults = dict(
        package=f"spec.benchmarks._2{name}",
        n_methods=220,
        zipf_s=1.2,
        bytecode_range=(40, 900),
        mean_cycles_per_invocation=2300,
        alloc_bytes_per_kcycle=640,
        data_bytes=14 * MB,
        locality=0.85,
        accesses_per_kcycle=150,
        seed=sum(ord(c) for c in name) * 7,
    )
    wl_kwargs = {"description": overrides.pop("description", "")}
    for key in ("survival_rate", "phases", "javalib_fraction",
                "native_fraction", "nursery_bytes", "mature_bytes"):
        if key in overrides:
            wl_kwargs[key] = overrides.pop(key)
    defaults.update(overrides)
    spec = SyntheticSpec(**defaults)
    return Workload(
        name=name, base_time_s=base_time_s, methods=make_methods(spec),
        seed=spec.seed, **wl_kwargs,
    )


def jvm98() -> Workload:
    """The aggregate JVM98 workload used for Figures 2 and 3."""
    return _make(
        "jvm98", 5.74,
        package="spec.benchmarks.jvm98",
        n_methods=280, zipf_s=1.15,
        data_bytes=16 * MB, alloc_bytes_per_kcycle=540,
        phases=4,
        description="SPEC JVM98 aggregate (Figure 2/3 bar)",
    )


def compress() -> Workload:
    """_201_compress: tight numeric loop, tiny hot set, low allocation."""
    return _make(
        "compress", 6.2, n_methods=90, zipf_s=1.8,
        alloc_bytes_per_kcycle=120, data_bytes=18 * MB, locality=0.93,
        mean_cycles_per_invocation=3600, phases=1,
    )


def jess() -> Workload:
    """_202_jess: expert system, allocation-heavy rule matching."""
    return _make(
        "jess", 4.6, n_methods=260, zipf_s=1.1,
        alloc_bytes_per_kcycle=980, data_bytes=8 * MB, phases=3,
    )


def db() -> Workload:
    """_209_db: address database, pointer-chasing over a big array."""
    return _make(
        "db", 7.9, n_methods=110, zipf_s=1.5,
        alloc_bytes_per_kcycle=260, data_bytes=36 * MB, locality=0.62,
        accesses_per_kcycle=260, phases=1,
    )


def javac() -> Workload:
    """_213_javac: the JDK compiler, large method population."""
    return _make(
        "javac", 5.3, n_methods=420, zipf_s=0.95,
        alloc_bytes_per_kcycle=860, data_bytes=12 * MB, phases=5,
    )


def mpegaudio() -> Workload:
    """_222_mpegaudio: decoder, numeric, nearly allocation-free."""
    return _make(
        "mpegaudio", 5.1, n_methods=140, zipf_s=1.6,
        alloc_bytes_per_kcycle=60, data_bytes=6 * MB, locality=0.95,
        mean_cycles_per_invocation=3000, phases=1,
    )


def mtrt() -> Workload:
    """_227_mtrt: multithreaded ray tracer (modelled single-threaded)."""
    return _make(
        "mtrt", 4.4, n_methods=180, zipf_s=1.3,
        alloc_bytes_per_kcycle=720, data_bytes=10 * MB, phases=2,
    )


def jack() -> Workload:
    """_228_jack: parser generator, bursty allocation."""
    return _make(
        "jack", 6.7, n_methods=280, zipf_s=1.05,
        alloc_bytes_per_kcycle=880, data_bytes=9 * MB, phases=4,
    )


for _f in (jvm98, compress, jess, db, javac, mpegaudio, mtrt, jack):
    register(_f.__name__, _f)
