"""Synthetic benchmark workloads.

The paper evaluates SPEC JVM98, the DaCapo suite, and SPEC pseudoJBB.  We
cannot run real Java programs, so each benchmark is a *workload model*: a
population of methods with per-benchmark size/hotness/allocation/working-set
characteristics and an infinite, deterministic invocation schedule.  The
models are calibrated so the *dynamics that drive the paper's results* are
right per benchmark: run length (Figure 3 base times), compilation traffic,
GC frequency, and JIT-vs-VM-vs-native cycle mix.

Factories:

* :mod:`repro.workloads.dacapo` — ``antlr, bloat, fop, hsqldb, pmd, xalan,
  ps`` (the Figure 1/2 set);
* :mod:`repro.workloads.specjvm98` — the seven JVM98 programs plus the
  aggregate ``jvm98()`` used in Figure 2;
* :mod:`repro.workloads.pseudojbb` — ``pseudojbb()`` (3 warehouses,
  100 K transactions);
* :mod:`repro.workloads.synthetic` — the generic generator, also handy for
  tests and custom experiments;
* :mod:`repro.workloads.fleet` — the many-guest fleet family: tens of
  small guests with staggered steady/bursty/recompile-heavy phase
  profiles for the virtualized scale-out scenario.
"""

from repro.workloads.base import Workload, by_name, paper_suite
from repro.workloads.fleet import (
    FLEET_PROFILES,
    fleet_member_name,
    fleet_workload,
    fleet_workloads,
)
from repro.workloads.synthetic import SyntheticSpec, make_methods, make_workload

__all__ = [
    "Workload",
    "by_name",
    "paper_suite",
    "SyntheticSpec",
    "make_methods",
    "make_workload",
    "FLEET_PROFILES",
    "fleet_member_name",
    "fleet_workload",
    "fleet_workloads",
]
