"""VIProf — the paper's contribution.

Four cooperating pieces extend the OProfile baseline into a vertically
integrated profiler:

* :mod:`repro.viprof.codemap` — epoch-stamped JIT code-map files and the
  backward-traversal resolution algorithm (§3.1–3.2 of the paper);
* :mod:`repro.viprof.vm_agent` — the VM agent library hooked into the JVM's
  compile/recompile and GC-move paths; logs compilations, *flags* GC moves,
  and writes a partial code map just before each collection;
* :mod:`repro.viprof.runtime_profiler` — the extended OProfile daemon: the
  VM registers its heap boundaries, and samples falling inside them take a
  cheap JIT-classification path (replacing the expensive anonymous-region
  path) and carry a GC-epoch stamp;
* :mod:`repro.viprof.postprocess` — the extended report tools: the
  streaming pipeline's chain (:mod:`repro.pipeline`) with the JIT-epoch
  and boot-image stages composed in, resolving JIT samples through the
  epoch code maps (searching backwards from the sample's epoch) and VM
  samples through the Jikes RVM boot-image map.

:mod:`repro.viprof.session` wires everything together behind one object.
"""

from repro.viprof.codemap import CodeMapIndex, CodeMapRecord, CodeMapWriter
from repro.viprof.vm_agent import AgentCosts, ViprofVmAgent
from repro.viprof.runtime_profiler import ViprofRuntimeProfiler
from repro.viprof.postprocess import ViprofReport
from repro.viprof.callgraph import CrossLayerCallGraph
from repro.viprof.session import ViprofSession

__all__ = [
    "CodeMapIndex",
    "CodeMapRecord",
    "CodeMapWriter",
    "AgentCosts",
    "ViprofVmAgent",
    "ViprofRuntimeProfiler",
    "ViprofReport",
    "CrossLayerCallGraph",
    "ViprofSession",
]
