"""Compiled binary code-map arena: zero-copy, mmap-shared epoch maps.

``CodeMapIndex.load_dir`` re-parses every text map into per-record
``CodeMapRecord`` objects on every run, and forked shard workers
copy-on-write the whole object graph.  The arena compiles a session's
epoch maps **once** (``viprof index``, or automatically at session
teardown) into a single packed file that readers open with ``mmap``
read-only and bisect in place:

* a tiny binary prelude (magic, version, header length);
* a deterministic JSON header: epoch directory, tier table, per-source
  digests (the staleness contract), and the body checksum;
* the body: per epoch, five parallel little-endian ``i64`` columns —
  ``start``, ``end``, ``flags`` (bit 0 = moved, upper bits = tier-table
  index), ``name_off``, ``name_len`` — sorted exactly like
  ``CodeMap.records``, followed by one deduplicated UTF-8 name blob.

Readers bisect the columns through :class:`~repro.os.intervals.
PackedIntervalTable` (``memoryview`` casts over the mapping — no Python
objects per row) and materialize a ``CodeMapRecord`` lazily, only for
rows that actually reach a report.  Because the mapping is read-only and
page-cache backed, every forked worker shares the same physical pages:
pickling an :class:`ArenaCodeMap` ships only ``(path, epoch)``.

Safety contract (the part the fault harness exercises): the arena is a
pure **derived cache**.  Every open validates magic/version/checksum and
every source map's size+sha256 digest; any mismatch — torn write, stale
source, hand-edited map — raises :class:`ArenaError` and callers fall
back to parsing the text maps.  A wrong report is impossible; the worst
failure mode is the old speed.  Consistency between a checked-in arena
and its sources is additionally linted by statcheck rule VP111.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
from pathlib import Path
from typing import Iterable

from repro.errors import ArenaError, CodeMapError
from repro.faults import injector as faults
from repro.os.intervals import PackedIntervalTable
from repro.viprof.codemap import (
    _FILE_RE,
    CodeMap,
    CodeMapRecord,
)

__all__ = [
    "ArenaError",
    "ArenaCodeMap",
    "CodeMapArena",
    "arena_path_for",
    "build_arena",
    "source_digests",
]

MAGIC = b"VPCA"
VERSION = 1
#: ``magic, version, reserved, header_len`` — 12 bytes.
_PRELUDE = struct.Struct("<4sHHI")
#: Bytes per packed column cell.
_CELL = 8
#: Columns per epoch table: start, end, flags, name_off, name_len.
_COLUMNS = 5
#: Arena file name, next to the map directory it compiles.
ARENA_SUFFIX = ".arena"

_FLAG_MOVED = 1


def arena_path_for(map_dir: Path | str) -> Path:
    """Where ``map_dir``'s compiled arena lives: a sibling file, so the
    map directory itself keeps matching the analyzers' file-name regex
    scans (``<session>/jit-maps`` -> ``<session>/jit-maps.arena``)."""
    map_dir = Path(map_dir)
    return map_dir.parent / (map_dir.name + ARENA_SUFFIX)


def source_digests(map_dir: Path) -> list[list]:
    """``[name, size, sha256]`` per map file, sorted by name — the
    freshness contract stored in the header and re-checked on open."""
    out: list[list] = []
    for path in sorted(Path(map_dir).iterdir()):
        if path.is_file() and _FILE_RE.match(path.name):
            blob = path.read_bytes()
            out.append(
                [path.name, len(blob), hashlib.sha256(blob).hexdigest()]
            )
    return out


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


def build_arena(
    map_dir: Path | str, out_path: Path | None = None
) -> Path | None:
    """Compile ``map_dir``'s epoch maps into one packed arena file.

    Returns the arena path, or None when the directory holds no map
    files (nothing to compile — an existing arena, if any, is removed so
    it cannot go stale).  Raises :class:`~repro.errors.CodeMapError` if
    a source map is malformed or internally overlapping: the arena only
    ever encodes maps the strict text loader would accept, which is what
    makes the packed single-probe bisect sound.

    The write is atomic (temp file + ``os.replace``) and instrumented
    with the ``arena.write`` fault point: a crash there leaves a torn
    byte prefix at the final path, which every subsequent open rejects
    by checksum.
    """
    map_dir = Path(map_dir)
    if out_path is None:
        out_path = arena_path_for(map_dir)

    maps: list[CodeMap] = []
    sources: list[list] = []
    if map_dir.is_dir():
        for path in sorted(map_dir.iterdir()):
            if not path.is_file():
                continue
            m = _FILE_RE.match(path.name)
            if m is None:
                continue
            blob = path.read_bytes()
            cm = CodeMap.load(path)
            if int(m.group(1)) != cm.epoch:
                raise CodeMapError(
                    f"{path}: filename epoch {m.group(1)} != "
                    f"header epoch {cm.epoch}"
                )
            maps.append(cm)
            sources.append(
                [path.name, len(blob), hashlib.sha256(blob).hexdigest()]
            )
    if not maps:
        out_path.unlink(missing_ok=True)
        return None

    tiers: list[str] = []
    tier_ids: dict[str, int] = {}
    names = bytearray()
    name_refs: dict[str, tuple[int, int]] = {}
    body = bytearray()
    epochs_dir: list[list[int]] = []
    total = 0
    for cm in maps:
        records = cm.records
        table_off = len(body)
        cols = [[] for _ in range(_COLUMNS)]
        for rec in records:
            tid = tier_ids.get(rec.tier)
            if tid is None:
                tid = tier_ids[rec.tier] = len(tiers)
                tiers.append(rec.tier)
            ref = name_refs.get(rec.name)
            if ref is None:
                encoded = rec.name.encode("utf-8")
                ref = name_refs[rec.name] = (len(names), len(encoded))
                names.extend(encoded)
            cols[0].append(rec.address)
            cols[1].append(rec.end)
            cols[2].append((tid << 1) | (_FLAG_MOVED if rec.moved else 0))
            cols[3].append(ref[0])
            cols[4].append(ref[1])
        for col in cols:
            body.extend(struct.pack(f"<{len(col)}q", *col))
        epochs_dir.append([cm.epoch, len(records), table_off])
        total += len(records)
    names_off = len(body)
    body.extend(names)

    header = {
        "version": VERSION,
        "records": total,
        "epochs": epochs_dir,
        "tiers": tiers,
        "names_off": names_off,
        "names_len": len(names),
        "body_len": len(body),
        "body_sha256": hashlib.sha256(body).hexdigest(),
        "sources": sources,
    }
    header_blob = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    payload = (
        _PRELUDE.pack(MAGIC, VERSION, 0, len(header_blob))
        + header_blob
        + body
    )

    if faults.armed():
        faults.fire(
            faults.ARENA_WRITE,
            effect=lambda rng: _torn_write(out_path, payload, rng),
        )
    tmp = out_path.with_name(out_path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, out_path)
    return out_path


def _torn_write(path: Path, payload: bytes, rng) -> None:
    """Fault effect (``arena.write``): the crash lands mid-write of the
    *final* file, leaving a byte prefix.  Any cut is detectable — a cut
    in the prelude/header fails to parse, a cut in the body fails the
    length or sha256 check — so unlike the text maps no cut position
    needs special care."""
    cut = rng.randrange(1, len(payload))
    path.write_bytes(payload[:cut])


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------


class CodeMapArena:
    """A validated, mmap-backed arena file.

    Opening validates everything once — prelude, header JSON, body
    length, body sha256 — so every later bisect can trust the columns.
    Source *freshness* is a separate concern (the maps can change under
    a perfectly intact arena): :meth:`stale_reasons` re-digests the map
    directory against the recorded contract, and
    :meth:`CodeMapArena.open_fresh` folds both checks into one call.
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        view: memoryview,
        mapping: mmap.mmap,
    ) -> None:
        self.path = path
        self.header = header
        self._view = view
        self._mmap = mapping
        self._epoch_dir = {
            int(e): (int(n), int(off)) for e, n, off in header["epochs"]
        }
        names_off = int(header["names_off"])
        self._names = view[names_off : names_off + int(header["names_len"])]
        self._tiers = list(header["tiers"])
        self._maps: dict[int, ArenaCodeMap] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def open(cls, path: Path | str) -> "CodeMapArena":
        path = Path(path)
        if sys.byteorder != "little":
            # The columns are little-endian on disk and read through a
            # native-order memoryview cast; on a big-endian host the
            # text loader is the correct (and only) path.
            raise ArenaError(
                f"{path}: arena reader requires a little-endian host"
            )
        try:
            fh = open(path, "rb")
        except OSError as e:
            raise ArenaError(f"{path}: cannot open arena: {e}") from None
        try:
            try:
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError) as e:
                raise ArenaError(f"{path}: cannot mmap arena: {e}") from None
        finally:
            # The mapping keeps its own reference to the file.
            fh.close()
        view = memoryview(mapped)
        if len(view) < _PRELUDE.size:
            raise ArenaError(f"{path}: truncated arena prelude")
        magic, version, _, header_len = _PRELUDE.unpack_from(view, 0)
        if magic != MAGIC:
            raise ArenaError(f"{path}: bad arena magic {magic!r}")
        if version != VERSION:
            raise ArenaError(
                f"{path}: unsupported arena version {version} "
                f"(reader speaks {VERSION})"
            )
        body_off = _PRELUDE.size + header_len
        if len(view) < body_off:
            raise ArenaError(f"{path}: truncated arena header")
        try:
            header = json.loads(bytes(view[_PRELUDE.size : body_off]))
        except (ValueError, UnicodeDecodeError):
            raise ArenaError(f"{path}: corrupt arena header") from None
        body = view[body_off:]
        if len(body) != int(header.get("body_len", -1)):
            raise ArenaError(
                f"{path}: arena body is {len(body)} bytes, header "
                f"promises {header.get('body_len')}"
            )
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("body_sha256"):
            raise ArenaError(f"{path}: arena body checksum mismatch")
        return cls(path, header, body, mapped)

    @classmethod
    def open_fresh(cls, map_dir: Path | str) -> "CodeMapArena":
        """Open ``map_dir``'s arena, requiring it to exist, validate,
        *and* match the current source maps byte-for-byte."""
        map_dir = Path(map_dir)
        arena = cls.open(arena_path_for(map_dir))
        reasons = arena.stale_reasons(map_dir)
        if not reasons:
            return arena
        arena.close()
        raise ArenaError(
            f"{arena.path}: stale arena: {'; '.join(reasons)}"
        )

    def __enter__(self) -> "CodeMapArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the mapping.  For probe-style callers (``viprof index
        --check``, statcheck VP111) that validate and move on; resolver-
        facing arenas live in :data:`_PROCESS_ARENAS` for the process
        lifetime and never call this."""
        self._maps.clear()
        self._names.release()
        self._view.release()
        try:
            self._mmap.close()
        except BufferError:
            # A column view escaped (caller still holds an ArenaCodeMap);
            # the mapping is freed when the last view is collected.
            pass

    # -- validation -----------------------------------------------------

    def stale_reasons(self, map_dir: Path | str) -> list[str]:
        """Why this arena no longer matches ``map_dir`` (empty = fresh).

        The contract is per-file ``(name, size, sha256)`` equality over
        the map-file set — the same digests :func:`build_arena` recorded.
        """
        map_dir = Path(map_dir)
        current = (
            source_digests(map_dir) if map_dir.is_dir() else []
        )
        recorded = [list(s) for s in self.header.get("sources", [])]
        if current == recorded:
            return []
        cur = {name: (size, sha) for name, size, sha in current}
        rec = {name: (size, sha) for name, size, sha in recorded}
        reasons = []
        for name in sorted(rec.keys() - cur.keys()):
            reasons.append(f"source map {name} was removed")
        for name in sorted(cur.keys() - rec.keys()):
            reasons.append(f"source map {name} is not in the arena")
        for name in sorted(rec.keys() & cur.keys()):
            if rec[name] != cur[name]:
                reasons.append(f"source map {name} changed on disk")
        return reasons

    # -- access ---------------------------------------------------------

    @property
    def epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self._epoch_dir))

    @property
    def records(self) -> int:
        return int(self.header["records"])

    @property
    def sources(self) -> tuple[tuple[str, int, str], ...]:
        return tuple(
            (name, int(size), sha)
            for name, size, sha in self.header.get("sources", [])
        )

    def record_count(self, epoch: int) -> int:
        return self._epoch_dir[epoch][0]

    def epoch_map(self, epoch: int) -> "ArenaCodeMap":
        cm = self._maps.get(epoch)
        if cm is None:
            count, table_off = self._epoch_dir[epoch]
            cm = ArenaCodeMap(self, epoch, count, table_off)
            self._maps[epoch] = cm
        return cm

    def maps(self) -> dict[int, "ArenaCodeMap"]:
        """Every epoch's lazy map view, keyed like ``load_dir``'s dict."""
        return {e: self.epoch_map(e) for e in self._epoch_dir}

    def info(self) -> dict:
        """Inspection payload for ``viprof index --json`` and VP111."""
        return {
            "path": str(self.path),
            "version": int(self.header["version"]),
            "bytes": self.path.stat().st_size,
            "records": self.records,
            "epochs": list(self.epochs),
            "sources": [list(s) for s in self.sources],
        }

    def _column(self, table_off: int, count: int, col: int) -> memoryview:
        start = table_off + col * count * _CELL
        return self._view[start : start + count * _CELL].cast("q")

    def _name(self, off: int, length: int) -> str:
        return str(self._names[off : off + length], "utf-8")


#: Per-process cache of opened arenas, keyed by absolute path.  Unpickled
#: :class:`ArenaCodeMap` handles in a shard worker re-attach here, so one
#: worker maps each arena file exactly once no matter how many epochs it
#: resolves.
_PROCESS_ARENAS: dict[str, CodeMapArena] = {}


def _shared_arena(path: str) -> CodeMapArena:
    arena = _PROCESS_ARENAS.get(path)
    if arena is None:
        arena = CodeMapArena.open(path)
        _PROCESS_ARENAS[path] = arena
    return arena


def _reopen_epoch(path: str, epoch: int) -> "ArenaCodeMap":
    """Unpickle hook: re-attach to the process-wide mapping."""
    return _shared_arena(path).epoch_map(epoch)


class ArenaCodeMap:
    """One epoch's packed table, quacking like :class:`CodeMap`.

    Lookups bisect the raw ``i64`` columns; a :class:`CodeMapRecord` is
    only built (then memoized) for rows a lookup actually returns, so a
    million-row map whose hot set is fifty methods materializes fifty
    objects.  Pickles as ``(arena path, epoch)`` — a forked or spawned
    worker re-maps the same file and shares its page cache.
    """

    __slots__ = (
        "epoch",
        "source",
        "_arena",
        "_count",
        "_table",
        "_flags",
        "_name_off",
        "_name_len",
        "_rows",
    )

    def __init__(
        self, arena: CodeMapArena, epoch: int, count: int, table_off: int
    ) -> None:
        self.epoch = epoch
        self.source = arena.path
        self._arena = arena
        self._count = count
        self._table = PackedIntervalTable(
            arena._column(table_off, count, 0),
            arena._column(table_off, count, 1),
        )
        self._flags = arena._column(table_off, count, 2)
        self._name_off = arena._column(table_off, count, 3)
        self._name_len = arena._column(table_off, count, 4)
        self._rows: dict[int, CodeMapRecord] = {}

    def __len__(self) -> int:
        return self._count

    def __reduce__(self):
        return (_reopen_epoch, (str(self.source), self.epoch))

    @property
    def records(self) -> tuple[CodeMapRecord, ...]:
        return tuple(self._row(i) for i in range(self._count))

    def _row(self, i: int) -> CodeMapRecord:
        rec = self._rows.get(i)
        if rec is None:
            starts = self._table._starts
            ends = self._table._ends
            flags = self._flags[i]
            rec = CodeMapRecord(
                address=starts[i],
                size=ends[i] - starts[i],
                tier=self._arena._tiers[flags >> 1],
                name=self._arena._name(
                    self._name_off[i], self._name_len[i]
                ),
                moved=bool(flags & _FLAG_MOVED),
            )
            self._rows[i] = rec
        return rec

    def lookup(self, addr: int) -> CodeMapRecord | None:
        i = self._table.first_covering(addr)
        return self._row(i) if i >= 0 else None

    def lookup_run(
        self, addrs: Iterable[int]
    ) -> list[CodeMapRecord | None]:
        """:meth:`lookup` over an ascending run (the columnar bucket
        shape) — one packed-table probe run, rows materialized once per
        distinct hit."""
        rows = self._rows
        out: list[CodeMapRecord | None] = []
        for i in self._table.first_covering_many(addrs):
            if i < 0:
                out.append(None)
            else:
                rec = rows.get(i)
                out.append(rec if rec is not None else self._row(i))
        return out
