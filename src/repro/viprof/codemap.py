"""Epoch-stamped JIT code maps.

The VM agent writes one map file per GC epoch, *just before* the collection
that closes the epoch.  Each map is **partial**: it contains only methods
compiled (or recompiled) during that epoch plus methods moved by the
previous collection — the paper's key amortization trick.

Resolution (paper §3.2): a sample stamped with epoch *e* is looked up in
map *e*; on a miss the tools search map *e-1*, *e-2*, ... until the first
map containing the address.  That guarantees attribution to the most
recently compiled-or-moved method that occupied the address at the sample's
time, even though addresses are recycled across epochs by the copying
collector.

Map files are plain text (one record per line: start, size, tier, name),
matching the flavour of Jikes RVM's own map artifacts::

    # viprof code map epoch 7
    0x60812340 0x00000420 O1 org.example.app.Scanner.parseLine
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import CodeMapError

__all__ = ["CodeMapRecord", "CodeMapWriter", "CodeMap", "CodeMapIndex"]

_FILE_RE = re.compile(r"^jit-map\.(\d{5})$")
_HEADER_RE = re.compile(r"^# viprof code map epoch (\d+)$")
_LINE_RE = re.compile(
    r"^(0x[0-9a-fA-F]+) (0x[0-9a-fA-F]+) (\S+) (.+)$"
)


@dataclass(frozen=True, slots=True, order=True)
class CodeMapRecord:
    """One mapped method body: image-absolute address range plus identity."""

    address: int
    size: int
    tier: str
    name: str

    def __post_init__(self) -> None:
        if self.address <= 0:
            raise CodeMapError(f"bad address {self.address:#x} for {self.name!r}")
        if self.size <= 0:
            raise CodeMapError(f"bad size {self.size} for {self.name!r}")

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, addr: int) -> bool:
        return self.address <= addr < self.end

    def to_line(self) -> str:
        return f"{self.address:#010x} {self.size:#010x} {self.tier} {self.name}"

    @classmethod
    def from_line(cls, line: str) -> "CodeMapRecord":
        m = _LINE_RE.match(line)
        if m is None:
            raise CodeMapError(f"malformed code-map line: {line!r}")
        return cls(
            address=int(m.group(1), 16),
            size=int(m.group(2), 16),
            tier=m.group(3),
            name=m.group(4),
        )


class CodeMapWriter:
    """Writes per-epoch map files into a session directory."""

    def __init__(self, map_dir: Path | str) -> None:
        self.map_dir = Path(map_dir)
        self.map_dir.mkdir(parents=True, exist_ok=True)
        self.maps_written = 0
        self.records_written = 0
        self._epochs_seen: set[int] = set()

    def path_for(self, epoch: int) -> Path:
        return self.map_dir / f"jit-map.{epoch:05d}"

    def write(self, epoch: int, records: Iterable[CodeMapRecord]) -> Path:
        """Write the (partial) map for ``epoch``.

        Raises:
            CodeMapError: if a map for this epoch was already written
                (epochs close exactly once).
        """
        if epoch < 0:
            raise CodeMapError(f"negative epoch {epoch}")
        if epoch in self._epochs_seen:
            raise CodeMapError(f"map for epoch {epoch} already written")
        self._epochs_seen.add(epoch)
        path = self.path_for(epoch)
        recs = sorted(records)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# viprof code map epoch {epoch}\n")
            for r in recs:
                fh.write(r.to_line() + "\n")
        self.maps_written += 1
        self.records_written += len(recs)
        return path


class CodeMap:
    """One epoch's records, indexed for address lookup.

    Records within a single epoch must be non-overlapping: the bump
    allocator never reuses space between collections (property-tested in
    ``tests/viprof/test_codemap_properties.py``).
    """

    def __init__(self, epoch: int, records: list[CodeMapRecord]):
        self.epoch = epoch
        self._records = sorted(records)
        self._addrs = [r.address for r in self._records]
        prev: CodeMapRecord | None = None
        for r in self._records:
            if prev is not None and r.address < prev.end:
                raise CodeMapError(
                    f"epoch {epoch}: records {prev.name!r} and {r.name!r} overlap"
                )
            prev = r

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[CodeMapRecord, ...]:
        return tuple(self._records)

    def lookup(self, addr: int) -> CodeMapRecord | None:
        i = bisect.bisect_right(self._addrs, addr) - 1
        if i < 0:
            return None
        r = self._records[i]
        return r if r.contains(addr) else None

    @classmethod
    def load(cls, path: Path) -> "CodeMap":
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise CodeMapError(f"{path}: empty map file")
        m = _HEADER_RE.match(lines[0])
        if m is None:
            raise CodeMapError(f"{path}: bad header {lines[0]!r}")
        epoch = int(m.group(1))
        records = [CodeMapRecord.from_line(ln) for ln in lines[1:] if ln.strip()]
        return cls(epoch, records)


class CodeMapIndex:
    """All of a session's maps plus the backward-resolution algorithm."""

    def __init__(self, maps: dict[int, CodeMap]):
        self._maps = maps
        self.lookups = 0
        self.fallback_steps = 0  # how far backward searches walked, total

    @classmethod
    def load_dir(cls, map_dir: Path | str) -> "CodeMapIndex":
        map_dir = Path(map_dir)
        maps: dict[int, CodeMap] = {}
        for path in sorted(map_dir.iterdir()):
            m = _FILE_RE.match(path.name)
            if m is None:
                continue
            cm = CodeMap.load(path)
            if int(m.group(1)) != cm.epoch:
                raise CodeMapError(
                    f"{path}: filename epoch {m.group(1)} != header epoch {cm.epoch}"
                )
            maps[cm.epoch] = cm
        return cls(maps)

    @property
    def epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self._maps))

    def map_for(self, epoch: int) -> CodeMap | None:
        return self._maps.get(epoch)

    def resolve(
        self, epoch: int, addr: int, backward: bool = True
    ) -> tuple[CodeMapRecord, int] | None:
        """Resolve ``addr`` for a sample taken during ``epoch``.

        Searches the sample's epoch first, then walks strictly backwards.
        Returns ``(record, epoch_found)`` or None when no map ever held the
        address (e.g. the method was compiled after the last map write and
        the final flush is missing).

        ``backward=False`` is the ablation: consult only the sample's own
        epoch map, which loses every sample whose method was compiled or
        moved in an earlier epoch.
        """
        if not self._maps:
            return None
        self.lookups += 1
        top = min(epoch, max(self._maps)) if epoch >= 0 else max(self._maps)
        bottom = top if not backward else min(self._maps)
        for e in range(top, bottom - 1, -1):
            cm = self._maps.get(e)
            if cm is None:
                continue
            rec = cm.lookup(addr)
            if rec is not None:
                return rec, e
            self.fallback_steps += 1
        return None
