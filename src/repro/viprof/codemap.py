"""Epoch-stamped JIT code maps.

The VM agent writes one map file per GC epoch, *just before* the collection
that closes the epoch.  Each map is **partial**: it contains only methods
compiled (or recompiled) during that epoch plus methods moved by the
previous collection — the paper's key amortization trick.

Resolution (paper §3.2): a sample stamped with epoch *e* is looked up in
map *e*; on a miss the tools search map *e-1*, *e-2*, ... until the first
map containing the address.  That guarantees attribution to the most
recently compiled-or-moved method that occupied the address at the sample's
time, even though addresses are recycled across epochs by the copying
collector.

Map files are plain text (one record per line: start, size, tier, name),
matching the flavour of Jikes RVM's own map artifacts::

    # viprof code map epoch 7
    0x60812340 0x00000420 O1 org.example.app.Scanner.parseLine

Records written for a body *flagged as moved* by the previous collection
carry a ``/M`` marker on the tier field (``O1/M``); the marker lets the
static artifact analyzer (:mod:`repro.statcheck`) verify move provenance
without replaying the run.  Readers without the marker see a plain tier.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import CodeMapError
from repro.faults import injector as faults
from repro.os.intervals import Interval, IntervalIndex

__all__ = [
    "CodeMapRecord",
    "CodeMapWriter",
    "CodeMap",
    "CodeMapIndex",
    "RESOLVE_BLOCKED",
]

#: Tier-field suffix marking a record logged because the previous GC moved it.
MOVED_MARKER = "/M"

_FILE_RE = re.compile(r"^jit-map\.(\d{5})$")
_HEADER_RE = re.compile(r"^# viprof code map epoch (\d+)$")
_LINE_RE = re.compile(
    r"^(0x[0-9a-fA-F]+) (0x[0-9a-fA-F]+) (\S+) (.+)$"
)


@dataclass(frozen=True, slots=True, order=True)
class CodeMapRecord:
    """One mapped method body: image-absolute address range plus identity.

    ``moved`` is True for records written because the previous collection
    relocated the body (the agent's flag-and-defer path), False for records
    written because the body was compiled during the epoch.
    """

    address: int
    size: int
    tier: str
    name: str
    moved: bool = False

    def __post_init__(self) -> None:
        if self.address <= 0:
            raise CodeMapError(f"bad address {self.address:#x} for {self.name!r}")
        if self.size <= 0:
            raise CodeMapError(f"bad size {self.size} for {self.name!r}")

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, addr: int) -> bool:
        return self.address <= addr < self.end

    def to_line(self) -> str:
        tier = self.tier + MOVED_MARKER if self.moved else self.tier
        return f"{self.address:#010x} {self.size:#010x} {tier} {self.name}"

    @classmethod
    def from_line(cls, line: str) -> "CodeMapRecord":
        m = _LINE_RE.match(line)
        if m is None:
            raise CodeMapError(f"malformed code-map line: {line!r}")
        tier = m.group(3)
        moved = tier.endswith(MOVED_MARKER)
        if moved:
            tier = tier[: -len(MOVED_MARKER)]
        return cls(
            address=int(m.group(1), 16),
            size=int(m.group(2), 16),
            tier=tier,
            name=m.group(4),
            moved=moved,
        )


class CodeMapWriter:
    """Writes per-epoch map files into a session directory."""

    def __init__(self, map_dir: Path | str) -> None:
        self.map_dir = Path(map_dir)
        self.map_dir.mkdir(parents=True, exist_ok=True)
        self.maps_written = 0
        self.records_written = 0
        self._epochs_seen: set[int] = set()

    def path_for(self, epoch: int) -> Path:
        return self.map_dir / f"jit-map.{epoch:05d}"

    def write(self, epoch: int, records: Iterable[CodeMapRecord]) -> Path:
        """Write the (partial) map for ``epoch``.

        Raises:
            CodeMapError: if a map for this epoch was already written
                (epochs close exactly once).
        """
        if epoch < 0:
            raise CodeMapError(f"{self.map_dir}: negative epoch {epoch}")
        if epoch in self._epochs_seen:
            raise CodeMapError(
                f"{self.path_for(epoch)}: map for epoch {epoch} "
                "already written"
            )
        self._epochs_seen.add(epoch)
        path = self.path_for(epoch)
        recs = sorted(records)
        lines = [f"# viprof code map epoch {epoch}"]
        lines.extend(r.to_line() for r in recs)
        content = "\n".join(lines) + "\n"
        if faults.armed():
            faults.fire(
                faults.CODEMAP_WRITE,
                effect=lambda rng: self._torn_write(path, content, rng),
            )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        self.maps_written += 1
        self.records_written += len(recs)
        return path

    @staticmethod
    def _torn_write(path: Path, content: str, rng) -> None:
        """Fault effect (``codemap.write``): the crash lands mid-write, so
        a prefix of the map text reaches the file.

        The cut is constrained to land inside the *address field* of a
        record line (or inside the header when the map has no records), so
        the damage is always detectable as a malformed file.  A cut at a
        line boundary would leave a well-formed shorter map — a loss the
        text format fundamentally cannot detect (no record count, no
        checksum; ``docs/robustness.md`` documents the limitation) — so
        the harness does not pretend to test it.
        """
        lines = content.splitlines(keepends=True)
        if len(lines) == 1:
            # Header-only map: tear inside the header line.
            cut = rng.randrange(1, max(2, len(lines[0]) - 1))
        else:
            victim = rng.randrange(1, len(lines))
            prefix = sum(len(ln) for ln in lines[:victim])
            # Cut inside the first hex field ("0x......"), which cannot
            # parse as a full record line.
            cut = prefix + rng.randrange(1, 9)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content[:cut])


class CodeMap:
    """One epoch's records, indexed for address lookup.

    Records within a single epoch must be non-overlapping: the bump
    allocator never reuses space between collections (property-tested in
    ``tests/viprof/test_codemap_properties.py``).
    """

    def __init__(
        self,
        epoch: int,
        records: list[CodeMapRecord],
        source: Path | None = None,
    ):
        self.epoch = epoch
        self.source = source
        self._records = sorted(records)
        self._index: IntervalIndex[CodeMapRecord] = IntervalIndex(
            Interval(r.address, r.end, r) for r in self._records
        )
        bad = self._index.overlapping_pairs()
        if bad:
            a, b = bad[0]
            raise CodeMapError(
                f"{self._where()}records {a.payload.name!r} and "
                f"{b.payload.name!r} overlap"
            )

    def _where(self) -> str:
        prefix = f"{self.source}: " if self.source is not None else ""
        return f"{prefix}epoch {self.epoch}: "

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[CodeMapRecord, ...]:
        return tuple(self._records)

    def lookup(self, addr: int) -> CodeMapRecord | None:
        iv = self._index.first_covering(addr)
        return iv.payload if iv is not None else None

    def lookup_run(
        self, addrs: Iterable[int]
    ) -> list[CodeMapRecord | None]:
        """:meth:`lookup` over an ascending run of addresses (the columnar
        resolver's per-epoch bucket), one interval probe per *distinct
        covering record* instead of one bisect per address."""
        return [
            iv.payload if iv is not None else None
            for iv in self._index.first_covering_many(addrs)
        ]

    @classmethod
    def load(cls, path: Path) -> "CodeMap":
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise CodeMapError(f"{path}: empty map file")
        m = _HEADER_RE.match(lines[0])
        if m is None:
            raise CodeMapError(f"{path}: bad header {lines[0]!r}")
        epoch = int(m.group(1))
        records = []
        for lineno, ln in enumerate(lines[1:], start=2):
            if not ln.strip():
                continue
            try:
                records.append(CodeMapRecord.from_line(ln))
            except CodeMapError as e:
                raise CodeMapError(
                    f"{path}: epoch {epoch}: line {lineno}: {e}"
                ) from None
        return cls(epoch, records, source=path)


class _Blocked:
    """Singleton sentinel: the backward walk hit a quarantined epoch
    before any map contained the address (see
    :meth:`CodeMapIndex.resolve`)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RESOLVE_BLOCKED"


#: Returned by :meth:`CodeMapIndex.resolve` when a quarantined epoch
#: blocks the walk.  Distinct from None (no map ever held the address).
RESOLVE_BLOCKED = _Blocked()


class CodeMapIndex:
    """All of a session's maps plus the backward-resolution algorithm.

    The backward walk is memoized: once a session's maps are loaded they
    are immutable, so the walk is a pure function of ``(top epoch, addr,
    backward)`` and its result — including a miss — can never change.  A
    bounded LRU memo short-circuits repeat walks for hot PCs, which is
    most of a profile (``memo_hits`` counts the short-circuits;
    ``fallback_steps`` counts only real walk steps).

    ``quarantined`` marks epochs whose maps existed but were damaged and
    set aside by salvage (``viprof recover``).  A quarantined epoch is a
    **barrier**: the walk cannot see what the lost map recorded, and the
    copying collector recycles addresses across epochs, so continuing
    past it could silently attribute a PC to an *older* occupant of the
    address.  The walk therefore returns :data:`RESOLVE_BLOCKED` instead
    — the degraded pipeline counts those samples as unresolved, keeping
    every resolution it *does* make a subset of the undamaged run's
    (property-tested in ``tests/viprof/test_epoch_walk_properties.py``).
    An epoch absent from both ``maps`` and ``quarantined`` is skipped
    exactly as before (pre-salvage behaviour is unchanged).
    """

    #: Bound on memoized (top, addr, backward) walk results.
    MEMO_CAPACITY = 1 << 13

    def __init__(
        self,
        maps: dict[int, CodeMap],
        quarantined: Iterable[int] = (),
    ):
        self._maps = maps
        self.quarantined = frozenset(quarantined)
        overlap = self.quarantined & set(maps)
        if overlap:
            raise CodeMapError(
                f"epochs {sorted(overlap)} both loaded and quarantined"
            )
        self.lookups = 0
        self.fallback_steps = 0  # how far backward searches walked, total
        self.memo_hits = 0
        self._memo: "OrderedDict[tuple[int, int, bool], tuple[CodeMapRecord, int] | _Blocked | None]" = (
            OrderedDict()
        )

    @classmethod
    def load_dir(
        cls,
        map_dir: Path | str,
        quarantined: Iterable[int] = (),
        arena: bool | str = "auto",
    ) -> "CodeMapIndex":
        """Load a session's maps, preferring the compiled arena.

        ``arena`` controls the compiled-artifact path
        (:mod:`repro.viprof.arena`):

        * ``"auto"`` (default) — if a valid arena file exists **and** its
          recorded source digests still match the map files, back the
          index with zero-copy mmap tables; otherwise parse the text
          maps exactly as before.  Never writes anything.
        * ``False`` — text maps only (the parity baseline).
        * ``"require"`` — raise :class:`~repro.viprof.arena.ArenaError`
          unless a fresh arena is usable (tests and ``viprof index
          --check`` use this to prove the fast path was actually taken).

        Quarantined sessions always use the text path: salvage deletes
        the arena, and the barrier walk is the well-tested authority on
        damaged sessions.
        """
        map_dir = Path(map_dir)
        quarantined = tuple(quarantined)
        if arena is not False and not quarantined:
            from repro.viprof import arena as arena_mod

            try:
                opened = arena_mod.CodeMapArena.open_fresh(map_dir)
            except arena_mod.ArenaError:
                if arena == "require":
                    raise
            else:
                return cls(opened.maps(), quarantined=quarantined)
        elif arena == "require":
            raise CodeMapError(
                f"{map_dir}: arena required but session is quarantined"
            )
        maps: dict[int, CodeMap] = {}
        for path in sorted(map_dir.iterdir()):
            if not path.is_file():
                continue
            m = _FILE_RE.match(path.name)
            if m is None:
                continue
            cm = CodeMap.load(path)
            if int(m.group(1)) != cm.epoch:
                raise CodeMapError(
                    f"{path}: filename epoch {m.group(1)} != header epoch {cm.epoch}"
                )
            maps[cm.epoch] = cm
        return cls(maps, quarantined=quarantined)

    @property
    def epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self._maps))

    def map_for(self, epoch: int) -> CodeMap | None:
        return self._maps.get(epoch)

    def resolve(
        self, epoch: int, addr: int, backward: bool = True
    ) -> tuple[CodeMapRecord, int] | _Blocked | None:
        """Resolve ``addr`` for a sample taken during ``epoch``.

        Searches the sample's epoch first, then walks strictly backwards.
        Returns ``(record, epoch_found)`` or None when no map ever held the
        address (e.g. the method was compiled after the last map write and
        the final flush is missing).

        With a non-empty ``quarantined`` set the walk stops at the first
        quarantined epoch it meets and returns :data:`RESOLVE_BLOCKED`:
        the damaged map could have held the address, so any hit below the
        barrier might be a stale occupant.

        ``backward=False`` is the ablation: consult only the sample's own
        epoch map, which loses every sample whose method was compiled or
        moved in an earlier epoch.
        """
        if self.quarantined:
            return self._resolve_guarded(epoch, addr, backward)
        if not self._maps:
            return None
        self.lookups += 1
        top = min(epoch, max(self._maps)) if epoch >= 0 else max(self._maps)
        key = (top, addr, backward)
        memo = self._memo
        if key in memo:
            self.memo_hits += 1
            memo.move_to_end(key)
            return memo[key]
        result: tuple[CodeMapRecord, int] | None = None
        bottom = top if not backward else min(self._maps)
        for e in range(top, bottom - 1, -1):
            cm = self._maps.get(e)
            if cm is None:
                continue
            rec = cm.lookup(addr)
            if rec is not None:
                result = (rec, e)
                break
            self.fallback_steps += 1
        memo[key] = result
        if len(memo) > self.MEMO_CAPACITY:
            memo.popitem(last=False)
        return result

    def resolve_run(
        self, epoch: int, addrs: Iterable[int], backward: bool = True
    ) -> list[tuple[CodeMapRecord, int] | _Blocked | None]:
        """Batched :meth:`resolve` for an **ascending** run of addresses
        sharing one sample epoch (the columnar resolver's bucket shape).

        Walks the epochs once for the whole run — each visited map is
        probed with one :meth:`CodeMap.lookup_run` over the still-pending
        addresses — instead of restarting the backward walk per address.
        Results, the memo contents, and every counter (``lookups``,
        ``memo_hits``, ``fallback_steps``) are identical to calling
        :meth:`resolve` per address.
        """
        if self.quarantined or not self._maps:
            # Guarded walks stop at per-address barriers; keep the
            # well-tested scalar path authoritative for salvage mode.
            return [self.resolve(epoch, a, backward) for a in addrs]
        addrs = list(addrs)
        if not addrs:
            return []
        self.lookups += len(addrs)
        top = min(epoch, max(self._maps)) if epoch >= 0 else max(self._maps)
        memo = self._memo
        results: list[tuple[CodeMapRecord, int] | _Blocked | None] = (
            [None] * len(addrs)
        )
        pending: list[tuple[int, int]] = []  # (position, addr)
        for pos, addr in enumerate(addrs):
            key = (top, addr, backward)
            if key in memo:
                self.memo_hits += 1
                memo.move_to_end(key)
                results[pos] = memo[key]
            else:
                pending.append((pos, addr))
        bottom = top if not backward else min(self._maps)
        for e in range(top, bottom - 1, -1):
            if not pending:
                break
            cm = self._maps.get(e)
            if cm is None:
                continue
            found = cm.lookup_run([a for _, a in pending])
            still: list[tuple[int, int]] = []
            for (pos, addr), rec in zip(pending, found):
                if rec is not None:
                    results[pos] = (rec, e)
                    self._memo_put((top, addr, backward), (rec, e))
                else:
                    self.fallback_steps += 1
                    still.append((pos, addr))
            pending = still
        for pos, addr in pending:
            self._memo_put((top, addr, backward), None)
        return results

    def _memo_put(
        self,
        key: tuple[int, int, bool],
        result: tuple[CodeMapRecord, int] | _Blocked | None,
    ) -> None:
        memo = self._memo
        memo[key] = result
        if len(memo) > self.MEMO_CAPACITY:
            memo.popitem(last=False)

    def _resolve_guarded(
        self, epoch: int, addr: int, backward: bool
    ) -> tuple[CodeMapRecord, int] | _Blocked | None:
        """The barrier walk used when some epochs are quarantined.

        Identical to the plain walk except a quarantined epoch ends the
        search with :data:`RESOLVE_BLOCKED`, and clamping/bottoming use
        healthy *and* quarantined epochs (a lost newest map must not make
        later samples silently consult older maps).
        """
        self.lookups += 1
        known = self._maps.keys() | self.quarantined
        known_top = max(known)
        top = min(epoch, known_top) if epoch >= 0 else known_top
        key = (top, addr, backward)
        memo = self._memo
        if key in memo:
            self.memo_hits += 1
            memo.move_to_end(key)
            return memo[key]
        result: tuple[CodeMapRecord, int] | _Blocked | None = None
        bottom = top if not backward else min(known)
        for e in range(top, bottom - 1, -1):
            if e in self.quarantined:
                result = RESOLVE_BLOCKED
                break
            cm = self._maps.get(e)
            if cm is None:
                continue
            rec = cm.lookup(addr)
            if rec is not None:
                result = (rec, e)
                break
            self.fallback_steps += 1
        memo[key] = result
        if len(memo) > self.MEMO_CAPACITY:
            memo.popitem(last=False)
        return result
