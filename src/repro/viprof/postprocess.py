"""VIProf post-processing — the extended opreport.

Two extensions over the stock resolver (paper §3.2):

1. **JIT samples** — a sample whose PC falls inside a registered VM heap is
   resolved through the epoch code maps: the map for the sample's epoch
   first, then strictly backwards until the first map containing the
   address (:class:`repro.viprof.codemap.CodeMapIndex`).  Resolved samples
   report image ``JIT.App``; misses are counted and reported as
   ``(unresolved jit)``.
2. **Boot-image samples** — samples in the (stripped, file-backed)
   ``RVM.code.image`` mapping are resolved through the Jikes RVM internal
   map and reported under image ``RVM.map``, exactly as Figure 1 shows.

Everything else (kernel, shared libraries, other processes) falls through
to stock OProfile resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.profiling.annotate import SymbolAnnotation

from repro.jvm.bootimage import BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL, RvmMap
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.oprofile.opreport import OpReport
from repro.os.address_space import VmaKind
from repro.os.binary import NO_SYMBOLS
from repro.os.kernel import Kernel
from repro.profiling.model import RawSample, ResolvedSample
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.runtime_profiler import VmRegistration

__all__ = ["ViprofReport", "UNRESOLVED_JIT"]

UNRESOLVED_JIT = "(unresolved jit)"


@dataclass
class JitResolutionStats:
    """Bookkeeping on how JIT samples resolved (accuracy reporting)."""

    jit_samples: int = 0
    resolved_in_own_epoch: int = 0
    resolved_in_earlier_epoch: int = 0
    unresolved: int = 0

    @property
    def resolved(self) -> int:
        return self.resolved_in_own_epoch + self.resolved_in_earlier_epoch

    @property
    def resolution_rate(self) -> float:
        return self.resolved / self.jit_samples if self.jit_samples else 1.0


class ViprofReport(OpReport):
    """Extended post-processor: stock opreport + code maps + RVM.map."""

    def __init__(
        self,
        kernel: Kernel,
        sample_dir: Path | str,
        codemaps: CodeMapIndex,
        rvm_map: RvmMap,
        registrations: tuple[VmRegistration, ...],
        backward_traversal: bool = True,
    ) -> None:
        """``backward_traversal=False`` is the ablation: JIT samples only
        consult their own epoch's map (no walk through earlier maps)."""
        super().__init__(kernel, sample_dir)
        self.codemaps = codemaps
        self.rvm_map = rvm_map
        self.backward_traversal = backward_traversal
        self._registrations = {r.task_id: r for r in registrations}
        self.jit_stats = JitResolutionStats()

    # ------------------------------------------------------------------

    def resolve(self, sample: RawSample) -> ResolvedSample:
        if not sample.kernel_mode and not self.kernel.is_kernel_address(sample.pc):
            reg = self._registrations.get(sample.task_id)
            if reg is not None and reg.covers(sample.pc):
                return self._resolve_jit(sample)
            boot = self._resolve_boot_image(sample)
            if boot is not None:
                return boot
        return super().resolve(sample)

    def _resolve_jit(self, sample: RawSample) -> ResolvedSample:
        self.jit_stats.jit_samples += 1
        hit = self.codemaps.resolve(
            sample.epoch, sample.pc, backward=self.backward_traversal
        )
        if hit is None:
            self.jit_stats.unresolved += 1
            return ResolvedSample(
                raw=sample, image=JIT_APP_IMAGE_LABEL, symbol=UNRESOLVED_JIT
            )
        record, found_epoch = hit
        if found_epoch == sample.epoch:
            self.jit_stats.resolved_in_own_epoch += 1
        else:
            self.jit_stats.resolved_in_earlier_epoch += 1
        return ResolvedSample(
            raw=sample, image=JIT_APP_IMAGE_LABEL, symbol=record.name,
            offset=sample.pc - record.address,
        )

    def _resolve_boot_image(self, sample: RawSample) -> ResolvedSample | None:
        proc = self.kernel.process(sample.task_id)
        if proc is None:
            return None
        vma = proc.address_space.resolve(sample.pc)
        if vma is None or vma.kind is not VmaKind.FILE:
            return None
        assert vma.image is not None
        if vma.image.name != BOOT_IMAGE_NAME:
            return None
        off = vma.to_image_offset(sample.pc)
        entry = self.rvm_map.resolve(off)
        if entry is None:
            return ResolvedSample(
                raw=sample, image=RVM_MAP_IMAGE_LABEL, symbol=NO_SYMBOLS
            )
        return ResolvedSample(
            raw=sample, image=RVM_MAP_IMAGE_LABEL, symbol=entry.name,
            offset=off - entry.offset,
        )

    # ------------------------------------------------------------------

    def annotate_jit(
        self, method_name: str, bucket_bytes: int = 16
    ) -> "SymbolAnnotation":
        """Annotate a JIT method at (approximate) bytecode granularity.

        The code maps record each body's compiler tier; the tier's
        expansion factor converts machine-code offsets back to bytecode
        indices, so the histogram points *inside* the Java method.
        """
        from repro.jvm.compiler import tier_by_label
        from repro.profiling.annotate import annotate_symbol

        tier_label: str | None = None
        for epoch in reversed(self.codemaps.epochs):
            cm = self.codemaps.map_for(epoch)
            for rec in cm.records:
                if rec.name == method_name:
                    tier_label = rec.tier
                    break
            if tier_label is not None:
                break
        expansion = (
            tier_by_label(tier_label).expansion if tier_label else None
        )
        resolved = [self.resolve(s) for s in self.read_samples()]
        return annotate_symbol(
            resolved, JIT_APP_IMAGE_LABEL, method_name,
            bucket_bytes=bucket_bytes, expansion=expansion,
        )
