"""VIProf post-processing — the extended opreport.

Two extensions over the stock resolver chain (paper §3.2):

1. **JIT samples** — a sample whose PC falls inside a registered VM heap
   is resolved through the epoch code maps: the map for the sample's
   epoch first, then strictly backwards until the first map containing
   the address (:class:`repro.pipeline.stages.JitEpochStage` over
   :class:`repro.viprof.codemap.CodeMapIndex`).  Resolved samples report
   image ``JIT.App``; misses are counted and reported as
   ``(unresolved jit)``.
2. **Boot-image samples** — samples in the (stripped, file-backed)
   ``RVM.code.image`` mapping are resolved through the Jikes RVM internal
   map (:class:`repro.pipeline.stages.BootImageStage`) and reported under
   image ``RVM.map``, exactly as Figure 1 shows.

Everything else (kernel, shared libraries, other processes) falls through
to the stock stages.  :class:`ViprofReport` is nothing but this chain
composition — it overrides :meth:`~repro.oprofile.opreport.OpReport._build_chain`
and adds the JIT-specific annotation helper; all resolution logic lives
in :mod:`repro.pipeline.stages`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.jvm.bootimage import RvmMap
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.oprofile.opreport import OpReport
from repro.os.kernel import Kernel
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.stages import (
    UNRESOLVED_JIT,
    BootImageStage,
    JitEpochStage,
    JitStageStats,
    KernelSymbolStage,
    TaskVmaStage,
)
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.runtime_profiler import VmRegistration

if TYPE_CHECKING:  # pragma: no cover
    from repro.profiling.annotate import SymbolAnnotation

__all__ = ["ViprofReport", "UNRESOLVED_JIT", "JitStageStats"]


class ViprofReport(OpReport):
    """Extended post-processor: the stock chain + code maps + RVM.map."""

    def __init__(
        self,
        kernel: Kernel,
        sample_dir: Path | str,
        codemaps: CodeMapIndex,
        rvm_map: RvmMap,
        registrations: tuple[VmRegistration, ...],
        backward_traversal: bool = True,
        resolve_cache: bool = True,
        strict: bool = True,
    ) -> None:
        """``backward_traversal=False`` is the ablation: JIT samples only
        consult their own epoch's map (no walk through earlier maps);
        ``resolve_cache=False`` disables the chain's PC memoization;
        ``strict=False`` is degraded mode for salvaged sessions — epoch
        walks blocked by quarantined maps are remapped to
        ``(unresolved jit)`` and counted instead of raising."""
        self.codemaps = codemaps
        self.rvm_map = rvm_map
        self.backward_traversal = backward_traversal
        self.strict = strict
        self.registrations = tuple(registrations)
        super().__init__(kernel, sample_dir, resolve_cache=resolve_cache)

    def _build_chain(self) -> ResolverChain:
        """The vertically integrated chain: kernel, JIT epoch maps, RVM
        boot image, then stock task-VMA resolution."""
        return ResolverChain(
            [
                KernelSymbolStage(self.kernel),
                JitEpochStage(
                    self.codemaps,
                    self.registrations,
                    backward=self.backward_traversal,
                    strict=self.strict,
                ),
                BootImageStage(self.kernel, self.rvm_map),
                TaskVmaStage(self.kernel),
            ],
            cache_size=self._cache_size,
        )

    @property
    def jit_stats(self) -> JitStageStats:
        """How JIT samples resolved (accuracy reporting) — the JIT stage's
        own counters, exposed under the historical name."""
        stage = self.chain.stage("jit-epoch")
        assert isinstance(stage, JitEpochStage)
        return stage.stats

    # ------------------------------------------------------------------

    def annotate_jit(
        self, method_name: str, bucket_bytes: int = 16
    ) -> "SymbolAnnotation":
        """Annotate a JIT method at (approximate) bytecode granularity.

        The code maps record each body's compiler tier; the tier's
        expansion factor converts machine-code offsets back to bytecode
        indices, so the histogram points *inside* the Java method.
        """
        from repro.jvm.compiler import tier_by_label
        from repro.profiling.annotate import annotate_symbol

        tier_label: str | None = None
        for epoch in reversed(self.codemaps.epochs):
            cm = self.codemaps.map_for(epoch)
            for rec in cm.records:
                if rec.name == method_name:
                    tier_label = rec.tier
                    break
            if tier_label is not None:
                break
        expansion = (
            tier_by_label(tier_label).expansion if tier_label else None
        )
        return annotate_symbol(
            self.resolved_samples(), JIT_APP_IMAGE_LABEL, method_name,
            bucket_bytes=bucket_bytes, expansion=expansion,
        )
