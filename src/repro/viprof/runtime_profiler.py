"""The VIProf runtime profiler — the extended OProfile daemon.

Paper §3: "We extend this daemon by a mechanism that allows a VM to register
the fact that it is executing dynamically generated code.  The virtual
machine also registers the boundaries of its memory heap.  Within the
daemon, the logging code will consult this information before deciding to
log a sample as being anonymous.  Instead, if it is found to fall within the
boundaries of the VM's heap, the sample will be logged as a JIT.App sample."

Concretely, relative to :class:`repro.oprofile.daemon.OprofileDaemon`:

* :meth:`register_vm` records per-task heap boundaries and installs the
  VM's epoch counter as the kernel module's epoch source, so every sample
  is stamped with the GC epoch it was taken in;
* :meth:`classify` checks registered heap bounds *before* falling through
  to the anonymous path; a hit takes the cheap ``jit_classify`` cost path
  instead of the expensive ``anon_extra`` one (this replacement is why
  VIProf sometimes runs *faster* than stock OProfile — Figure 2 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProfilerError
from repro.oprofile.daemon import OprofileDaemon
from repro.profiling.model import RawSample

__all__ = ["VmRegistration", "ViprofRuntimeProfiler"]


@dataclass(frozen=True, slots=True)
class VmRegistration:
    """One VM's registration with the runtime profiler."""

    task_id: int
    heap_low: int
    heap_high: int

    def covers(self, pc: int) -> bool:
        return self.heap_low <= pc < self.heap_high


class ViprofRuntimeProfiler(OprofileDaemon):
    """OProfile daemon + VM heap registration + epoch stamping."""

    def __init__(self, *args, jit_fast_path: bool = True, **kwargs) -> None:
        """``jit_fast_path=False`` is the ablation: VM heaps are still
        registered (so epochs are stamped and post-processing can resolve),
        but the daemon logs heap samples through the stock anonymous path,
        forfeiting the cost saving the paper credits to the bounds check."""
        super().__init__(*args, **kwargs)
        self.jit_fast_path = jit_fast_path
        self._registrations: dict[int, VmRegistration] = {}

    # ------------------------------------------------------------------

    def register_vm(
        self,
        task_id: int,
        heap_bounds: tuple[int, int],
        epoch_source: Callable[[], int] | None = None,
    ) -> VmRegistration:
        """Called by the VM agent at VM startup."""
        lo, hi = heap_bounds
        if hi <= lo:
            raise ProfilerError(f"bad heap bounds [{lo:#x}, {hi:#x})")
        if task_id in self._registrations:
            raise ProfilerError(f"task {task_id} already registered a VM heap")
        reg = VmRegistration(task_id=task_id, heap_low=lo, heap_high=hi)
        self._registrations[task_id] = reg
        if epoch_source is not None:
            self.kmodule.epoch_source = epoch_source
        return reg

    @property
    def registrations(self) -> tuple[VmRegistration, ...]:
        return tuple(self._registrations.values())

    def registration_for(self, task_id: int) -> VmRegistration | None:
        return self._registrations.get(task_id)

    # ------------------------------------------------------------------

    def classify(self, sample: RawSample) -> str:
        """Heap-bounds check before the stock classification."""
        if self.jit_fast_path and not sample.kernel_mode:
            reg = self._registrations.get(sample.task_id)
            if reg is not None and reg.covers(sample.pc):
                return self.JIT
        return super().classify(sample)

    def classify_chunk(self, samples: list[RawSample]) -> list[str]:
        """Heap-bounds check over whole runs before stock classification.

        Samples arrive in capture order, so consecutive records usually
        share a task; the registration lookup is done once per run of
        same-task samples, and only the samples that miss the heap fall
        through to the stock chunk classifier.
        """
        if not self.jit_fast_path or not self._registrations:
            return super().classify_chunk(samples)
        regs = self._registrations
        cats: list[str | None] = [None] * len(samples)
        rest: list[RawSample] = []
        rest_idx: list[int] = []
        i, n = 0, len(samples)
        while i < n:
            tid = samples[i].task_id
            j = i + 1
            while j < n and samples[j].task_id == tid:
                j += 1
            reg = regs.get(tid)
            if reg is None:
                for k in range(i, j):
                    rest.append(samples[k])
                    rest_idx.append(k)
            else:
                for k in range(i, j):
                    s = samples[k]
                    if not s.kernel_mode and reg.covers(s.pc):
                        cats[k] = self.JIT
                    else:
                        rest.append(s)
                        rest_idx.append(k)
            i = j
        if rest:
            for k, cat in zip(rest_idx, super().classify_chunk(rest)):
                cats[k] = cat
        return cats  # type: ignore[return-value]
