"""Cross-layer call graphs.

"VIProf also extends the call graph functionality of Oprofile to include
call sequence profiles across layers."  (Paper §4.2 — results omitted there
for brevity; implemented and exercised here.)

Built on the stock arc recorder, with layer awareness: every node carries
the vertical layer it belongs to, so the report can isolate the arcs that
*cross* layer boundaries — VM internals invoking JIT code, JIT code calling
into libc, anything trapping into the kernel.  Those cross-layer arcs are
the ones single-layer profilers structurally cannot see, and the reason the
paper wants one integrated profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oprofile.callgraph import CallArc, CallGraphRecorder
from repro.profiling.model import Layer

__all__ = ["CrossLayerCallGraph", "LayeredNode"]


@dataclass(frozen=True, slots=True)
class LayeredNode:
    """A call-graph node with its vertical layer."""

    layer: Layer
    image: str
    symbol: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.image, self.symbol)


@dataclass
class CrossLayerCallGraph:
    """Arc recorder that also tracks each node's layer."""

    recorder: CallGraphRecorder = field(default_factory=CallGraphRecorder)
    _layers: dict[tuple[str, str], Layer] = field(default_factory=dict)

    def record(
        self, caller: LayeredNode | None, callee: LayeredNode, event_name: str
    ) -> None:
        self._layers[callee.key] = callee.layer
        if caller is not None:
            self._layers[caller.key] = caller.layer
        self.recorder.record(
            caller.key if caller is not None else None, callee.key, event_name
        )

    def layer_of(self, key: tuple[str, str]) -> Layer | None:
        return self._layers.get(key)

    def cross_layer_arcs(
        self, event_name: str
    ) -> list[tuple[CallArc, int, Layer, Layer]]:
        """Arcs whose endpoints live in different layers, weighted by
        samples for ``event_name``, heaviest first."""
        out: list[tuple[CallArc, int, Layer, Layer]] = []
        for arc, counts in self.recorder.arcs.items():
            n = counts.get(event_name, 0)
            if n <= 0:
                continue
            l_from = self._layers.get(arc.caller)
            l_to = self._layers.get(arc.callee)
            if l_from is None or l_to is None or l_from is l_to:
                continue
            out.append((arc, n, l_from, l_to))
        out.sort(key=lambda x: (-x[1], x[0].caller, x[0].callee))
        return out

    def layer_transition_matrix(self, event_name: str) -> dict[tuple[Layer, Layer], int]:
        """Aggregate sample counts over (caller layer, callee layer) pairs."""
        matrix: dict[tuple[Layer, Layer], int] = {}
        for arc, counts in self.recorder.arcs.items():
            n = counts.get(event_name, 0)
            if n <= 0:
                continue
            l_from = self._layers.get(arc.caller)
            l_to = self._layers.get(arc.callee)
            if l_from is None or l_to is None:
                continue
            matrix[(l_from, l_to)] = matrix.get((l_from, l_to), 0) + n
        return matrix

    def format_cross_layer_table(self, event_name: str, limit: int = 12) -> str:
        lines = [f"{'samples':>8}  layer:caller -> layer:callee ({event_name})"]
        for arc, n, l_from, l_to in self.cross_layer_arcs(event_name)[:limit]:
            lines.append(
                f"{n:8d}  {l_from.value}:{arc.caller[1]} -> "
                f"{l_to.value}:{arc.callee[1]}"
            )
        return "\n".join(lines)
