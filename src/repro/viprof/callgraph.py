"""Cross-layer call graphs (paper §4.2) — VIProf flavour.

The implementation now lives in :mod:`repro.pipeline.callgraph`, one
module for both the stock and the cross-layer recorder (they were
near-duplicates).  This module remains as the stable import path for
VIProf consumers.
"""

from __future__ import annotations

from repro.pipeline.callgraph import (
    CrossLayerCallGraph,
    LayeredNode,
    layered_node_for,
)

__all__ = ["CrossLayerCallGraph", "LayeredNode", "layered_node_for"]
