"""The VIProf VM agent.

"A counterpart to the runtime profiler is the VM agent.  This module is
responsible for tracking JIT compilations and any GC-induced code body
moves." (paper §3)

Implemented exactly as described:

* hooks in the VM's compile/recompile path log ``(address, size,
  signature)`` of each freshly compiled body into an in-memory buffer;
* the hook in the GC's move path only **flags** the method — the paper is
  explicit that calling out of the tuned GC code would be too expensive, so
  flagged methods are written out later;
* at specific points — *just before each garbage collection* and once at VM
  exit — the agent writes a partial code map for the closing epoch
  (buffered compilations + methods flagged by the previous collection) and
  clears its buffers;
* at startup it registers the VM's heap boundaries (and its epoch counter)
  with the runtime profiler.

Every hook returns its cycle cost, which the machine charges as execution
of the agent library — so VIProf's overhead is measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.faults import injector as faults
from repro.jvm.compiler import CodeBody
from repro.jvm.machine import VmHooks
from repro.viprof.codemap import CodeMapRecord, CodeMapWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.viprof.runtime_profiler import ViprofRuntimeProfiler

__all__ = ["AgentCosts", "AgentStats", "ViprofVmAgent"]


@dataclass(frozen=True, slots=True)
class AgentCosts:
    """Cycle costs of agent operations.

    ``flag_move`` is tiny by design (a bit set in the method record);
    ``log_compile`` is a buffered in-memory append; the map write is the
    expensive, amortized operation.
    """

    register: int = 900
    log_compile: int = 190
    flag_move: int = 14
    #: ablation: logging a move *inside* the GC path (a call out of the
    #: tuned collector code — the cost the paper's flag design avoids)
    eager_move_log: int = 420
    map_write_base: int = 6000  # file open + write + sync per map
    map_write_per_record: int = 300  # format + write one record
    exit_flush_base: int = 6000


@dataclass
class AgentStats:
    compiles_logged: int = 0
    moves_flagged: int = 0
    maps_written: int = 0
    records_written: int = 0


class ViprofVmAgent(VmHooks):
    """The agent library, attached to a :class:`repro.jvm.machine.JikesVM`
    via its hooks interface."""

    def __init__(
        self,
        writer: CodeMapWriter,
        runtime_profiler: "ViprofRuntimeProfiler | None" = None,
        epoch_source: Callable[[], int] | None = None,
        vm_task_id: int = 0,
        costs: AgentCosts | None = None,
        full_map_rewrite: bool = False,
        eager_move_logging: bool = False,
    ) -> None:
        """Args beyond the obvious:

        full_map_rewrite: ablation — write *every* known live body into
            each map instead of the paper's partial (per-epoch) maps.
        eager_move_logging: ablation — log each GC move immediately from
            the move hook instead of flag-and-defer, paying the
            call-out-of-GC cost the paper avoids.
        """
        self.writer = writer
        self.runtime_profiler = runtime_profiler
        self.epoch_source = epoch_source
        self.vm_task_id = vm_task_id
        self.costs = costs if costs is not None else AgentCosts()
        self.full_map_rewrite = full_map_rewrite
        self.eager_move_logging = eager_move_logging
        self.stats = AgentStats()
        #: compile log: records captured at compile time (address frozen at
        #: log time, as the real agent writes the buffer entry immediately)
        self._pending: list[CodeMapRecord] = []
        #: bodies flagged as moved by the previous collection
        self._flagged: dict[int, CodeBody] = {}
        #: every live body ever compiled (only used by full_map_rewrite)
        self._known: dict[int, CodeBody] = {}

    # ------------------------------------------------------------------
    # VmHooks interface
    # ------------------------------------------------------------------

    def on_startup(self, heap_bounds: tuple[int, int]) -> int:
        if self.runtime_profiler is not None:
            self.runtime_profiler.register_vm(
                task_id=self.vm_task_id,
                heap_bounds=heap_bounds,
                epoch_source=self.epoch_source,
            )
        return self.costs.register

    def on_compile(self, body: CodeBody) -> int:
        self._pending.append(
            CodeMapRecord(
                address=body.address,
                size=body.size,
                tier=body.tier.label,
                name=body.method.full_name,
            )
        )
        self._known[id(body)] = body
        self.stats.compiles_logged += 1
        return self.costs.log_compile

    def on_code_move(self, body: CodeBody, old_address: int) -> int:
        if self.eager_move_logging:
            # Ablation: write the record right here, inside the GC path.
            self._pending.append(
                CodeMapRecord(
                    address=body.address,
                    size=body.size,
                    tier=body.tier.label,
                    name=body.method.full_name,
                )
            )
            self.stats.moves_flagged += 1
            return self.costs.eager_move_log
        # Flag, don't log: the GC path must stay cheap (paper §3).
        self._flagged[id(body)] = body
        self.stats.moves_flagged += 1
        return self.costs.flag_move

    def pre_gc(self, closing_epoch: int) -> int:
        return self._write_map(closing_epoch, self.costs.map_write_base)

    def post_gc(self, new_epoch: int) -> int:
        return 0

    def on_exit(self, final_epoch: int) -> int:
        """Flush the map for the final (never-collected) epoch."""
        if not self._pending and not self._flagged:
            return 0
        return self._write_map(final_epoch, self.costs.exit_flush_base)

    # ------------------------------------------------------------------

    def _write_map(self, epoch: int, base_cost: int) -> int:
        """Write the map for ``epoch``.

        Partial mode (the paper's design): buffered compiles plus methods
        flagged by the previous GC, at their current addresses.  Full-rewrite
        mode (ablation): every live body the agent has ever seen.  Either
        way the flush hands the writer one batch — a single file write per
        closing epoch, never a write per record.
        """
        if faults.armed():
            # Crash point before the epoch's map is emitted: the whole map
            # is lost (missing epoch), and the dying process takes the
            # daemon's buffered sample records with it.
            faults.fire(
                faults.AGENT_MAP_EMIT,
                effect=lambda rng: self._lose_process(),
            )
        if self.full_map_rewrite:
            return self._write_full_map(epoch, base_cost)
        records: dict[tuple[int, str], CodeMapRecord] = {
            (rec.address, rec.name): rec for rec in self._pending
        }
        for body in self._flagged.values():
            # Obsolete bodies are written too: a body moved at the start of
            # this epoch and recompiled later still received samples at its
            # post-move address, which no other record covers.
            rec = CodeMapRecord(
                address=body.address,
                size=body.size,
                tier=body.tier.label,
                name=body.method.full_name,
                moved=True,
            )
            records[(rec.address, rec.name)] = rec
        recs = list(records.values())
        self.writer.write(epoch, recs)
        self.stats.maps_written += 1
        self.stats.records_written += len(recs)
        cost = base_cost + self.costs.map_write_per_record * len(recs)
        self._pending.clear()
        self._flagged.clear()
        return cost

    def _lose_process(self) -> None:
        """Fault effect (``agent.map-emit``): the simulated process dies, so
        every sample writer's buffered records die with it."""
        if self.runtime_profiler is not None:
            self.runtime_profiler._abandon_writers()

    def _write_full_map(self, epoch: int, base_cost: int) -> int:
        """Ablation path: dump every live body.  Costs scale with the whole
        compiled population instead of the epoch's churn."""
        self._known = {
            k: b for k, b in self._known.items() if not b.obsolete
        }
        recs = [
            CodeMapRecord(
                address=b.address, size=b.size, tier=b.tier.label,
                name=b.method.full_name,
            )
            for b in self._known.values()
        ]
        self.writer.write(epoch, recs)
        self.stats.maps_written += 1
        self.stats.records_written += len(recs)
        self._pending.clear()
        self._flagged.clear()
        return base_cost + self.costs.map_write_per_record * len(recs)
