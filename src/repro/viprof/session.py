"""One-stop VIProf session wiring.

A session owns the kernel module, the runtime profiler (extended daemon),
the code-map writer, and hands out the VM agent that gets hooked into the
JVM.  The system engine drives a session's lifecycle; users get reports
from :meth:`ViprofSession.report` after the run.

Directory layout under ``session_dir``::

    samples/            per-event sample files (daemon output)
    jit-maps/           per-epoch partial code maps (agent output)
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.errors import CodeMapError, ProfilerError
from repro.faults import injector as faults
from repro.hardware.cpu import CPU
from repro.jvm.bootimage import RvmMap
from repro.oprofile.daemon import DaemonCosts, DaemonWork
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.kernel import Kernel
from repro.viprof.codemap import CodeMapIndex, CodeMapWriter
from repro.viprof.postprocess import ViprofReport
from repro.viprof.runtime_profiler import ViprofRuntimeProfiler
from repro.viprof.salvage import SalvageManifest, load_manifest, salvage_session
from repro.viprof.vm_agent import AgentCosts, ViprofVmAgent

__all__ = ["ViprofSession"]


class ViprofSession:
    """The VIProf stack for one profiling run."""

    def __init__(
        self,
        kernel: Kernel,
        config: OprofileConfig,
        session_dir: Path | str,
        daemon_costs: DaemonCosts | None = None,
        agent_costs: AgentCosts | None = None,
        full_map_rewrite: bool = False,
        eager_move_logging: bool = False,
        jit_fast_path: bool = True,
        batch: bool = True,
        write_buffer_bytes: int | None = None,
    ) -> None:
        """The three boolean knobs select the ablation variants studied in
        ``benchmarks/bench_ablation.py``; the defaults are the paper's
        design.  ``batch``/``write_buffer_bytes`` tune the daemon's drain
        and write batching (simulator wall-clock only — session bytes and
        cycle accounting are identical either way)."""
        self.kernel = kernel
        self.config = config
        self.session_dir = Path(session_dir)
        self.sample_dir = self.session_dir / config.output_dir_name
        self.map_dir = self.session_dir / "jit-maps"
        self.kmodule = OprofileKernelModule(config)
        self.daemon = ViprofRuntimeProfiler(
            kernel, self.kmodule, config, self.sample_dir,
            costs=daemon_costs, jit_fast_path=jit_fast_path,
            batch=batch, write_buffer_bytes=write_buffer_bytes,
        )
        self.map_writer = CodeMapWriter(self.map_dir)
        self._agent_costs = agent_costs
        self._full_map_rewrite = full_map_rewrite
        self._eager_move_logging = eager_move_logging
        self._agent: ViprofVmAgent | None = None
        self._active = False

    # ------------------------------------------------------------------

    def make_agent(
        self, vm_task_id: int, epoch_source: Callable[[], int]
    ) -> ViprofVmAgent:
        """Create the VM agent to hook into the JVM (one per session)."""
        if self._agent is not None:
            raise ProfilerError("session already has a VM agent")
        self._agent = ViprofVmAgent(
            writer=self.map_writer,
            runtime_profiler=self.daemon,
            epoch_source=epoch_source,
            vm_task_id=vm_task_id,
            costs=self._agent_costs,
            full_map_rewrite=self._full_map_rewrite,
            eager_move_logging=self._eager_move_logging,
        )
        return self._agent

    @property
    def agent(self) -> ViprofVmAgent:
        if self._agent is None:
            raise ProfilerError("make_agent() has not been called")
        return self._agent

    # ------------------------------------------------------------------

    def start(self, cpu: CPU) -> None:
        if self._active:
            raise ProfilerError("session already started")
        self.kmodule.setup(cpu)
        self.daemon.start()
        self._active = True

    def stop(self) -> DaemonWork:
        """Final daemon drain + kernel-module shutdown."""
        if not self._active:
            raise ProfilerError("session not started")
        if faults.armed():
            # Crash point at teardown, before the final drain: the
            # undrained kernel buffer and writer-buffered records are lost.
            faults.fire(
                faults.SESSION_TEARDOWN,
                effect=lambda rng: self.daemon._abandon_writers(),
            )
        work = self.daemon.stop()
        self.kmodule.shutdown()
        self._active = False
        self._write_summary()
        self._build_arena()
        return work

    def _build_arena(self) -> None:
        """Compile the epoch maps into the zero-copy arena
        (:mod:`repro.viprof.arena`) so post-processing — this process or
        any later ``viprof report`` — skips the text parse.  The arena is
        a derived cache: if compiling fails the session is still whole,
        so the failure is swallowed and readers parse the text maps.
        (An injected ``arena.write`` crash is *not* swallowed — it
        simulates the process dying here.)"""
        from repro.viprof.arena import build_arena

        try:
            build_arena(self.map_dir)
        except (CodeMapError, OSError):
            pass

    def _write_summary(self) -> None:
        """Leave the collection-side summary (unified session-metrics
        model) next to the artifacts.  Only a *clean* teardown reaches
        this — a crashed session has no ``summary.json``, and statcheck's
        VP110 holds an existing one to the artifacts actually on disk."""
        from repro.metrics.build import collection_summary
        from repro.metrics.model import SUMMARY_NAME

        regs = self.daemon.registrations
        summary = collection_summary(
            self.sample_dir,
            self.daemon.stats,
            buffer_lost=self.kmodule.buffer.lost,
            overhead=self.daemon.overhead_panel(),
            registration=regs[0] if regs else None,
        )
        summary.save(self.session_dir / SUMMARY_NAME)

    # ------------------------------------------------------------------

    def report(
        self,
        rvm_map: RvmMap,
        backward_traversal: bool = True,
        resolve_cache: bool = True,
    ) -> ViprofReport:
        """Build the extended post-processor over this session's artifacts."""
        codemaps = CodeMapIndex.load_dir(self.map_dir)
        return ViprofReport(
            kernel=self.kernel,
            sample_dir=self.sample_dir,
            codemaps=codemaps,
            rvm_map=rvm_map,
            registrations=self.daemon.registrations,
            backward_traversal=backward_traversal,
            resolve_cache=resolve_cache,
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def salvage(self, dry_run: bool = False) -> SalvageManifest:
        """Repair this session's directory after a simulated crash.

        Completes the process death first if the session is still marked
        active (dropping writer-buffered records, releasing the sample
        files, shutting the kernel module down), then delegates to
        :func:`repro.viprof.salvage.salvage_session`.
        """
        if self._active:
            self.daemon.crash()
            self.kmodule.shutdown()
            self._active = False
        return salvage_session(
            self.session_dir,
            sample_dir_name=self.sample_dir.name,
            map_dir_name=self.map_dir.name,
            dry_run=dry_run,
        )

    def recovered_report(
        self,
        rvm_map: RvmMap,
        manifest: SalvageManifest | None = None,
        backward_traversal: bool = True,
        resolve_cache: bool = True,
    ) -> ViprofReport:
        """Build the degraded (``strict=False``) post-processor over a
        salvaged session: quarantined epochs act as barriers in the
        backward walk, and blocked samples show up in the ``degraded``
        stats instead of being misattributed."""
        if manifest is None:
            manifest = load_manifest(self.session_dir)
        if manifest is None:
            raise ProfilerError(
                f"{self.session_dir}: no salvage manifest — run salvage() "
                "first"
            )
        codemaps = CodeMapIndex.load_dir(
            self.map_dir, quarantined=manifest.quarantined_epochs
        )
        return ViprofReport(
            kernel=self.kernel,
            sample_dir=self.sample_dir,
            codemaps=codemaps,
            rvm_map=rvm_map,
            registrations=self.daemon.registrations,
            backward_traversal=backward_traversal,
            resolve_cache=resolve_cache,
            strict=False,
        )
