"""Crash-consistent session recovery (``viprof recover``).

A profiling session killed mid-run leaves three kinds of damage, one per
layer of the collection stack:

* **torn sample files** — the writer died mid-spill, so the file ends in
  a partial record (``writer.spill``);
* **malformed epoch maps** — the agent died mid-write of a map file
  (``codemap.write``);
* **missing tail state** — the process died before the closing epoch's
  map was emitted or before the final drain, so whole epochs of map data
  and buffered samples are simply absent (``agent.map-emit``,
  ``daemon.drain-chunk``, ``session.teardown``).

:func:`salvage_session` repairs what can be repaired and fences off what
cannot:

* torn sample files are truncated at the last whole-record boundary
  (their intact prefix is byte-exact data from the run);
* sample files whose *header* is damaged identify no codec and are moved
  aside into ``samples/quarantine/``;
* malformed map files are moved into ``jit-maps/quarantine/`` — their
  epoch number (from the filename) is remembered;
* every epoch up to the newest epoch the session provably reached
  (healthy maps, quarantined maps, or sample epoch tags) that has no
  healthy map is recorded in ``quarantined_epochs``.

The resulting :class:`SalvageManifest` is written as ``salvage.json`` in
the session directory (version 1, relative paths, no timestamps — the
manifest of a deterministic run is itself deterministic).  The resolution
side then loads the code maps with
``CodeMapIndex.load_dir(map_dir, quarantined=manifest.quarantined_epochs)``
so the backward epoch-walk treats lost epochs as barriers, and runs the
pipeline with ``strict=False`` so blocked samples are *counted* (the
``degraded`` stats) instead of silently misattributed.  Together these
give the recovery guarantee the crash-matrix test
(``tests/integration/test_crash_recovery.py``) asserts: every sample the
recovered report resolves is resolved identically by the undamaged run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CodeMapError, ProfilerError, SampleFormatError
from repro.profiling.record_codec import codec_for_magic, probe_sample_file
from repro.viprof.arena import arena_path_for
from repro.viprof.codemap import _FILE_RE, CodeMap

__all__ = [
    "MANIFEST_NAME",
    "QUARANTINE_DIR_NAME",
    "SalvagedSampleFile",
    "SalvagedMap",
    "SalvageManifest",
    "salvage_session",
    "load_manifest",
]

#: The manifest file a salvage run leaves in the session directory.
MANIFEST_NAME = "salvage.json"

#: Subdirectory (of ``samples/`` and ``jit-maps/``) damaged artifacts are
#: moved into.  Both the streaming pipeline (which globs ``*.samples``)
#: and the map loader (which matches ``jit-map.NNNNN`` files) ignore it.
QUARANTINE_DIR_NAME = "quarantine"

#: Manifest schema version.
MANIFEST_VERSION = 1

ACTION_INTACT = "intact"
ACTION_TRUNCATED = "truncated"
ACTION_QUARANTINED = "quarantined"


@dataclass(frozen=True, slots=True)
class SalvagedSampleFile:
    """Outcome for one sample file.

    ``path`` is session-relative (after any quarantine move);
    ``torn_at`` is the byte offset the file was cut at (None unless
    truncated); ``bytes_dropped`` counts bytes lost to truncation or the
    whole file size for a quarantined file.
    """

    path: str
    action: str
    records_kept: int
    bytes_dropped: int
    torn_at: int | None = None
    reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "action": self.action,
            "records_kept": self.records_kept,
            "bytes_dropped": self.bytes_dropped,
            "torn_at": self.torn_at,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SalvagedSampleFile":
        return cls(
            path=d["path"],
            action=d["action"],
            records_kept=d["records_kept"],
            bytes_dropped=d["bytes_dropped"],
            torn_at=d.get("torn_at"),
            reason=d.get("reason"),
        )


@dataclass(frozen=True, slots=True)
class SalvagedMap:
    """Outcome for one epoch-map file (``epoch`` from the filename)."""

    path: str
    action: str
    epoch: int
    reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "action": self.action,
            "epoch": self.epoch,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SalvagedMap":
        return cls(
            path=d["path"],
            action=d["action"],
            epoch=d["epoch"],
            reason=d.get("reason"),
        )


@dataclass(slots=True)
class SalvageManifest:
    """Everything one salvage pass found, repaired, and fenced off.

    ``top_epoch`` is the newest epoch the session provably reached
    (-1 for a session with no epoch evidence at all);
    ``quarantined_epochs`` are the epochs in ``0..top_epoch`` left
    without a healthy map — the barrier set for the degraded backward
    walk.
    """

    session_dir: Path
    sample_files: list[SalvagedSampleFile] = field(default_factory=list)
    maps: list[SalvagedMap] = field(default_factory=list)
    top_epoch: int = -1
    quarantined_epochs: tuple[int, ...] = ()

    @property
    def damaged(self) -> bool:
        """True when anything needed repair or quarantine."""
        return any(
            e.action != ACTION_INTACT for e in self.sample_files
        ) or any(m.action != ACTION_INTACT for m in self.maps) or bool(
            self.quarantined_epochs
        )

    @property
    def records_dropped_bytes(self) -> int:
        return sum(e.bytes_dropped for e in self.sample_files)

    def to_dict(self) -> dict:
        from repro.metrics.build import salvage_panel
        from repro.metrics.model import SCHEMA_VERSION

        doc = {
            "version": MANIFEST_VERSION,
            "sample_files": [e.to_dict() for e in self.sample_files],
            "maps": [m.to_dict() for m in self.maps],
            "top_epoch": self.top_epoch,
            "quarantined_epochs": list(self.quarantined_epochs),
        }
        # Embedded loss-accounting summary (unified session-metrics
        # model).  Derived from the entries above, so statcheck's VP110
        # can recompute it and flag any disagreement; ignored by
        # from_dict (older manifests without it stay loadable).
        doc["summary"] = {
            "schema_version": SCHEMA_VERSION,
            "salvage": salvage_panel(doc),
        }
        return doc

    @classmethod
    def from_dict(cls, session_dir: Path, d: dict) -> "SalvageManifest":
        version = d.get("version")
        if version != MANIFEST_VERSION:
            raise ProfilerError(
                f"{session_dir / MANIFEST_NAME}: unsupported salvage "
                f"manifest version {version!r}"
            )
        return cls(
            session_dir=session_dir,
            sample_files=[
                SalvagedSampleFile.from_dict(e) for e in d["sample_files"]
            ],
            maps=[SalvagedMap.from_dict(m) for m in d["maps"]],
            top_epoch=d["top_epoch"],
            quarantined_epochs=tuple(d["quarantined_epochs"]),
        )

    def save(self) -> Path:
        path = self.session_dir / MANIFEST_NAME
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def load_manifest(session_dir: Path | str) -> SalvageManifest | None:
    """Load ``salvage.json`` from a session directory (None if absent)."""
    session_dir = Path(session_dir)
    path = session_dir / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        d = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise ProfilerError(f"{path}: unreadable salvage manifest: {e}") from None
    try:
        return SalvageManifest.from_dict(session_dir, d)
    except (KeyError, TypeError) as e:
        raise ProfilerError(f"{path}: malformed salvage manifest: {e}") from None


def _quarantine(path: Path, dry_run: bool) -> Path:
    """Move a damaged artifact into its directory's quarantine subdir."""
    qdir = path.parent / QUARANTINE_DIR_NAME
    dest = qdir / path.name
    if not dry_run:
        qdir.mkdir(parents=True, exist_ok=True)
        path.rename(dest)
    return dest


def _salvage_sample_file(
    path: Path, session_dir: Path, dry_run: bool
) -> SalvagedSampleFile:
    try:
        probe = probe_sample_file(path)
    except SampleFormatError as e:
        size = path.stat().st_size
        dest = _quarantine(path, dry_run)
        return SalvagedSampleFile(
            path=str(dest.relative_to(session_dir)),
            action=ACTION_QUARANTINED,
            records_kept=0,
            bytes_dropped=size,
            reason=str(e),
        )
    if probe.torn:
        if not dry_run:
            os.truncate(path, probe.truncate_to)
        return SalvagedSampleFile(
            path=str(path.relative_to(session_dir)),
            action=ACTION_TRUNCATED,
            records_kept=probe.n_records,
            bytes_dropped=probe.trailing_bytes,
            torn_at=probe.truncate_to,
            reason=(
                f"torn record: {probe.trailing_bytes} trailing bytes "
                f"(record size {probe.record_size})"
            ),
        )
    return SalvagedSampleFile(
        path=str(path.relative_to(session_dir)),
        action=ACTION_INTACT,
        records_kept=probe.n_records,
        bytes_dropped=0,
    )


def _salvage_map(
    path: Path, session_dir: Path, dry_run: bool
) -> SalvagedMap:
    m = _FILE_RE.match(path.name)
    assert m is not None  # caller filters on the filename pattern
    file_epoch = int(m.group(1))
    try:
        cm = CodeMap.load(path)
        if cm.epoch != file_epoch:
            raise CodeMapError(
                f"{path}: filename epoch {file_epoch} != header epoch "
                f"{cm.epoch}"
            )
    except CodeMapError as e:
        dest = _quarantine(path, dry_run)
        return SalvagedMap(
            path=str(dest.relative_to(session_dir)),
            action=ACTION_QUARANTINED,
            epoch=file_epoch,
            reason=str(e),
        )
    return SalvagedMap(
        path=str(path.relative_to(session_dir)),
        action=ACTION_INTACT,
        epoch=file_epoch,
    )


def _max_sample_epoch(
    session_dir: Path, entries: list[SalvagedSampleFile]
) -> int:
    """Newest epoch tag among the salvaged (readable) sample records.

    Reads the record-aligned prefix directly, so it works on a torn file
    that a dry run has diagnosed but not yet truncated.
    """
    top = -1
    epoch_index = 4  # <QIBQq...>: pc, task, kmode, cycle, epoch
    for entry in entries:
        if entry.action == ACTION_QUARANTINED or entry.records_kept == 0:
            continue
        probe = probe_sample_file(session_dir / entry.path)
        codec = codec_for_magic(probe.magic)
        assert codec is not None  # probe validated the magic
        unpack = codec.record_struct.iter_unpack
        with open(probe.path, "rb") as fh:
            fh.seek(probe.data_start)
            remaining = probe.n_records * probe.record_size
            chunk_bytes = 4096 * probe.record_size
            while remaining > 0:
                chunk = fh.read(min(chunk_bytes, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
                for fields in unpack(chunk):
                    if fields[epoch_index] > top:
                        top = fields[epoch_index]
    return top


def salvage_session(
    session_dir: Path | str,
    sample_dir_name: str = "samples",
    map_dir_name: str = "jit-maps",
    dry_run: bool = False,
) -> SalvageManifest:
    """Scan a (possibly crash-damaged) session directory and repair it.

    Torn sample files are truncated at the last whole record, sample
    files with damaged headers and malformed epoch maps are moved into
    per-directory ``quarantine/`` subdirectories, and the epochs left
    without a healthy map are recorded as the barrier set for degraded
    resolution.  Writes ``salvage.json`` and returns the manifest.

    ``dry_run`` diagnoses without touching the filesystem (no
    truncations, no moves, no manifest).

    Raises:
        ProfilerError: if ``session_dir`` is not a session directory
            (no sample directory), or a salvage manifest already exists
            (salvage runs once; re-running would double-count damage).
    """
    session_dir = Path(session_dir)
    sample_dir = session_dir / sample_dir_name
    map_dir = session_dir / map_dir_name
    if not sample_dir.is_dir():
        raise ProfilerError(
            f"{session_dir}: not a session directory "
            f"(no {sample_dir_name}/ subdirectory)"
        )
    if (session_dir / MANIFEST_NAME).exists():
        raise ProfilerError(
            f"{session_dir}: already salvaged ({MANIFEST_NAME} exists)"
        )

    if not dry_run:
        # The compiled code-map arena (repro.viprof.arena) is a derived
        # cache of the pre-crash map set: after quarantines/truncations
        # it is stale by construction (and a crash at arena.write leaves
        # it torn), so salvage drops it and degraded reports parse the
        # text maps.  It never appears in the manifest — it carries no
        # samples and is rebuilt for free by `viprof index`.
        arena_path_for(map_dir).unlink(missing_ok=True)

    manifest = SalvageManifest(session_dir=session_dir)
    for path in sorted(sample_dir.glob("*.samples")):
        if not path.is_file():
            continue
        manifest.sample_files.append(
            _salvage_sample_file(path, session_dir, dry_run)
        )
    if map_dir.is_dir():
        for path in sorted(map_dir.iterdir()):
            if not path.is_file() or _FILE_RE.match(path.name) is None:
                continue
            manifest.maps.append(_salvage_map(path, session_dir, dry_run))

    healthy = {
        m.epoch for m in manifest.maps if m.action == ACTION_INTACT
    }
    evidence = set(healthy)
    evidence.update(
        m.epoch for m in manifest.maps if m.action == ACTION_QUARANTINED
    )
    # In dry-run mode torn files have not actually been truncated, but
    # the epoch scan below only reads whole records, which is exactly the
    # salvaged prefix either way.
    sample_top = _max_sample_epoch(session_dir, manifest.sample_files)
    if sample_top >= 0:
        evidence.add(sample_top)
    manifest.top_epoch = max(evidence) if evidence else -1
    manifest.quarantined_epochs = tuple(
        e for e in range(manifest.top_epoch + 1) if e not in healthy
    )
    if not dry_run:
        manifest.save()
    return manifest
