"""Call-graph profiles (``opcontrol --callgraph``).

OProfile can record, for each sample, the caller chain discovered by walking
stack frames.  Our engine supplies a *stack witness* — the (caller, callee)
context at the moment of the sample — which the recorder turns into weighted
arcs.  VIProf extends this across layers (a JIT method calling into libc,
VM internals calling JIT code): see :mod:`repro.viprof.callgraph`.

The paper mentions the cross-layer call-graph capability and omits results
for brevity; we implement it and exercise it in tests and an example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CallArc", "CallGraphRecorder"]

#: (image, symbol) — the node key used in arcs.
NodeKey = tuple[str, str]


@dataclass(frozen=True, slots=True)
class CallArc:
    """A directed caller→callee arc with a per-event sample count."""

    caller: NodeKey
    callee: NodeKey


@dataclass
class CallGraphRecorder:
    """Accumulates weighted call arcs from per-sample stack witnesses."""

    arcs: dict[CallArc, dict[str, int]] = field(default_factory=dict)
    self_samples: dict[NodeKey, dict[str, int]] = field(default_factory=dict)

    def record(
        self, caller: NodeKey | None, callee: NodeKey, event_name: str
    ) -> None:
        """Record one sample landing in ``callee`` while called from
        ``caller`` (None for a root frame)."""
        per_ev = self.self_samples.setdefault(callee, {})
        per_ev[event_name] = per_ev.get(event_name, 0) + 1
        if caller is None:
            return
        arc = CallArc(caller=caller, callee=callee)
        per_ev = self.arcs.setdefault(arc, {})
        per_ev[event_name] = per_ev.get(event_name, 0) + 1

    def top_arcs(self, event_name: str, limit: int = 10) -> list[tuple[CallArc, int]]:
        weighted = [
            (arc, counts.get(event_name, 0)) for arc, counts in self.arcs.items()
        ]
        weighted = [(a, n) for a, n in weighted if n > 0]
        weighted.sort(key=lambda x: (-x[1], x[0].caller, x[0].callee))
        return weighted[:limit]

    def arcs_from(self, caller: NodeKey) -> list[CallArc]:
        return [a for a in self.arcs if a.caller == caller]

    def arcs_into(self, callee: NodeKey) -> list[CallArc]:
        return [a for a in self.arcs if a.callee == callee]

    def format_table(self, event_name: str, limit: int = 10) -> str:
        lines = [f"{'samples':>8}  caller -> callee ({event_name})"]
        for arc, n in self.top_arcs(event_name, limit):
            lines.append(
                f"{n:8d}  {arc.caller[0]}:{arc.caller[1]} -> "
                f"{arc.callee[0]}:{arc.callee[1]}"
            )
        return "\n".join(lines)
