"""Call-graph profiles (``opcontrol --callgraph``) — stock flavour.

The implementation now lives in :mod:`repro.pipeline.callgraph`, one
module for both the stock and the cross-layer recorder (they were
near-duplicates).  This module remains as the stable import path for
stock-OProfile consumers.
"""

from __future__ import annotations

from repro.pipeline.callgraph import CallArc, CallGraphRecorder, NodeKey

__all__ = ["CallArc", "CallGraphRecorder", "NodeKey"]
