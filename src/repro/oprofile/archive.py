"""Session archiving (the ``oparchive`` capability).

Real OProfile separates *collection* from *analysis*: ``oparchive`` copies
a session's sample files (plus the binaries needed to resolve them) so
reports can be regenerated later or elsewhere.  Our resolution context — a
process's mappings, the kernel symbol table, the boot image — is built
deterministically by the engine, so an archive needs only the sample
files, the VIProf code maps, and a small metadata record; analysis rebuilds
the machine state (without running it) and resolves against the archived
artifacts.

This also unlocks cross-session workflows: archive two configurations of
the same benchmark and :func:`~repro.profiling.diff.diff_reports` them.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ProfilerError
from repro.jvm.bootimage import build_boot_image
from repro.oprofile.opcontrol import OprofileConfig
from repro.oprofile.opreport import OpReport
from repro.profiling.diff import ProfileDiff, diff_reports
from repro.profiling.report import ProfileReport
from repro.system.engine import EngineConfig, ProfilerMode, RunResult, SystemEngine
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.postprocess import ViprofReport
from repro.viprof.runtime_profiler import VmRegistration
from repro.workloads.base import by_name

__all__ = ["ArchivedSession", "SessionStore"]

_META_NAME = "meta.json"


@dataclass(frozen=True)
class ArchivedSession:
    """One archived profiling session."""

    label: str
    path: Path
    meta: dict

    @property
    def benchmark(self) -> str:
        return self.meta["benchmark"]

    @property
    def mode(self) -> str:
        return self.meta["mode"]

    @property
    def period(self) -> int:
        return self.meta["period"]


class SessionStore:
    """Directory of archived sessions."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def archive(self, result: RunResult, label: str) -> ArchivedSession:
        """Copy a profiled run's artifacts under ``label``.

        Raises:
            ProfilerError: for unprofiled runs or duplicate labels.
        """
        if result.sample_dir is None or result.session_dir is None:
            raise ProfilerError("cannot archive an unprofiled run")
        dest = self.root / label
        if dest.exists():
            raise ProfilerError(f"session label {label!r} already exists")
        dest.mkdir(parents=True)
        shutil.copytree(result.sample_dir, dest / "samples")
        maps_src = result.session_dir / "jit-maps"
        if maps_src.is_dir():
            shutil.copytree(maps_src, dest / "jit-maps")
        assert result.config.profile_config is not None
        reg = None
        if result.viprof_session is not None:
            regs = result.viprof_session.daemon.registrations
            if regs:
                reg = {
                    "task_id": regs[0].task_id,
                    "heap_low": regs[0].heap_low,
                    "heap_high": regs[0].heap_high,
                }
        meta = {
            "benchmark": result.workload_name,
            "mode": result.mode.value,
            "period": result.config.profile_config.primary_period,
            "seed": result.config.seed,
            "time_scale": result.config.time_scale,
            "wall_cycles": result.wall_cycles,
            "registration": reg,
        }
        (dest / _META_NAME).write_text(json.dumps(meta, indent=2))
        return ArchivedSession(label=label, path=dest, meta=meta)

    def sessions(self) -> list[ArchivedSession]:
        out = []
        for d in sorted(self.root.iterdir()):
            meta_path = d / _META_NAME
            if d.is_dir() and meta_path.is_file():
                out.append(
                    ArchivedSession(
                        label=d.name, path=d,
                        meta=json.loads(meta_path.read_text()),
                    )
                )
        return out

    def get(self, label: str) -> ArchivedSession:
        for s in self.sessions():
            if s.label == label:
                return s
        raise ProfilerError(f"no archived session {label!r}")

    # ------------------------------------------------------------------

    def report(self, label: str) -> ProfileReport:
        """Regenerate the session's report from archived artifacts.

        The resolution context (kernel symbols, process mappings, boot
        image) is rebuilt deterministically by constructing — *not*
        running — the same engine configuration.
        """
        s = self.get(label)
        engine = self._rebuild_engine(s)
        if s.mode == ProfilerMode.VIPROF.value:
            reg_meta = s.meta.get("registration")
            if reg_meta is None:
                raise ProfilerError(
                    f"archive {label!r} lacks a VM registration record"
                )
            post = ViprofReport(
                kernel=engine.kernel,
                sample_dir=s.path / "samples",
                codemaps=CodeMapIndex.load_dir(s.path / "jit-maps"),
                rvm_map=build_boot_image().rvm_map,
                registrations=(
                    VmRegistration(
                        task_id=reg_meta["task_id"],
                        heap_low=reg_meta["heap_low"],
                        heap_high=reg_meta["heap_high"],
                    ),
                ),
            )
            return post.generate()
        return OpReport(engine.kernel, s.path / "samples").generate()

    def diff(
        self, label_before: str, label_after: str, event: str | None = None
    ) -> ProfileDiff:
        """Diff two archived sessions' reports."""
        return diff_reports(
            self.report(label_before), self.report(label_after), event=event
        )

    # ------------------------------------------------------------------

    def _rebuild_engine(self, s: ArchivedSession) -> SystemEngine:
        cfg = EngineConfig(
            mode=ProfilerMode(s.mode),
            profile_config=OprofileConfig.paper_config(s.period),
            session_dir=s.path / "_rebuild",
            seed=s.meta["seed"],
            time_scale=s.meta["time_scale"],
        )
        return SystemEngine(by_name(s.benchmark), cfg)
