"""Profiler configuration (the ``opcontrol`` interface).

The paper's experiments program two events — ``GLOBAL_POWER_EVENTS`` at the
headline period (45 K / 90 K / 450 K cycles) and ``BSQ_CACHE_REFERENCE``
(L2 read misses) at a proportionally smaller period, since misses are far
rarer than cycles.  :meth:`OprofileConfig.paper_config` builds exactly that
pair from a single headline period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.counters import CounterConfig
from repro.hardware.events import event_by_name

__all__ = ["EventSpec", "OprofileConfig"]

#: Ratio between the cycle period and the default cache-miss period.
#: Misses are 2-3 orders of magnitude rarer than cycles; this keeps the
#: miss-sample volume below the cycle-sample volume even for the most
#: cache-hostile benchmark (hsqldb), as any sane opcontrol setup would.
CACHE_PERIOD_DIVISOR = 10

#: Default daemon wakeup period in cycles (oprofiled wakes a few times per
#: second; at the simulator's 3.4 MHz clock this is ~75 ms of machine time).
DEFAULT_DAEMON_PERIOD = 250_000

#: Default kernel sample-buffer capacity in samples.
DEFAULT_BUFFER_CAPACITY = 8192


@dataclass(frozen=True, slots=True)
class EventSpec:
    """One profiled event: mnemonic plus sampling period."""

    event_name: str
    period: int

    def to_counter_config(self) -> CounterConfig:
        return CounterConfig(event=event_by_name(self.event_name), period=self.period)


@dataclass(frozen=True)
class OprofileConfig:
    """Full profiler session configuration.

    Attributes:
        events: events to profile (at least one).
        buffer_capacity: kernel ring-buffer capacity in samples.
        daemon_period: cycles between daemon wakeups.
        output_dir_name: directory (under the session dir) for sample files.
    """

    events: tuple[EventSpec, ...]
    buffer_capacity: int = DEFAULT_BUFFER_CAPACITY
    daemon_period: int = DEFAULT_DAEMON_PERIOD
    output_dir_name: str = "samples"

    def __post_init__(self) -> None:
        if not self.events:
            raise ConfigError("at least one event must be configured")
        names = [e.event_name for e in self.events]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate events in config: {names}")
        for e in self.events:
            e.to_counter_config()  # validates event name and period
        if self.buffer_capacity < 64:
            raise ConfigError("buffer capacity unreasonably small (< 64)")
        if self.daemon_period <= 0:
            raise ConfigError("daemon period must be positive")

    @property
    def primary_period(self) -> int:
        return self.events[0].period

    @classmethod
    def paper_config(cls, cycle_period: int = 90_000) -> "OprofileConfig":
        """The two-event configuration used throughout the paper's §4."""
        cache_period = max(500, cycle_period // CACHE_PERIOD_DIVISOR)
        return cls(
            events=(
                EventSpec("GLOBAL_POWER_EVENTS", cycle_period),
                EventSpec("BSQ_CACHE_REFERENCE", cache_period),
            )
        )
