"""The OProfile baseline.

A faithful model of the OProfile 0.9-era pipeline the paper extends:

* :mod:`repro.oprofile.opcontrol` — configuration and validation
  (events, periods, buffer sizing, daemon wakeup period);
* :mod:`repro.oprofile.kmodule` — the kernel module: programs the counter
  bank, handles counter-overflow NMIs, and fills a bounded ring buffer
  (overflow drops are counted, as in the real driver);
* :mod:`repro.oprofile.daemon` — the user-level daemon: wakes periodically,
  drains the buffer, attributes each sample to a mapping (file-backed,
  kernel, or *anonymous*) and appends it to per-event sample files; its
  per-sample costs are the heart of the paper's overhead comparison;
* :mod:`repro.oprofile.opreport` — offline post-processing: sample files →
  symbol-level report, as a composition of the streaming pipeline's
  kernel and task-VMA stages (:mod:`repro.pipeline`).  Stock opreport
  leaves anonymous-region samples (i.e. all JIT code) unsymbolized — the
  limitation VIProf removes;
* :mod:`repro.oprofile.callgraph` — arc-recording call-graph profiles
  (implementation shared with VIProf in :mod:`repro.pipeline.callgraph`).
"""

from repro.oprofile.opcontrol import OprofileConfig, EventSpec
from repro.oprofile.kmodule import OprofileKernelModule, SampleBuffer
from repro.oprofile.daemon import DaemonCosts, OprofileDaemon, build_daemon_image
from repro.oprofile.opreport import OpReport
from repro.oprofile.callgraph import CallArc, CallGraphRecorder

__all__ = [
    "OprofileConfig",
    "EventSpec",
    "OprofileKernelModule",
    "SampleBuffer",
    "OprofileDaemon",
    "DaemonCosts",
    "build_daemon_image",
    "OpReport",
    "CallArc",
    "CallGraphRecorder",
]
