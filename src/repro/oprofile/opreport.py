"""Stock OProfile post-processing (``opreport``).

A thin composition over the streaming pipeline (:mod:`repro.pipeline`):
the session's sample files stream through the stock resolver chain —
kernel PCs against the ``vmlinux`` symbol table, then user PCs through
the owning task's VMA set (file-backed mappings through their image's
ELF symbols, anonymous mappings to an ``anon (range:...)`` label with
``(no symbols)``).

That last line is the paper's Figure 1 (bottom): the JVM heap — all JIT
code — and any stripped images stay opaque.  VIProf's post-processor
(:mod:`repro.viprof.postprocess`) composes a longer chain; the resolution
logic itself lives in :mod:`repro.pipeline.stages`, not here.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.os.kernel import Kernel
from repro.pipeline.aggregate import run_pipeline
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.source import DirectorySource, as_pipeline_sample
from repro.pipeline.stages import (
    UNKNOWN_IMAGE,
    KernelSymbolStage,
    TaskVmaStage,
)
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import ProfileReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.profiling.annotate import SymbolAnnotation

__all__ = ["OpReport", "UNKNOWN_IMAGE"]


class OpReport:
    """Post-processor over a directory of per-event sample files.

    ``self.chain`` is the resolver chain the report is built from;
    subclasses override :meth:`_build_chain` (not resolution methods) to
    extend resolution, and the chain's per-stage counters
    (``self.chain.stats_dict()``) travel with every report flavour.
    """

    def __init__(
        self,
        kernel: Kernel,
        sample_dir: Path | str,
        resolve_cache: bool = True,
    ) -> None:
        self.kernel = kernel
        self.source = DirectorySource(sample_dir)
        self.sample_dir = self.source.sample_dir
        self.resolve_cache = resolve_cache
        self.chain = self._build_chain()

    @property
    def _cache_size(self) -> int:
        """Resolution-cache bound for the report's chain (0 = disabled;
        the ``--no-resolve-cache`` ablation)."""
        from repro.pipeline.cache import DEFAULT_RESOLVE_CACHE_SIZE

        return DEFAULT_RESOLVE_CACHE_SIZE if self.resolve_cache else 0

    def _build_chain(self) -> ResolverChain:
        """Stock opreport resolution: kernel symbols, then task VMAs."""
        return ResolverChain(
            [KernelSymbolStage(self.kernel), TaskVmaStage(self.kernel)],
            cache_size=self._cache_size,
        )

    # ------------------------------------------------------------------

    def iter_samples(self) -> Iterator[RawSample]:
        """Stream every sample from every event file, in file order."""
        for ps in self.source:
            yield ps.raw

    def read_samples(self) -> list[RawSample]:
        """Load every sample from every event file, in file order.

        Prefer :meth:`iter_samples` / :meth:`resolved_samples` — this
        materializes the whole stream and exists for callers that need
        random access.
        """
        return list(self.iter_samples())

    def event_names(self) -> tuple[str, ...]:
        """Event column order: the time event first (as the paper's tables
        print it), then the rest alphabetically."""
        return self.source.event_names()

    # ------------------------------------------------------------------

    def resolve(self, sample: RawSample) -> ResolvedSample:
        """Symbolize one sample through the report's resolver chain."""
        return self.chain.resolve(as_pipeline_sample(sample))

    def resolved_samples(self) -> Iterator[ResolvedSample]:
        """Stream the session's samples through the resolver chain."""
        return self.chain.resolve_stream(self.source)

    # ------------------------------------------------------------------

    def process_summary(self) -> list[tuple[int, str, int]]:
        """Samples per task: ``(pid, comm, sample_count)`` sorted by count
        (opreport's ``--separate=proc`` flavour).  Kernel-mode samples are
        charged to the interrupted task, as OProfile does."""
        counts: dict[int, int] = {}
        for s in self.iter_samples():
            counts[s.task_id] = counts.get(s.task_id, 0) + 1
        out = []
        for pid, n in counts.items():
            proc = self.kernel.process(pid)
            out.append((pid, proc.name if proc else "(unknown)", n))
        out.sort(key=lambda t: (-t[2], t[0]))
        return out

    def annotate(
        self,
        image: str,
        symbol: str,
        bucket_bytes: int = 16,
        expansion: int | None = None,
    ) -> "SymbolAnnotation":
        """Within-symbol offset histogram (``opannotate``).

        See :func:`repro.profiling.annotate.annotate_symbol`.
        """
        from repro.profiling.annotate import annotate_symbol

        return annotate_symbol(
            self.resolved_samples(), image, symbol,
            bucket_bytes=bucket_bytes, expansion=expansion,
        )

    def generate(
        self,
        events: tuple[str, ...] | None = None,
        pid: int | None = None,
        workers: int | str = 1,
        columnar: bool = True,
        warm_top_k: int | bool | None = None,
    ) -> ProfileReport:
        """Build the symbol-level report in one streaming pass.

        Args:
            events: column order; defaults to the on-disk event order.
            pid: restrict to one task (``opreport`` image separation);
                kernel-mode samples are kept, as OProfile does.
            workers: shard the session's sample files across this many
                worker processes (output is byte-identical to ``1``);
                ``"auto"`` sizes the pool from the machine's core count.
                Incompatible with ``pid`` — filtering is a sequential
                pass over the stream.
            columnar: resolve with the deduplicated batch path
                (:mod:`repro.pipeline.columnar`); byte- and
                stats-identical to the scalar loop, substantially faster.
            warm_top_k: with ``workers > 1``, seed each shard worker's
                resolution cache from this chain's hottest entries
                (output-neutral; only useful when the chain is already
                warm from a previous pass).
        """
        from repro.pipeline.parallel import resolve_workers

        workers = resolve_workers(workers)
        if pid is not None and workers > 1:
            from repro.errors import ProfilerError

            raise ProfilerError(
                "pid-filtered reports resolve sequentially; "
                "drop workers or the pid filter"
            )
        source = (
            self.source
            if pid is None
            else (
                ps
                for ps in self.source
                if ps.raw.task_id == pid or ps.raw.kernel_mode
            )
        )
        return run_pipeline(
            source,
            self.chain,
            events=events or self.event_names(),
            workers=workers,
            columnar=columnar,
            warm_top_k=warm_top_k,
        )
