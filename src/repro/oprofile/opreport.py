"""Stock OProfile post-processing (``opreport``).

Reads the sample files back and symbolizes each sample:

* kernel PCs resolve against the ``vmlinux`` symbol table;
* user PCs resolve through the owning task's VMA set: file-backed mappings
  through their image's ELF symbols, anonymous mappings to an
  ``anon (range:...)`` label with ``(no symbols)``.

That last line is the paper's Figure 1 (bottom): the JVM heap — all JIT
code — and any stripped images stay opaque.  VIProf's post-processor
(:mod:`repro.viprof.postprocess`) subclasses the resolution step.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ProfilerError
from repro.os.binary import NO_SYMBOLS
from repro.os.address_space import VmaKind
from repro.os.kernel import Kernel
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import ProfileReport, build_report
from repro.profiling.samplefile import SampleFileReader

__all__ = ["OpReport"]

#: Label for samples whose PC matches no mapping at all.
UNKNOWN_IMAGE = "(unknown)"


class OpReport:
    """Post-processor over a directory of per-event sample files."""

    def __init__(self, kernel: Kernel, sample_dir: Path | str) -> None:
        self.kernel = kernel
        self.sample_dir = Path(sample_dir)
        if not self.sample_dir.is_dir():
            raise ProfilerError(f"no sample directory {self.sample_dir}")

    # ------------------------------------------------------------------

    def read_samples(self) -> list[RawSample]:
        """Load every sample from every event file, in file order."""
        samples: list[RawSample] = []
        files = sorted(self.sample_dir.glob("*.samples"))
        if not files:
            raise ProfilerError(f"no sample files in {self.sample_dir}")
        for path in files:
            samples.extend(SampleFileReader(path))
        return samples

    def event_names(self) -> tuple[str, ...]:
        """Event column order: the time event first (as the paper's tables
        print it), then the rest alphabetically."""
        names = [
            SampleFileReader(p).event_name
            for p in sorted(self.sample_dir.glob("*.samples"))
        ]
        return tuple(
            sorted(names, key=lambda n: (n != "GLOBAL_POWER_EVENTS", n))
        )

    # ------------------------------------------------------------------

    def resolve(self, sample: RawSample) -> ResolvedSample:
        """Symbolize one sample the way stock opreport does."""
        if sample.kernel_mode or self.kernel.is_kernel_address(sample.pc):
            image, symbol = self.kernel.resolve_kernel(sample.pc)
            koff = sample.pc - self.kernel.layout.kernel_base
            sym = self.kernel.image.symbol_at(koff)
            return ResolvedSample(
                raw=sample, image=image, symbol=symbol,
                offset=(koff - sym.offset) if sym is not None else -1,
            )
        proc = self.kernel.process(sample.task_id)
        if proc is None:
            return ResolvedSample(raw=sample, image=UNKNOWN_IMAGE, symbol=NO_SYMBOLS)
        vma = proc.address_space.resolve(sample.pc)
        if vma is None:
            return ResolvedSample(raw=sample, image=UNKNOWN_IMAGE, symbol=NO_SYMBOLS)
        if vma.kind is VmaKind.FILE:
            assert vma.image is not None
            off = vma.to_image_offset(sample.pc)
            sym = vma.image.symbol_at(off)
            return ResolvedSample(
                raw=sample,
                image=vma.image.name,
                symbol=sym.name if sym is not None else NO_SYMBOLS,
                offset=(off - sym.offset) if sym is not None else -1,
            )
        return ResolvedSample(raw=sample, image=vma.label(), symbol=NO_SYMBOLS)

    # ------------------------------------------------------------------

    def process_summary(self) -> list[tuple[int, str, int]]:
        """Samples per task: ``(pid, comm, sample_count)`` sorted by count
        (opreport's ``--separate=proc`` flavour).  Kernel-mode samples are
        charged to the interrupted task, as OProfile does."""
        counts: dict[int, int] = {}
        for s in self.read_samples():
            counts[s.task_id] = counts.get(s.task_id, 0) + 1
        out = []
        for pid, n in counts.items():
            proc = self.kernel.process(pid)
            out.append((pid, proc.name if proc else "(unknown)", n))
        out.sort(key=lambda t: (-t[2], t[0]))
        return out

    def annotate(
        self,
        image: str,
        symbol: str,
        bucket_bytes: int = 16,
        expansion: int | None = None,
    ):
        """Within-symbol offset histogram (``opannotate``).

        See :func:`repro.profiling.annotate.annotate_symbol`.
        """
        from repro.profiling.annotate import annotate_symbol

        resolved = [self.resolve(s) for s in self.read_samples()]
        return annotate_symbol(
            resolved, image, symbol, bucket_bytes=bucket_bytes,
            expansion=expansion,
        )

    def generate(
        self,
        events: tuple[str, ...] | None = None,
        pid: int | None = None,
    ) -> ProfileReport:
        """Build the symbol-level report.

        Args:
            events: column order; defaults to the on-disk event order.
            pid: restrict to one task (``opreport`` image separation).
        """
        raws = self.read_samples()
        if pid is not None:
            raws = [s for s in raws if s.task_id == pid or s.kernel_mode]
        resolved = [self.resolve(s) for s in raws]
        return build_report(resolved, events=events or self.event_names())
