"""The user-level OProfile daemon (``oprofiled``).

The daemon wakes periodically, drains the kernel sample buffer, attributes
each sample to a mapping, and appends it to per-event sample files.  The
paper calls this "the main source of profiling overhead", and its per-sample
costs are where OProfile and VIProf genuinely differ:

* a **file-backed** sample is cheap: VMA lookup, image-keyed append;
* a **kernel** sample is cheaper still (no VMA walk);
* an **anonymous** sample is the expensive path: stock OProfile maintains
  anonymous-mapping bookkeeping per range (this is every JIT sample, since
  the JVM heap is an anonymous map);
* VIProf *replaces* the anonymous path for registered VM heaps with a bounds
  check + epoch tag (see
  :class:`repro.viprof.runtime_profiler.ViprofRuntimeProfiler`), which is
  why VIProf occasionally beats OProfile in Figure 2.

Costs are charged in cycles, and the engine replays them as execution of
the daemon binary, so the profiler shows up in its own profiles — just like
real ``oprofiled`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ProfilerError
from repro.os.binary import BinaryImage, Symbol
from repro.os.kernel import Kernel
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.address_space import VmaKind
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileWriter

__all__ = ["DaemonCosts", "DaemonWork", "OprofileDaemon", "build_daemon_image"]


def build_daemon_image() -> BinaryImage:
    """The ``oprofiled`` binary with the symbols its work is charged to."""
    funcs = (
        ("opd_main_loop", 0x200),
        ("opd_process_samples", 0x300),
        ("opd_vma_lookup", 0x180),
        ("opd_anon_mapping_log", 0x240),
        ("opd_jit_heap_check", 0x80),
        ("opd_sfile_write", 0x200),
    )
    syms = []
    off = 0x1000
    for name, size in funcs:
        syms.append(Symbol(offset=off, size=size, name=name))
        off += size + 16
    return BinaryImage("oprofiled", 0x20000, syms)


@dataclass(frozen=True, slots=True)
class DaemonCosts:
    """Per-operation daemon costs in cycles.

    Calibrated so the paper's configuration (90 K period) yields ~5 %
    end-to-end overhead; see ``benchmarks/bench_fig2_overhead.py``.
    """

    wakeup: int = 1200  # syscall return, buffer read, locking
    resolve: int = 380  # VMA walk + image cookie lookup per sample
    kernel_sample: int = 200  # kernel samples skip the VMA walk
    anon_extra: int = 520  # anonymous-mapping bookkeeping (stock OProfile)
    jit_classify: int = 120  # VIProf heap bounds check + epoch tag
    write_per_sample: int = 70
    flush: int = 700  # per wakeup that wrote anything


@dataclass(slots=True)
class DaemonWork:
    """Cycle cost of one daemon wakeup, broken down by daemon function so
    the engine can attribute execution to the right ``oprofiled`` symbols."""

    total: int = 0
    by_symbol: dict[str, int] = field(default_factory=dict)

    def charge(self, symbol: str, cycles: int) -> None:
        if cycles <= 0:
            return
        self.total += cycles
        self.by_symbol[symbol] = self.by_symbol.get(symbol, 0) + cycles


@dataclass
class DaemonStats:
    samples_logged: int = 0
    kernel_samples: int = 0
    file_samples: int = 0
    anon_samples: int = 0
    jit_samples: int = 0  # VIProf-classified (always 0 for stock OProfile)
    wakeups: int = 0


class OprofileDaemon:
    """Stock oprofiled: drains the buffer and logs samples to disk."""

    #: categories returned by :meth:`classify`
    KERNEL = "kernel"
    FILE = "file"
    ANON = "anon"
    JIT = "jit"

    def __init__(
        self,
        kernel: Kernel,
        kmodule: OprofileKernelModule,
        config: OprofileConfig,
        output_dir: Path | str,
        costs: DaemonCosts | None = None,
    ) -> None:
        self.kernel = kernel
        self.kmodule = kmodule
        self.config = config
        self.output_dir = Path(output_dir)
        self.costs = costs if costs is not None else DaemonCosts()
        self.stats = DaemonStats()
        self._writers: dict[str, SampleFileWriter] = {}
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ProfilerError("daemon already started")
        self.output_dir.mkdir(parents=True, exist_ok=True)
        for spec in self.config.events:
            path = self.output_dir / f"{spec.event_name}.samples"
            self._writers[spec.event_name] = SampleFileWriter(
                path, spec.event_name, spec.period
            )
        self._started = True

    def stop(self) -> DaemonWork:
        """Final drain + close the sample files."""
        work = self.wakeup()
        for w in self._writers.values():
            w.close()
        self._started = False
        return work

    def sample_file(self, event_name: str) -> Path:
        return self.output_dir / f"{event_name}.samples"

    # ------------------------------------------------------------------

    def classify(self, sample: RawSample) -> str:
        """Attribute a sample to kernel / file-backed / anonymous.

        VIProf's runtime profiler overrides this to short-circuit registered
        VM heap ranges into the JIT category *before* the anonymous path.
        """
        if sample.kernel_mode or self.kernel.is_kernel_address(sample.pc):
            return self.KERNEL
        proc = self.kernel.process(sample.task_id)
        if proc is None:
            return self.ANON
        vma = proc.address_space.resolve(sample.pc)
        if vma is None or vma.kind is not VmaKind.FILE:
            return self.ANON
        return self.FILE

    def _log_cost(self, category: str, work: DaemonWork) -> None:
        c = self.costs
        if category == self.KERNEL:
            work.charge("opd_process_samples", c.kernel_sample)
            self.stats.kernel_samples += 1
        elif category == self.FILE:
            work.charge("opd_vma_lookup", c.resolve)
            self.stats.file_samples += 1
        elif category == self.ANON:
            work.charge("opd_vma_lookup", c.resolve)
            work.charge("opd_anon_mapping_log", c.anon_extra)
            self.stats.anon_samples += 1
        elif category == self.JIT:
            work.charge("opd_jit_heap_check", c.jit_classify)
            self.stats.jit_samples += 1
        else:  # pragma: no cover - defensive
            raise ProfilerError(f"unknown sample category {category!r}")

    def wakeup(self) -> DaemonWork:
        """One daemon period: drain, classify, log, flush."""
        if not self._started:
            raise ProfilerError("daemon not started")
        work = DaemonWork()
        work.charge("opd_main_loop", self.costs.wakeup)
        samples = self.kmodule.buffer.drain()
        self.stats.wakeups += 1
        if not samples:
            return work
        for s in samples:
            category = self.classify(s)
            self._log_cost(category, work)
            writer = self._writers.get(s.event_name)
            if writer is None:
                raise ProfilerError(
                    f"sample for unconfigured event {s.event_name!r}"
                )
            writer.write(s)
            work.charge("opd_sfile_write", self.costs.write_per_sample)
            self.stats.samples_logged += 1
        work.charge("opd_sfile_write", self.costs.flush)
        return work
