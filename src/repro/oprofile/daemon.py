"""The user-level OProfile daemon (``oprofiled``).

The daemon wakes periodically, drains the kernel sample buffer, attributes
each sample to a mapping, and appends it to per-event sample files.  The
paper calls this "the main source of profiling overhead", and its per-sample
costs are where OProfile and VIProf genuinely differ:

* a **file-backed** sample is cheap: VMA lookup, image-keyed append;
* a **kernel** sample is cheaper still (no VMA walk);
* an **anonymous** sample is the expensive path: stock OProfile maintains
  anonymous-mapping bookkeeping per range (this is every JIT sample, since
  the JVM heap is an anonymous map);
* VIProf *replaces* the anonymous path for registered VM heaps with a bounds
  check + epoch tag (see
  :class:`repro.viprof.runtime_profiler.ViprofRuntimeProfiler`), which is
  why VIProf occasionally beats OProfile in Figure 2.

Costs are charged in cycles, and the engine replays them as execution of
the daemon binary, so the profiler shows up in its own profiles — just like
real ``oprofiled`` does.

The drain path is batched: a wakeup takes the kernel buffer in bounded
chunks, classifies each whole chunk in one partitioning pass
(:meth:`OprofileDaemon.classify_chunk` — one process lookup per distinct
task per chunk instead of one per sample), and hands per-image sample
batches to buffered writers that flush in append order.  Batching is a
wall-clock optimization of the *simulator*, never of the simulated
machine: :class:`DaemonCosts` cycles are still charged per logical sample,
grouped by consecutive category runs so every ``DaemonWork`` total,
per-symbol breakdown (including dict insertion order, which fixes the
replay order of daemon quanta), and :class:`DaemonStats` counter is
identical to the per-sample path — and so are the session files, byte for
byte.  ``batch=False`` keeps the historical per-sample loop for A/B
measurement (``benchmarks/bench_collection_perf.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ProfilerError
from repro.faults import injector as faults
from repro.os.binary import BinaryImage, Symbol
from repro.os.kernel import Kernel
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.address_space import VmaKind
from repro.profiling.model import RawSample
from repro.profiling.samplefile import SampleFileWriter

__all__ = ["DaemonCosts", "DaemonWork", "OprofileDaemon", "build_daemon_image"]

#: Records the daemon takes from the kernel buffer per drain chunk.
DRAIN_CHUNK_RECORDS = 4096


def build_daemon_image() -> BinaryImage:
    """The ``oprofiled`` binary with the symbols its work is charged to."""
    funcs = (
        ("opd_main_loop", 0x200),
        ("opd_process_samples", 0x300),
        ("opd_vma_lookup", 0x180),
        ("opd_anon_mapping_log", 0x240),
        ("opd_jit_heap_check", 0x80),
        ("opd_sfile_write", 0x200),
    )
    syms = []
    off = 0x1000
    for name, size in funcs:
        syms.append(Symbol(offset=off, size=size, name=name))
        off += size + 16
    return BinaryImage("oprofiled", 0x20000, syms)


@dataclass(frozen=True, slots=True)
class DaemonCosts:
    """Per-operation daemon costs in cycles.

    Calibrated so the paper's configuration (90 K period) yields ~5 %
    end-to-end overhead; see ``benchmarks/bench_fig2_overhead.py``.
    """

    wakeup: int = 1200  # syscall return, buffer read, locking
    resolve: int = 380  # VMA walk + image cookie lookup per sample
    kernel_sample: int = 200  # kernel samples skip the VMA walk
    anon_extra: int = 520  # anonymous-mapping bookkeeping (stock OProfile)
    jit_classify: int = 120  # VIProf heap bounds check + epoch tag
    write_per_sample: int = 70
    flush: int = 700  # per wakeup that wrote anything


@dataclass(slots=True)
class DaemonWork:
    """Cycle cost of one daemon wakeup, broken down by daemon function so
    the engine can attribute execution to the right ``oprofiled`` symbols."""

    total: int = 0
    by_symbol: dict[str, int] = field(default_factory=dict)

    def charge(self, symbol: str, cycles: int) -> None:
        if cycles <= 0:
            return
        self.total += cycles
        self.by_symbol[symbol] = self.by_symbol.get(symbol, 0) + cycles


@dataclass
class DaemonStats:
    samples_logged: int = 0
    kernel_samples: int = 0
    file_samples: int = 0
    anon_samples: int = 0
    jit_samples: int = 0  # VIProf-classified (always 0 for stock OProfile)
    wakeups: int = 0


class OprofileDaemon:
    """Stock oprofiled: drains the buffer and logs samples to disk."""

    #: categories returned by :meth:`classify`
    KERNEL = "kernel"
    FILE = "file"
    ANON = "anon"
    JIT = "jit"

    def __init__(
        self,
        kernel: Kernel,
        kmodule: OprofileKernelModule,
        config: OprofileConfig,
        output_dir: Path | str,
        costs: DaemonCosts | None = None,
        batch: bool = True,
        write_buffer_bytes: int | None = None,
    ) -> None:
        """``batch=False`` selects the historical sample-at-a-time drain
        loop (same bytes, same cycles — kept for A/B measurement);
        ``write_buffer_bytes`` is the per-image writer high-water mark."""
        self.kernel = kernel
        self.kmodule = kmodule
        self.config = config
        self.output_dir = Path(output_dir)
        self.costs = costs if costs is not None else DaemonCosts()
        self.batch = batch
        self.write_buffer_bytes = write_buffer_bytes
        self.stats = DaemonStats()
        #: cumulative cycles of daemon work across every wakeup — the
        #: numerator of the ``daemon`` overhead panel
        self.work_cycles = 0
        self._writers: dict[str, SampleFileWriter] = {}
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ProfilerError("daemon already started")
        self.output_dir.mkdir(parents=True, exist_ok=True)
        for spec in self.config.events:
            path = self.output_dir / f"{spec.event_name}.samples"
            self._writers[spec.event_name] = SampleFileWriter(
                path, spec.event_name, spec.period,
                buffer_bytes=self.write_buffer_bytes,
            )
        self._started = True

    def stop(self) -> DaemonWork:
        """Final drain + close the sample files."""
        work = self.wakeup()
        for w in self._writers.values():
            w.close()
        self._started = False
        return work

    def sample_file(self, event_name: str) -> Path:
        return self.output_dir / f"{event_name}.samples"

    def _abandon_writers(self) -> None:
        """Fault effect: the daemon process dies — every sample writer's
        buffered records are lost, leaving record-aligned prefixes on
        disk.  Only fault-injection effects call this."""
        for w in self._writers.values():
            w.abandon()

    def crash(self) -> None:
        """Finish simulating the daemon's death after an injected fault:
        drop whatever the writers still buffer and release the sample
        files exactly as the kernel would on process exit — no final
        drain, no flush.  Salvage runs against the result."""
        self._abandon_writers()
        for w in self._writers.values():
            w.close()
        self._started = False

    # ------------------------------------------------------------------

    def classify(self, sample: RawSample) -> str:
        """Attribute a sample to kernel / file-backed / anonymous.

        VIProf's runtime profiler overrides this to short-circuit registered
        VM heap ranges into the JIT category *before* the anonymous path.
        """
        if sample.kernel_mode or self.kernel.is_kernel_address(sample.pc):
            return self.KERNEL
        proc = self.kernel.process(sample.task_id)
        if proc is None:
            return self.ANON
        vma = proc.address_space.resolve(sample.pc)
        if vma is None or vma.kind is not VmaKind.FILE:
            return self.ANON
        return self.FILE

    def classify_chunk(self, samples: list[RawSample]) -> list[str]:
        """Classify a whole drained chunk in one partitioning pass.

        Returns one category per sample, in order — agreeing with
        per-sample :meth:`classify` — but looks each distinct task's
        process up once per chunk instead of once per sample.
        """
        kernel = self.kernel
        is_kaddr = kernel.is_kernel_address
        procs: dict[int, object] = {}
        cats: list[str] = []
        append = cats.append
        for s in samples:
            if s.kernel_mode or is_kaddr(s.pc):
                append(self.KERNEL)
                continue
            tid = s.task_id
            try:
                proc = procs[tid]
            except KeyError:
                proc = procs[tid] = kernel.process(tid)
            if proc is None:
                append(self.ANON)
                continue
            vma = proc.address_space.resolve(s.pc)
            if vma is None or vma.kind is not VmaKind.FILE:
                append(self.ANON)
            else:
                append(self.FILE)
        return cats

    def _log_cost(self, category: str, work: DaemonWork) -> None:
        self._log_cost_run(category, 1, work)

    def _log_cost_run(self, category: str, count: int, work: DaemonWork) -> None:
        """Charge ``count`` consecutive samples of one category.

        Cycles stay per logical sample (``cost x count``); grouping by
        run preserves the per-sample path's charge sequence, so
        ``DaemonWork.by_symbol`` insertion order — which fixes the order
        the engine replays daemon quanta in — cannot drift.
        """
        c = self.costs
        if category == self.KERNEL:
            work.charge("opd_process_samples", c.kernel_sample * count)
            self.stats.kernel_samples += count
        elif category == self.FILE:
            work.charge("opd_vma_lookup", c.resolve * count)
            self.stats.file_samples += count
        elif category == self.ANON:
            work.charge("opd_vma_lookup", c.resolve * count)
            work.charge("opd_anon_mapping_log", c.anon_extra * count)
            self.stats.anon_samples += count
        elif category == self.JIT:
            work.charge("opd_jit_heap_check", c.jit_classify * count)
            self.stats.jit_samples += count
        else:  # pragma: no cover - defensive
            raise ProfilerError(f"unknown sample category {category!r}")

    def wakeup(self) -> DaemonWork:
        """One daemon period: drain, classify, log, flush."""
        if not self._started:
            raise ProfilerError("daemon not started")
        work = DaemonWork()
        work.charge("opd_main_loop", self.costs.wakeup)
        self.stats.wakeups += 1
        drained = False
        if self.batch:
            while True:
                chunk = self.kmodule.buffer.drain(DRAIN_CHUNK_RECORDS)
                if not chunk:
                    break
                drained = True
                self._process_chunk(chunk, work)
                if faults.armed():
                    # Crash point between drain chunks: records handed to
                    # the writers but still buffered die with the process.
                    faults.fire(
                        faults.DAEMON_DRAIN,
                        effect=lambda rng: self._abandon_writers(),
                    )
        else:
            samples = self.kmodule.buffer.drain()
            if samples:
                drained = True
                for s in samples:
                    self._process_one(s, work)
                if faults.armed():
                    faults.fire(
                        faults.DAEMON_DRAIN,
                        effect=lambda rng: self._abandon_writers(),
                    )
        if drained:
            work.charge("opd_sfile_write", self.costs.flush)
        self.work_cycles += work.total
        return work

    def overhead_panel(self) -> dict[str, int | float]:
        """Raw overhead counters for the unified summary's ``daemon``
        panel (:mod:`repro.metrics`): total daemon cycles, wakeups, and
        the samples that work logged."""
        return {
            "work_cycles": self.work_cycles,
            "wakeups": self.stats.wakeups,
            "samples_logged": self.stats.samples_logged,
        }

    def _process_one(self, sample: RawSample, work: DaemonWork) -> None:
        """The historical per-sample path: classify, charge, append."""
        category = self.classify(sample)
        self._log_cost(category, work)
        writer = self._writers.get(sample.event_name)
        if writer is None:
            raise ProfilerError(
                f"sample for unconfigured event {sample.event_name!r}"
            )
        writer.write(sample)
        work.charge("opd_sfile_write", self.costs.write_per_sample)
        self.stats.samples_logged += 1

    def _process_chunk(self, chunk: list[RawSample], work: DaemonWork) -> None:
        """Batched drain: one classification pass, per-sample cycle charges
        grouped by category run, one bulk-encoded write per image file."""
        cats = self.classify_chunk(chunk)
        write_per_sample = self.costs.write_per_sample
        i, n = 0, len(cats)
        while i < n:
            cat = cats[i]
            j = i + 1
            while j < n and cats[j] == cat:
                j += 1
            run = j - i
            self._log_cost_run(cat, run, work)
            work.charge("opd_sfile_write", write_per_sample * run)
            i = j
        by_event: dict[str, list[RawSample]] = {}
        for s in chunk:
            by_event.setdefault(s.event_name, []).append(s)
        for event, batch in by_event.items():
            writer = self._writers.get(event)
            if writer is None:
                raise ProfilerError(
                    f"sample for unconfigured event {event!r}"
                )
            writer.write_batch(batch)
        self.stats.samples_logged += len(chunk)
