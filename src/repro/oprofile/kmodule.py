"""The OProfile kernel module.

Responsibilities reproduced from the real driver:

1. program the hardware counters from the user's configuration;
2. handle counter-overflow NMIs: read the interrupted PC, note the current
   task and privilege mode, and append a sample record to a bounded ring
   buffer (samples arriving into a full buffer are *lost* and counted, as in
   the real driver's ``sample_lost_overflow`` statistic);
3. expose the buffer for the user-level daemon to drain.

Each NMI costs :data:`NMI_HANDLER_CYCLES` — this, times the sampling rate,
is the frequency-dependent part of profiling overhead in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfilerError
from repro.hardware.cpu import CPU
from repro.hardware.interrupts import CpuMode, InterruptFrame
from repro.oprofile.opcontrol import OprofileConfig
from repro.profiling.model import RawSample

__all__ = ["SampleBuffer", "OprofileKernelModule", "NMI_HANDLER_CYCLES"]

#: Cost of one NMI delivery + sample capture (register save, counter read,
#: buffer append, counter reload, iret).  Identical for OProfile and VIProf —
#: the VIProf changes are all daemon-side.
NMI_HANDLER_CYCLES = 1100


@dataclass
class SampleBuffer:
    """Bounded ring buffer between NMI context and the daemon."""

    capacity: int
    _samples: list[RawSample] = field(default_factory=list)
    lost: int = 0
    total_captured: int = 0

    def append(self, sample: RawSample) -> bool:
        """Append a sample; returns False (and counts a loss) when full."""
        if len(self._samples) >= self.capacity:
            self.lost += 1
            return False
        self._samples.append(sample)
        self.total_captured += 1
        return True

    def drain(self, max_records: int | None = None) -> list[RawSample]:
        """Atomically take buffered samples, oldest first.

        ``max_records=None`` takes everything (the original behaviour);
        otherwise at most ``max_records`` are removed, which is how the
        daemon drains the buffer in bounded chunks per wakeup.
        """
        if max_records is None or max_records >= len(self._samples):
            out = self._samples
            self._samples = []
        elif max_records <= 0:
            out = []
        else:
            out = self._samples[:max_records]
            del self._samples[:max_records]
        return out

    def __len__(self) -> int:
        return len(self._samples)


class OprofileKernelModule:
    """Counter programming plus the NMI sample-capture path."""

    def __init__(self, config: OprofileConfig) -> None:
        self.config = config
        self.buffer = SampleBuffer(capacity=config.buffer_capacity)
        self._cpu: CPU | None = None
        self.active = False
        #: Optional callable returning the GC epoch to stamp on a sample;
        #: installed by VIProf's runtime profiler (stock OProfile leaves it
        #: unset and samples carry epoch -1).
        self.epoch_source = None

    def setup(self, cpu: CPU) -> None:
        """Program the counters and hook the NMI line (``opcontrol --start``)."""
        if self.active:
            raise ProfilerError("kernel module already active")
        for spec in self.config.events:
            cpu.counters.program(spec.to_counter_config())
        cpu.nmi.register(self._handle_nmi)
        self._cpu = cpu
        self.active = True

    def shutdown(self) -> None:
        """Detach from the CPU (``opcontrol --shutdown``)."""
        if not self.active:
            return
        assert self._cpu is not None
        self._cpu.nmi.unregister()
        self._cpu.counters.clear()
        self.active = False

    # ------------------------------------------------------------------

    def _handle_nmi(self, frame: InterruptFrame) -> int:
        epoch = -1
        if self.epoch_source is not None:
            epoch = self.epoch_source()
        self.buffer.append(
            RawSample(
                pc=frame.pc,
                event_name=frame.event_name,
                task_id=frame.task_id,
                kernel_mode=frame.mode is CpuMode.KERNEL,
                cycle=frame.cycle,
                epoch=epoch,
            )
        )
        return NMI_HANDLER_CYCLES
