"""Full-system execution engine and experiment harness.

* :mod:`repro.system.ledger` — the ground-truth cycle/miss ledger the
  simulator keeps while running (what a real profiler can only estimate);
* :mod:`repro.system.engine` — assembles a complete machine (CPU, kernel,
  processes, JVM, profiler) and runs one benchmark under one profiling
  configuration;
* :mod:`repro.system.experiment` — the run matrices behind the paper's
  figures (base / OProfile / VIProf at several sampling periods);
* :mod:`repro.system.api` — the three-function public API
  (:func:`~repro.system.api.base_run`,
  :func:`~repro.system.api.oprofile_profile`,
  :func:`~repro.system.api.viprof_profile`).
"""

from repro.system.ledger import TruthLedger
from repro.system.engine import EngineConfig, ProfilerMode, RunResult, SystemEngine
from repro.system.api import base_run, oprofile_profile, viprof_profile
from repro.system.experiment import (
    OverheadCell,
    OverheadMatrix,
    run_case_study,
    run_overhead_matrix,
)

__all__ = [
    "TruthLedger",
    "EngineConfig",
    "ProfilerMode",
    "RunResult",
    "SystemEngine",
    "base_run",
    "oprofile_profile",
    "viprof_profile",
    "OverheadCell",
    "OverheadMatrix",
    "run_case_study",
    "run_overhead_matrix",
]
