"""Experiment matrices behind the paper's figures.

* :func:`run_overhead_matrix` — Figure 2: for each benchmark, run base,
  OProfile at the median period, and VIProf at three periods; report
  normalized slowdowns.  Figure 3 (base times) falls out of the same runs.
* :func:`run_case_study` — Figure 1: profile DaCapo ``ps`` once with each
  profiler and return both symbol listings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.system.api import base_run, oprofile_profile, viprof_profile
from repro.system.engine import RunResult
from repro.workloads.base import Workload, by_name, paper_suite

__all__ = [
    "PAPER_PERIODS",
    "OverheadCell",
    "OverheadMatrix",
    "run_overhead_matrix",
    "run_case_study",
    "CaseStudyResult",
]

#: The paper's three sampling frequencies (cycles between samples).
PAPER_PERIODS = (45_000, 90_000, 450_000)
MEDIAN_PERIOD = 90_000


@dataclass(frozen=True, slots=True)
class OverheadCell:
    """One bar of Figure 2: a profiled run normalized to its base run."""

    benchmark: str
    profiler: str  # "oprofile" | "viprof"
    period: int
    slowdown: float
    base_seconds: float
    profiled_seconds: float


@dataclass
class OverheadMatrix:
    """All Figure 2 bars plus the Figure 3 base-time column."""

    cells: list[OverheadCell] = field(default_factory=list)
    base_seconds: dict[str, float] = field(default_factory=dict)

    def cell(self, benchmark: str, profiler: str, period: int) -> OverheadCell:
        for c in self.cells:
            if (
                c.benchmark == benchmark
                and c.profiler == profiler
                and c.period == period
            ):
                return c
        raise ConfigError(
            f"no overhead cell for ({benchmark!r}, {profiler!r}, {period})"
        )

    def slowdowns(self, profiler: str, period: int) -> dict[str, float]:
        return {
            c.benchmark: c.slowdown
            for c in self.cells
            if c.profiler == profiler and c.period == period
        }

    def average_slowdown(self, profiler: str, period: int) -> float:
        vals = list(self.slowdowns(profiler, period).values())
        return sum(vals) / len(vals) if vals else 0.0

    # -- formatting -----------------------------------------------------

    def format_figure2(self) -> str:
        """The Figure 2 table: one row per benchmark, one column per
        (profiler, period) configuration, values = normalized slowdown."""
        configs = [
            ("oprofile", MEDIAN_PERIOD, "Oprof 90K"),
            ("viprof", 45_000, "VIProf 45K"),
            ("viprof", 90_000, "VIProf 90K"),
            ("viprof", 450_000, "VIProf 450K"),
        ]
        names = sorted({c.benchmark for c in self.cells}, key=self._order)
        header = f"{'benchmark':<12}" + "".join(f"{lbl:>13}" for *_, lbl in configs)
        lines = [header]
        sums = [0.0] * len(configs)
        for name in names:
            row = [f"{name:<12}"]
            for i, (prof, period, _) in enumerate(configs):
                try:
                    s = self.cell(name, prof, period).slowdown
                except ConfigError:
                    row.append(f"{'-':>13}")
                    continue
                sums[i] += s
                row.append(f"{s:13.3f}")
            lines.append("".join(row))
        avg = [s / max(1, len(names)) for s in sums]
        lines.append(
            f"{'Average':<12}" + "".join(f"{a:13.3f}" for a in avg)
        )
        return "\n".join(lines)

    def format_figure3(self) -> str:
        """The Figure 3 table: base execution time in (simulated) seconds."""
        lines = [f"{'Benchmark':<12}{'Base time (s)':>14}"]
        names = sorted(self.base_seconds, key=self._order)
        for name in names:
            lines.append(f"{name:<12}{self.base_seconds[name]:14.2f}")
        avg = sum(self.base_seconds.values()) / max(1, len(self.base_seconds))
        lines.append(f"{'Average':<12}{avg:14.2f}")
        return "\n".join(lines)

    @staticmethod
    def _order(name: str) -> int:
        order = [
            "pseudojbb", "jvm98", "antlr", "bloat", "fop",
            "hsqldb", "pmd", "xalan", "ps",
        ]
        return order.index(name) if name in order else len(order)


def run_overhead_matrix(
    workloads: list[Workload] | None = None,
    periods: tuple[int, ...] = PAPER_PERIODS,
    seed: int = 7,
    time_scale: float = 1.0,
    include_oprofile: bool = True,
) -> OverheadMatrix:
    """Run the Figure 2 matrix and return the slowdown table.

    With the default ``time_scale`` this runs each benchmark for its full
    Figure 3 cycle budget, five times — expect a few minutes of wall time.
    """
    suite = workloads if workloads is not None else paper_suite()
    matrix = OverheadMatrix()
    for wl in suite:
        base = base_run(wl, seed=seed, time_scale=time_scale)
        base_s = base.seconds
        matrix.base_seconds[wl.name] = base_s
        runs: list[tuple[str, int, RunResult]] = []
        if include_oprofile:
            runs.append(
                (
                    "oprofile",
                    MEDIAN_PERIOD,
                    oprofile_profile(
                        wl, period=MEDIAN_PERIOD, seed=seed, time_scale=time_scale
                    ),
                )
            )
        for period in periods:
            runs.append(
                (
                    "viprof",
                    period,
                    viprof_profile(
                        wl, period=period, seed=seed, time_scale=time_scale
                    ),
                )
            )
        for profiler, period, result in runs:
            matrix.cells.append(
                OverheadCell(
                    benchmark=wl.name,
                    profiler=profiler,
                    period=period,
                    slowdown=result.slowdown_vs(base),
                    base_seconds=base_s,
                    profiled_seconds=result.seconds,
                )
            )
    return matrix


@dataclass
class CaseStudyResult:
    """Figure 1: the same run profiled by both tools."""

    viprof_run: RunResult
    oprofile_run: RunResult
    viprof_table: str
    oprofile_table: str

    def side_by_side(self, limit: int = 12) -> str:
        return (
            "=== VIProf ===\n"
            + self.viprof_table
            + "\n\n=== Oprofile ===\n"
            + self.oprofile_table
        )


def run_case_study(
    benchmark: str = "ps",
    period: int = MEDIAN_PERIOD,
    seed: int = 7,
    time_scale: float = 1.0,
    limit: int = 12,
) -> CaseStudyResult:
    """Reproduce Figure 1 for ``benchmark`` (DaCapo ``ps`` by default)."""
    wl_v = by_name(benchmark)
    wl_o = by_name(benchmark)
    vrun = viprof_profile(wl_v, period=period, seed=seed, time_scale=time_scale)
    orun = oprofile_profile(wl_o, period=period, seed=seed, time_scale=time_scale)
    vreport = vrun.viprof_report().report
    oreport = orun.oprofile_report()
    return CaseStudyResult(
        viprof_run=vrun,
        oprofile_run=orun,
        viprof_table=vreport.format_table(limit=limit),
        oprofile_table=oreport.format_table(limit=limit),
    )
