"""The ground-truth ledger.

While the engine executes, it records exactly where every cycle and every
L2 miss went — per (image, symbol) and per vertical layer.  This is the
oracle a real profiler never has; we use it to

* validate sampling-profile accuracy (does VIProf's per-method time share
  converge to the truth?), and
* decompose overhead (how many cycles did the NMI handler, the daemon, and
  the VM agent actually consume?).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiling.model import Layer, TruthLabel

__all__ = ["TruthEntry", "TruthLedger"]


@dataclass
class TruthEntry:
    cycles: int = 0
    l2_misses: int = 0


@dataclass
class TruthLedger:
    """Cycle/miss accounting by symbol and by layer."""

    by_symbol: dict[tuple[str, str], TruthEntry] = field(default_factory=dict)
    by_layer: dict[Layer, TruthEntry] = field(default_factory=dict)
    idle_cycles: int = 0
    total_cycles: int = 0
    total_misses: int = 0

    def record(self, truth: TruthLabel, cycles: int, l2_misses: int = 0) -> None:
        entry = self.by_symbol.get(truth.key)
        if entry is None:
            entry = TruthEntry()
            self.by_symbol[truth.key] = entry
        entry.cycles += cycles
        entry.l2_misses += l2_misses
        lentry = self.by_layer.get(truth.layer)
        if lentry is None:
            lentry = TruthEntry()
            self.by_layer[truth.layer] = lentry
        lentry.cycles += cycles
        lentry.l2_misses += l2_misses
        self.total_cycles += cycles
        self.total_misses += l2_misses

    def record_idle(self, cycles: int) -> None:
        self.idle_cycles += cycles

    # ------------------------------------------------------------------

    def cycle_share(self, key: tuple[str, str]) -> float:
        """Fraction of all non-idle cycles spent in (image, symbol)."""
        if not self.total_cycles:
            return 0.0
        e = self.by_symbol.get(key)
        return e.cycles / self.total_cycles if e else 0.0

    def layer_share(self, layer: Layer) -> float:
        if not self.total_cycles:
            return 0.0
        e = self.by_layer.get(layer)
        return e.cycles / self.total_cycles if e else 0.0

    def miss_share(self, key: tuple[str, str]) -> float:
        if not self.total_misses:
            return 0.0
        e = self.by_symbol.get(key)
        return e.l2_misses / self.total_misses if e else 0.0

    def layer_cycles(self, layer: Layer) -> int:
        e = self.by_layer.get(layer)
        return e.cycles if e else 0

    def top_symbols(self, limit: int = 10) -> list[tuple[tuple[str, str], TruthEntry]]:
        items = sorted(
            self.by_symbol.items(), key=lambda kv: (-kv[1].cycles, kv[0])
        )
        return items[:limit]

    def format_table(self, limit: int = 15) -> str:
        lines = [f"{'cycles %':>9} {'miss %':>8}  image : symbol"]
        for (image, symbol), e in self.top_symbols(limit):
            lines.append(
                f"{100 * e.cycles / max(1, self.total_cycles):9.4f} "
                f"{100 * e.l2_misses / max(1, self.total_misses):8.4f}  "
                f"{image} : {symbol}"
            )
        return "\n".join(lines)
