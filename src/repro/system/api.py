"""Three-function public API.

>>> from repro import viprof_profile
>>> from repro.workloads import by_name
>>> result = viprof_profile(by_name("ps"), period=90_000, time_scale=0.1)
>>> vr = result.viprof_report()
>>> print(vr.report.format_table(limit=10))
"""

from __future__ import annotations

from pathlib import Path

from repro.oprofile.opcontrol import OprofileConfig
from repro.system.engine import EngineConfig, ProfilerMode, RunResult, SystemEngine
from repro.workloads.base import Workload

__all__ = ["base_run", "oprofile_profile", "viprof_profile"]


def base_run(
    workload: Workload,
    seed: int = 7,
    time_scale: float = 1.0,
    background: bool = True,
    noise: bool = True,
) -> RunResult:
    """Run a benchmark with no profiler attached (Figure 3's baseline)."""
    cfg = EngineConfig(
        mode=ProfilerMode.NONE,
        seed=seed,
        time_scale=time_scale,
        background=background,
        noise=noise,
    )
    return SystemEngine(workload, cfg).run()


def oprofile_profile(
    workload: Workload,
    period: int = 90_000,
    session_dir: Path | None = None,
    seed: int = 7,
    time_scale: float = 1.0,
    config: OprofileConfig | None = None,
    background: bool = True,
    noise: bool = True,
) -> RunResult:
    """Profile a benchmark with stock OProfile.

    ``result.oprofile_report()`` gives the Figure 1 (bottom) style listing
    with JIT code left anonymous.
    """
    cfg = EngineConfig(
        mode=ProfilerMode.OPROFILE,
        profile_config=config or OprofileConfig.paper_config(period),
        session_dir=session_dir,
        seed=seed,
        time_scale=time_scale,
        background=background,
        noise=noise,
    )
    return SystemEngine(workload, cfg).run()


def viprof_profile(
    workload: Workload,
    period: int = 90_000,
    session_dir: Path | None = None,
    seed: int = 7,
    time_scale: float = 1.0,
    config: OprofileConfig | None = None,
    background: bool = True,
    noise: bool = True,
    record_callgraph: bool = False,
) -> RunResult:
    """Profile a benchmark with VIProf (runtime profiler + VM agent).

    ``result.viprof_report()`` gives the Figure 1 (top) style listing with
    JIT and VM-internal methods fully resolved.
    """
    cfg = EngineConfig(
        mode=ProfilerMode.VIPROF,
        profile_config=config or OprofileConfig.paper_config(period),
        session_dir=session_dir,
        seed=seed,
        time_scale=time_scale,
        background=background,
        noise=noise,
        record_callgraph=record_callgraph,
    )
    return SystemEngine(workload, cfg).run()
