"""The full-system execution engine.

One :class:`SystemEngine` assembles and runs a complete simulated machine:

* a CPU with performance counters and an NMI line;
* a kernel with its symbol table, timer ticks, and per-slice syscall/fault
  activity;
* the benchmark process: a Jikes-RVM-like JVM (boot image mapped as a
  stripped file, nursery/mature heap as anonymous maps, standard shared
  libraries) executing one workload;
* a background X-server process (the ``libfb``/``libxul`` samples visible
  in the paper's Figure 1);
* optionally a profiler — stock OProfile or VIProf — whose daemon runs as
  its own scheduled process and whose every cost (NMI handler, daemon
  sample paths, VM-agent work) is charged in simulated cycles.

The run executes a fixed amount of *workload* (``budget_cycles`` of
JVM-process work, like pseudoJBB's fixed transaction count); everything the
profiler adds lengthens the wall clock, so

    ``slowdown = wall_cycles(profiled) / wall_cycles(base)``

is measured exactly the way the paper measures it.
"""

from __future__ import annotations

import tempfile
import zlib
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from random import Random

from repro.errors import ConfigError
from repro.hardware.cache import CacheGeometry, SetAssociativeCache, StatisticalCacheModel
from repro.hardware.cpu import CPU, CpuMode, Quantum
from repro.hardware.events import EventCounts
from repro.hardware.memory import WorkingSet
from repro.jvm.bootimage import BootImage, build_boot_image
from repro.jvm.heap import Heap
from repro.jvm.machine import (
    AGENT_IMAGE_NAME,
    JikesVM,
    StepKind,
    VmHooks,
    VmStep,
)
from repro.oprofile.daemon import DaemonWork, OprofileDaemon, build_daemon_image
from repro.oprofile.kmodule import OprofileKernelModule
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.address_space import PAGE_SIZE, VmaKind
from repro.os.binary import NO_SYMBOLS, BinaryImage, Symbol, standard_libraries
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.os.scheduler import Scheduler, Task
from repro.profiling.model import Layer, TruthLabel
from repro.system.ledger import TruthLedger
from repro.viprof.callgraph import CrossLayerCallGraph, LayeredNode
from repro.viprof.postprocess import ViprofReport
from repro.viprof.session import ViprofSession
from repro.workloads.base import SIM_HZ, Workload

__all__ = ["ProfilerMode", "EngineConfig", "RunResult", "SystemEngine"]

# --- pacing constants (simulated cycles) -----------------------------------
TICK_PERIOD = 34_000  # 100 Hz timer at the 3.4 MHz simulated clock
TIMER_COST = 240
TIMESLICE = 30_000  # benchmark scheduling quantum
BG_PERIOD = 55_000  # X-server wakeup period
BG_BURST = 1_400  # X-server work per wakeup (~2.5 % of cycles)
KERNEL_MISC_COST_RANGE = (300, 900)  # per-slice syscall/fault service
#: hot boot-image code (VM runtime + compiler paths) counted against the
#: ITLB's reach alongside compiled application bodies
_BOOT_HOT_CODE_BYTES = 160 * 1024


class ProfilerMode(Enum):
    NONE = "none"
    OPROFILE = "oprofile"
    VIPROF = "viprof"


@dataclass(frozen=True)
class EngineConfig:
    """One run's configuration.

    Attributes:
        mode: which profiler (if any) is attached.
        profile_config: event/period configuration (required unless NONE).
        session_dir: where sample files and code maps go; a fresh temp
            directory when None.
        seed: engine-level determinism root.
        time_scale: scales the workload budget (1.0 = paper-scale run).
        detailed_cache: use the set-associative simulator instead of the
            statistical model (slow; for validation).
        background: include the X-server background process.
        noise: jitter background volume per (workload, mode, period) — the
            "system noise and the uncertainty involved in full system
            measurements" the paper cites for sub-base runtimes.
        record_callgraph: collect cross-layer call arcs at sample time.
        viprof_full_maps / viprof_eager_move_log / viprof_anon_path:
            ablation switches (VIPROF mode only); defaults are the paper's
            design.  ``viprof_anon_path=True`` disables the JIT fast path.
    """

    mode: ProfilerMode = ProfilerMode.NONE
    profile_config: OprofileConfig | None = None
    session_dir: Path | None = None
    seed: int = 7
    time_scale: float = 1.0
    detailed_cache: bool = False
    background: bool = True
    noise: bool = True
    record_callgraph: bool = False
    viprof_full_maps: bool = False
    viprof_eager_move_log: bool = False
    viprof_anon_path: bool = False
    #: sample-file write-buffer watermark passed to the VIProf session
    #: (None = writer default).  Small values force frequent mid-run
    #: spills — the crash-recovery tests rely on that to land faults
    #: while sample data is on disk.
    viprof_write_buffer_bytes: int | None = None
    #: optional factory for the VM's adaptive optimization system (used by
    #: the profile-guided-optimization extension, :mod:`repro.pgo`)
    adaptive_factory: object | None = None
    #: profile only part of the run: (start, stop) as fractions of the
    #: workload budget.  (0.0, 1.0) — the default — is the paper's
    #: methodology ("we start VIProf just prior to benchmark launch");
    #: narrower windows model opcontrol --start/--stop around a region of
    #: interest, the interface an online adaptation loop needs.
    profile_window: tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if self.mode is not ProfilerMode.NONE and self.profile_config is None:
            raise ConfigError(f"mode {self.mode.value} requires a profile_config")
        if self.time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        lo, hi = self.profile_window
        if not (0.0 <= lo < hi <= 1.0):
            raise ConfigError(
                f"profile_window must satisfy 0 <= start < stop <= 1, "
                f"got {self.profile_window}"
            )


def build_agent_image() -> BinaryImage:
    """The VM-agent shared library (mapped only in VIProf runs)."""
    funcs = (
        ("agent_register_heap", 0x100),
        ("agent_log_compile", 0x120),
        ("agent_flag_moves", 0x80),
        ("agent_process_flags", 0xC0),
        ("agent_write_code_map", 0x2C0),
    )
    syms, off = [], 0x1000
    for name, size in funcs:
        syms.append(Symbol(offset=off, size=size, name=name))
        off += size + 16
    return BinaryImage(AGENT_IMAGE_NAME, 0x8000, syms)


def build_xorg_image() -> BinaryImage:
    return BinaryImage(
        "Xorg",
        0x80000,
        [
            Symbol(offset=0x1000, size=0x300, name="Dispatch"),
            Symbol(offset=0x1310, size=0x200, name="WaitForSomething"),
        ],
    )


def build_jikesrvm_bootstrap() -> BinaryImage:
    """The small C program that loads the RVM boot image (paper §3.2)."""
    return BinaryImage(
        "jikesrvm",
        0x8000,
        [
            Symbol(offset=0x1000, size=0x400, name="main"),
            Symbol(offset=0x1410, size=0x200, name="bootThread"),
            Symbol(offset=0x1620, size=0x180, name="sysCall"),
        ],
    )


@dataclass
class RunResult:
    """Everything a caller needs after one engine run."""

    workload_name: str
    mode: ProfilerMode
    config: EngineConfig
    budget_cycles: int
    wall_cycles: int
    workload_cycles: int
    ledger: TruthLedger
    kernel: Kernel
    boot: BootImage
    bench_pid: int
    session_dir: Path | None
    sample_dir: Path | None
    vm_stats: object
    gc_stats: object
    cpu_stats: object
    daemon_stats: object | None = None
    agent_stats: object | None = None
    buffer_lost: int = 0
    viprof_session: ViprofSession | None = None
    callgraph: CrossLayerCallGraph | None = None

    @property
    def seconds(self) -> float:
        """Wall time at the simulated clock rate."""
        return self.wall_cycles / SIM_HZ

    def slowdown_vs(self, base: "RunResult") -> float:
        """Normalized execution time relative to a base (unprofiled) run."""
        if base.wall_cycles <= 0:
            raise ConfigError("base run has no cycles")
        return self.wall_cycles / base.wall_cycles

    # -- report builders -------------------------------------------------

    def oprofile_report(
        self,
        workers: int | str = 1,
        resolve_cache: bool = True,
        columnar: bool = True,
    ):
        """Stock opreport over this run's sample files."""
        from repro.oprofile.opreport import OpReport

        if self.sample_dir is None:
            raise ConfigError("run was not profiled; no sample files")
        return OpReport(
            self.kernel, self.sample_dir, resolve_cache=resolve_cache
        ).generate(workers=workers, columnar=columnar)

    def viprof_report(
        self,
        backward_traversal: bool = True,
        workers: int | str = 1,
        resolve_cache: bool = True,
        columnar: bool = True,
    ) -> "ViprofReportResult":
        """VIProf post-processing (report + resolution statistics).

        ``backward_traversal=False`` runs the resolution ablation (own-epoch
        map only).  ``workers`` shards resolution across processes
        (``"auto"`` sizes the pool from the core count);
        ``resolve_cache=False`` disables PC memoization;
        ``columnar=False`` falls back to the per-sample resolve loop.
        None of them changes a byte of output — they are performance
        knobs."""
        if self.viprof_session is None:
            raise ConfigError("run was not profiled with VIProf")
        post = self.viprof_session.report(
            self.boot.rvm_map,
            backward_traversal=backward_traversal,
            resolve_cache=resolve_cache,
        )
        report = post.generate(workers=workers, columnar=columnar)
        return ViprofReportResult(report=report, post=post)


@dataclass
class ViprofReportResult:
    report: object  # ProfileReport
    post: ViprofReport

    @property
    def jit_stats(self):
        return self.post.jit_stats

    @property
    def stage_stats(self) -> dict[str, object]:
        """Per-stage hit/miss counters of the resolver chain that built
        this report (JSON-able; includes the JIT epoch detail)."""
        return self.post.chain.stats_dict()


class SystemEngine:
    """Assembles one machine and runs one benchmark configuration."""

    def __init__(self, workload: Workload, config: EngineConfig) -> None:
        self.workload = workload
        self.config = config
        self.budget = workload.budget_cycles(config.time_scale)
        self.ledger = TruthLedger()
        self.workload_cycles = 0
        self._profiler_attached = False
        self._build_machine()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_machine(self) -> None:
        cfg = self.config
        wl = self.workload
        self.kernel = Kernel()
        self.cpu = CPU()
        layout = self.kernel.layout

        # --- benchmark process ----------------------------------------
        self.bench = self.kernel.spawn("JikesRVM")
        loader = ProgramLoader(self.bench.address_space, layout)
        loader.load_executable(build_jikesrvm_bootstrap())
        for img in standard_libraries():
            loader.load_library(img)
        if cfg.mode is ProfilerMode.VIPROF:
            loader.load_library(build_agent_image())

        self.boot = build_boot_image()
        boot_vma = loader.map_file_segment(self.boot.image, at=layout.anon_base)
        nursery_at = boot_vma.end + PAGE_SIZE
        nursery_vma = loader.map_anonymous(wl.nursery_bytes, at=nursery_at)
        mature_at = nursery_vma.end + PAGE_SIZE
        mature_vma = loader.map_anonymous(wl.mature_bytes, at=mature_at)
        loader.map_stack()
        self.heap = Heap(
            nursery_base=nursery_vma.start,
            nursery_size=wl.nursery_bytes,
            mature_base=mature_vma.start,
            mature_size=wl.mature_bytes,
        )

        # --- background process (X server) ----------------------------
        self.bg = None
        if cfg.background:
            self.bg = self.kernel.spawn("Xorg")
            bg_loader = ProgramLoader(self.bg.address_space, layout)
            bg_loader.load_executable(build_xorg_image())
            for img in standard_libraries():
                bg_loader.load_library(img)

        # --- profiler stack --------------------------------------------
        self.session_dir: Path | None = None
        self.sample_dir: Path | None = None
        self.daemon: OprofileDaemon | None = None
        self.kmodule: OprofileKernelModule | None = None
        self.viprof: ViprofSession | None = None
        self.daemon_proc = None
        hooks: VmHooks | None = None

        if cfg.mode is not ProfilerMode.NONE:
            assert cfg.profile_config is not None
            self.session_dir = cfg.session_dir or Path(
                tempfile.mkdtemp(prefix=f"viprof-{wl.name}-")
            )
            self.daemon_proc = self.kernel.spawn("oprofiled")
            dloader = ProgramLoader(self.daemon_proc.address_space, layout)
            self.daemon_image = build_daemon_image()
            dloader.load_executable(self.daemon_image)

            if cfg.mode is ProfilerMode.OPROFILE:
                self.kmodule = OprofileKernelModule(cfg.profile_config)
                self.sample_dir = self.session_dir / cfg.profile_config.output_dir_name
                self.daemon = OprofileDaemon(
                    self.kernel, self.kmodule, cfg.profile_config, self.sample_dir
                )
            else:
                self.viprof = ViprofSession(
                    self.kernel, cfg.profile_config, self.session_dir,
                    full_map_rewrite=cfg.viprof_full_maps,
                    eager_move_logging=cfg.viprof_eager_move_log,
                    jit_fast_path=not cfg.viprof_anon_path,
                    write_buffer_bytes=cfg.viprof_write_buffer_bytes,
                )
                self.kmodule = self.viprof.kmodule
                self.daemon = self.viprof.daemon
                self.sample_dir = self.viprof.sample_dir
                hooks = self.viprof.make_agent(
                    vm_task_id=self.bench.pid,
                    epoch_source=lambda: self.machine.epoch,
                )

        # --- the JVM ----------------------------------------------------
        self.machine = JikesVM(
            boot=self.boot,
            boot_base=boot_vma.start,
            heap=self.heap,
            workload=wl,
            native_resolver=self._resolve_native,
            seed=cfg.seed ^ (wl.seed << 8),
            hooks=hooks,
            adaptive=(
                cfg.adaptive_factory() if cfg.adaptive_factory is not None
                else None
            ),
        )

        # --- cache model -------------------------------------------------
        geometry = CacheGeometry.paper_l2()
        if cfg.detailed_cache:
            self._cache = _DetailedCacheAdapter(SetAssociativeCache(geometry))
        else:
            self._cache = StatisticalCacheModel(geometry, seed=cfg.seed)

        # --- scheduler -----------------------------------------------
        self.sched = Scheduler()
        self.bench_task = Task(process=self.bench, priority=10)
        self.sched.add(self.bench_task)
        self.daemon_task = None
        if self.daemon_proc is not None:
            self.daemon_task = Task(process=self.daemon_proc, priority=5)
            self.sched.add(self.daemon_task)
            self.sched.sleep(self.daemon_task, cfg.profile_config.daemon_period)
        self.bg_task = None
        if self.bg is not None:
            # Interactive process: preempts the CPU-bound benchmark when it
            # wakes, runs its short burst, and sleeps again.
            self.bg_task = Task(process=self.bg, priority=8)
            self.sched.add(self.bg_task)
            self.sched.sleep(self.bg_task, BG_PERIOD)

        # --- misc ----------------------------------------------------
        period = (
            cfg.profile_config.primary_period
            if cfg.profile_config is not None
            else 0
        )
        noise_key = f"{wl.name}:{cfg.mode.value}:{period}:{cfg.seed}".encode()
        noise_seed = zlib.crc32(noise_key)
        self._noise_rng = Random(noise_seed)
        self._kmisc_rng = Random(cfg.seed ^ 0xBEEF)
        self._bg_rng = Random(cfg.seed ^ 0xB6)
        self._bg_ws = WorkingSet(
            base=0x2000_0000, size=8 * 1024 * 1024, locality=0.7,
            hot_fraction=0.1, seed=cfg.seed ^ 0xB61,
        )
        self.callgraph = (
            CrossLayerCallGraph() if cfg.record_callgraph else None
        )
        from repro.hardware.tlb import StatisticalTlbModel

        self._tlb = StatisticalTlbModel(seed=cfg.seed)
        self._nmi_truth = TruthLabel(
            Layer.KERNEL, self.kernel.image.name, "oprofile_nmi_handler"
        )

    # ------------------------------------------------------------------

    def _resolve_native(self, image_name: str, symbol: str) -> tuple[int, int]:
        for vma in self.bench.address_space:
            if vma.kind is VmaKind.FILE and vma.image is not None:
                if vma.image.name == image_name:
                    sym = vma.image.find_symbol(symbol)
                    return vma.start + sym.offset - vma.image_offset, sym.size
        raise ConfigError(f"image {image_name!r} not mapped in benchmark process")

    def _daemon_pc(self, symbol: str) -> tuple[int, int]:
        assert self.daemon_proc is not None
        for vma in self.daemon_proc.address_space:
            if vma.kind is VmaKind.FILE and vma.image is not None:
                sym = vma.image.find_symbol(symbol)
                return vma.start + sym.offset, sym.size
        raise ConfigError("daemon process has no executable mapping")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _attach_profiler(self) -> None:
        assert self.kmodule is not None
        if self.config.mode is ProfilerMode.VIPROF:
            assert self.viprof is not None
            self.viprof.start(self.cpu)
        else:
            assert self.daemon is not None
            self.kmodule.setup(self.cpu)
            self.daemon.start()
        self._profiler_attached = True

    def _detach_profiler(self) -> DaemonWork:
        assert self.kmodule is not None
        if self.config.mode is ProfilerMode.VIPROF:
            assert self.viprof is not None
            work = self.viprof.stop()
        else:
            assert self.daemon is not None
            work = self.daemon.stop()
            self.kmodule.shutdown()
        self._profiler_attached = False
        return work

    def run(self) -> RunResult:
        cfg = self.config
        self._profiler_attached = False
        lo, hi = cfg.profile_window
        attach_at = int(lo * self.budget)
        detach_at = int(hi * self.budget)
        if self.kmodule is not None and attach_at <= 0:
            self._attach_profiler()

        vm_iter = self.machine.run()
        next_tick = TICK_PERIOD

        while self.workload_cycles < self.budget:
            if self.kmodule is not None:
                if (
                    not self._profiler_attached
                    and attach_at > 0
                    and self.workload_cycles >= attach_at
                    and self.workload_cycles < detach_at
                ):
                    self._attach_profiler()
                elif (
                    self._profiler_attached
                    and detach_at < self.budget
                    and self.workload_cycles >= detach_at
                ):
                    self._exec_daemon_work(self._detach_profiler())
            task, switch_cost = self.sched.pick(self.cpu.cycle)
            if switch_cost:
                self._exec_kernel("__switch_to", switch_cost, self.bench.pid)
            if task is None:
                wake = self.sched.next_wake()
                idle = max(1, (wake or self.cpu.cycle + 1000) - self.cpu.cycle)
                self.cpu.idle(idle)
                self.ledger.record_idle(idle)
                continue

            if task is self.bench_task:
                slice_end = self.cpu.cycle + TIMESLICE
                while (
                    self.cpu.cycle < slice_end
                    and self.workload_cycles < self.budget
                ):
                    if self.cpu.cycle >= next_tick:
                        self._exec_kernel("timer_interrupt", TIMER_COST, task.pid)
                        next_tick += TICK_PERIOD
                        continue
                    step = next(vm_iter)
                    self._exec_step(step)
                self._exec_kernel_misc(task.pid)
            elif task is self.daemon_task:
                self._run_daemon_wakeup()
            elif task is self.bg_task:
                self._run_background()
            else:  # pragma: no cover - defensive
                raise ConfigError(f"unknown task {task.name}")

        # Drain: VM exit hook (final code-map flush), final daemon pass,
        # profiler teardown (unless a narrow window already detached it).
        for step in self.machine.finish():
            self._exec_step(step)
        buffer_lost = 0
        if self.kmodule is not None:
            buffer_lost = self.kmodule.buffer.lost
            if self._profiler_attached:
                self._exec_daemon_work(self._detach_profiler())

        return RunResult(
            workload_name=self.workload.name,
            mode=cfg.mode,
            config=cfg,
            budget_cycles=self.budget,
            wall_cycles=self.cpu.cycle,
            workload_cycles=self.workload_cycles,
            ledger=self.ledger,
            kernel=self.kernel,
            boot=self.boot,
            bench_pid=self.bench.pid,
            session_dir=self.session_dir,
            sample_dir=self.sample_dir,
            vm_stats=self.machine.stats,
            gc_stats=self.machine.collector.stats,
            cpu_stats=self.cpu.stats,
            daemon_stats=self.daemon.stats if self.daemon else None,
            agent_stats=(
                self.viprof.agent.stats if self.viprof is not None else None
            ),
            buffer_lost=buffer_lost,
            viprof_session=self.viprof,
            callgraph=self.callgraph,
        )

    # ------------------------------------------------------------------

    def _misses_for(self, ws: WorkingSet | None, accesses: int) -> int:
        if ws is None or accesses <= 0:
            return 0
        return self._cache.misses_for(ws, accesses)

    def _counts_for(
        self,
        cycles: int,
        instructions: int,
        accesses: int,
        misses: int,
        itlb_misses: int = 0,
    ) -> EventCounts:
        return EventCounts(
            cycles=cycles,
            instructions=instructions,
            l2_references=accesses,
            l2_misses=misses,
            branches=instructions // 6,
            branch_mispredicts=instructions // 120,
            itlb_misses=itlb_misses,
        )

    def _execute(
        self,
        pc: int,
        code_len: int,
        counts: EventCounts,
        mode: CpuMode,
        task_id: int,
        truth: TruthLabel,
        caller: TruthLabel | None = None,
    ) -> None:
        self.cpu.current_task_id = task_id
        prev_nmi = self.cpu.stats.nmi_handler_cycles
        prev_captured = (
            self.kmodule.buffer.total_captured if self.kmodule is not None else 0
        )
        self.cpu.execute(
            Quantum(pc_start=pc, code_len=code_len, counts=counts, mode=mode)
        )
        self.ledger.record(truth, counts.cycles, counts.l2_misses)
        nmi_delta = self.cpu.stats.nmi_handler_cycles - prev_nmi
        if nmi_delta:
            self.ledger.record(self._nmi_truth, nmi_delta, 0)
        if self.callgraph is not None and self.kmodule is not None:
            new_samples = self.kmodule.buffer.total_captured - prev_captured
            if new_samples:
                callee = LayeredNode(truth.layer, truth.image, truth.symbol)
                caller_node = (
                    LayeredNode(caller.layer, caller.image, caller.symbol)
                    if caller is not None
                    else None
                )
                self.callgraph.record(
                    caller_node, callee,
                    self.config.profile_config.events[0].event_name,
                    count=new_samples,
                )

    def _exec_step(self, step: VmStep) -> None:
        misses = self._misses_for(step.working_set, step.accesses)
        # Code footprint: the hot boot-image paths plus every live
        # compiled body; when it exceeds the ITLB's 256 KB reach, page
        # touches miss.
        footprint = _BOOT_HOT_CODE_BYTES + self.machine.stats.live_code_bytes
        itlb = self._tlb.misses_for_step(step.code_len, footprint)
        counts = self._counts_for(
            step.cycles, step.instructions, step.accesses, misses,
            itlb_misses=itlb,
        )
        self._execute(
            pc=step.pc,
            code_len=step.code_len,
            counts=counts,
            mode=CpuMode.USER,
            task_id=self.bench.pid,
            truth=step.truth,
            caller=step.caller,
        )
        if step.kind is not StepKind.AGENT:
            self.workload_cycles += step.cycles

    def _exec_kernel(self, symbol: str, cycles: int, task_id: int) -> None:
        pc = self.kernel.kernel_pc(symbol)
        sym = self.kernel.image.find_symbol(symbol)
        counts = self._counts_for(cycles, cycles // 2, cycles // 10, 0)
        truth = TruthLabel(Layer.KERNEL, self.kernel.image.name, symbol)
        self._execute(
            pc=pc, code_len=sym.size, counts=counts, mode=CpuMode.KERNEL,
            task_id=task_id, truth=truth,
        )

    def _exec_kernel_misc(self, task_id: int) -> None:
        """Per-slice syscall/page-fault service on behalf of the benchmark."""
        act = self._kmisc_rng.choice(self.kernel.standard_activities())
        jitter = self._kmisc_rng.randint(*KERNEL_MISC_COST_RANGE)
        self._exec_kernel(act.symbol, max(60, act.cycles + jitter - 600), task_id)

    def _run_daemon_wakeup(self) -> None:
        assert self.daemon is not None and self.daemon_task is not None
        if self._profiler_attached:
            work = self.daemon.wakeup()
            self._exec_daemon_work(work)
        assert self.config.profile_config is not None
        self.sched.sleep(
            self.daemon_task,
            self.cpu.cycle + self.config.profile_config.daemon_period,
        )

    def _exec_daemon_work(self, work: DaemonWork) -> None:
        if self.daemon_proc is None:
            return
        for symbol, cycles in work.by_symbol.items():
            pc, size = self._daemon_pc(symbol)
            counts = self._counts_for(cycles, int(cycles / 1.4), cycles // 6, 0)
            truth = TruthLabel(Layer.DAEMON, self.daemon_image.name, symbol)
            self._execute(
                pc=pc, code_len=size, counts=counts, mode=CpuMode.USER,
                task_id=self.daemon_proc.pid, truth=truth,
            )

    def _run_background(self) -> None:
        assert self.bg is not None and self.bg_task is not None
        burst = BG_BURST
        if self.config.noise:
            burst = int(BG_BURST * self._noise_rng.uniform(0.3, 1.7))
        choice = self._bg_rng.choices(
            ["libxul", "fb_copy", "fb_composite", "dispatch"],
            weights=[3.0, 1.2, 1.0, 1.6],
        )[0]
        if choice == "libxul":
            vma = next(
                v for v in self.bg.address_space
                if v.image is not None and v.image.name.startswith("libxul")
            )
            off = self._bg_rng.randrange(0x1000, vma.size - 0x1000, 4)
            pc, size, image, symbol = vma.start + off, 0x200, vma.image.name, NO_SYMBOLS
        else:
            name = {
                "fb_copy": ("libfb.so", "fbCopyAreammx"),
                "fb_composite": ("libfb.so", "fbCompositeSolidMask_nx8x8888mmx"),
                "dispatch": ("Xorg", "Dispatch"),
            }[choice]
            image, symbol = name
            pc, size = self._bg_pc(image, symbol)
        misses = self._misses_for(self._bg_ws, burst // 3)
        counts = self._counts_for(burst, int(burst / 1.3), burst // 3, misses)
        truth = TruthLabel(Layer.OTHER, image, symbol)
        self._execute(
            pc=pc, code_len=size, counts=counts, mode=CpuMode.USER,
            task_id=self.bg.pid, truth=truth,
        )
        self.sched.sleep(self.bg_task, self.cpu.cycle + BG_PERIOD)

    def _bg_pc(self, image_name: str, symbol: str) -> tuple[int, int]:
        assert self.bg is not None
        for vma in self.bg.address_space:
            if vma.kind is VmaKind.FILE and vma.image is not None:
                if vma.image.name == image_name:
                    sym = vma.image.find_symbol(symbol)
                    return vma.start + sym.offset, sym.size
        raise ConfigError(f"image {image_name!r} not mapped in background process")


class _DetailedCacheAdapter:
    """Adapts the set-associative simulator to the statistical model's
    ``misses_for`` interface by generating a real address stream."""

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache

    def misses_for(self, ws: WorkingSet, n_accesses: int) -> int:
        stream = ws.stream(n_accesses, line=self.cache.geometry.line_bytes)
        _, misses = self.cache.access_stream(stream)
        return misses
