"""Profile-accuracy scoring against the ground-truth ledger.

A sampling profiler can only see cycles that tick while sampling is live;
NMI-handler cycles run with overflows masked and are invisible.
:func:`sampleable_share` therefore normalizes true cycle counts by the
*sampleable* total, which is the correct oracle for a sampled share — see
``tests/integration/test_accuracy.py`` for the derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.profiling.model import Layer

__all__ = [
    "sampleable_share",
    "AccuracyScore",
    "score_viprof_accuracy",
    "score_oprofile_blindness",
]


def sampleable_share(run, cycles: int) -> float:
    """True share of ``cycles`` among the cycles a sampler can observe."""
    total = run.ledger.total_cycles - run.cpu_stats.nmi_handler_cycles
    return cycles / total if total else 0.0


@dataclass(frozen=True)
class AccuracyScore:
    """How well a VIProf profile matches ground truth.

    Attributes:
        jit_samples: JIT samples taken.
        resolution_rate: fraction attributed to a concrete method.
        resolved_in_own_epoch / resolved_via_backward: where the code-map
            search succeeded.
        mean_share_error: mean |sampled - true| share over hot JIT methods.
        max_share_error: worst hot-method share error.
        hot_methods_checked: number of methods entering the error stats.
    """

    jit_samples: int
    resolution_rate: float
    resolved_in_own_epoch: int
    resolved_via_backward: int
    mean_share_error: float
    max_share_error: float
    hot_methods_checked: int


def score_viprof_accuracy(
    run, hot_threshold: float = 0.01, event: str = "GLOBAL_POWER_EVENTS"
) -> AccuracyScore:
    """Score a VIProf run's profile against its own ground truth.

    Args:
        run: a :class:`~repro.system.engine.RunResult` from a VIProf run.
        hot_threshold: minimum true cycle share for a method to enter the
            share-error statistics.
        event: event whose sample shares are scored.
    """
    vr = run.viprof_report()
    stats = vr.jit_stats
    truth = run.ledger

    errors: list[float] = []
    for (image, symbol), entry in truth.by_symbol.items():
        if image != JIT_APP_IMAGE_LABEL:
            continue
        true_share = sampleable_share(run, entry.cycles)
        if true_share < hot_threshold:
            continue
        row = vr.report.row_for(image, symbol)
        sampled = (
            vr.report.percent(row, event) / 100.0 if row is not None else 0.0
        )
        errors.append(abs(sampled - true_share))

    return AccuracyScore(
        jit_samples=stats.jit_samples,
        resolution_rate=stats.resolution_rate,
        resolved_in_own_epoch=stats.resolved_in_own_epoch,
        resolved_via_backward=stats.resolved_in_earlier_epoch,
        mean_share_error=sum(errors) / len(errors) if errors else 0.0,
        max_share_error=max(errors) if errors else 0.0,
        hot_methods_checked=len(errors),
    )


def score_oprofile_blindness(
    run, event: str = "GLOBAL_POWER_EVENTS"
) -> tuple[float, float]:
    """For a stock-OProfile run, return ``(blind_share, true_vm_jit_share)``:
    the fraction of samples the report leaves unattributed (anonymous
    ranges + unsymbolized boot image) vs the true VM+JIT cycle share."""
    report = run.oprofile_report()
    blind = sum(
        report.percent(r, event) / 100.0
        for r in report.rows
        if r.image.startswith("anon (range:") or r.image == "RVM.code.image"
    )
    true = sampleable_share(
        run,
        run.ledger.layer_cycles(Layer.APP_JIT)
        + run.ledger.layer_cycles(Layer.VM),
    )
    return blind, true
