"""Analysis utilities over run results.

* :mod:`repro.analysis.accuracy` — score a sampled profile against the
  simulator's ground-truth ledger (resolution rates, per-symbol share
  error, blind-spot share of a stock-OProfile run);
* :mod:`repro.analysis.overhead` — decompose a profiled run's overhead
  into its mechanical sources (NMI handler, daemon paths, VM agent);
* :mod:`repro.analysis.timeline` — windowed sample timelines and phase-
  transition detection (the signal the VIVA adaptation loop consumes).
"""

from repro.analysis.accuracy import (
    AccuracyScore,
    sampleable_share,
    score_oprofile_blindness,
    score_viprof_accuracy,
)
from repro.analysis.overhead import OverheadBreakdown, decompose_overhead
from repro.analysis.timeline import Timeline, TimelineWindow, build_timeline

__all__ = [
    "AccuracyScore",
    "sampleable_share",
    "score_viprof_accuracy",
    "score_oprofile_blindness",
    "OverheadBreakdown",
    "decompose_overhead",
    "Timeline",
    "TimelineWindow",
    "build_timeline",
]
