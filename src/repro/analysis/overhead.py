"""Overhead decomposition.

Figure 2 reports one number per run — the normalized slowdown.  The
simulator knows exactly where the extra cycles went; this module breaks a
profiled run's overhead into the paper's mechanical sources:

* NMI delivery + sample capture (frequency-proportional; identical for
  both profilers);
* daemon work, split into the classification/logging paths;
* VM-agent work (VIProf only): compile logging, move flags, map writes;
* second-order effects (extra context switches, scheduler work), reported
  as the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.model import Layer

__all__ = ["OverheadBreakdown", "decompose_overhead"]


@dataclass(frozen=True)
class OverheadBreakdown:
    """Cycle-level decomposition of one profiled run vs its base run.

    All ``*_cycles`` fields are absolute simulated cycles; ``*_pct`` are
    percentages of the base run's wall cycles (so they sum to roughly the
    slowdown minus one, up to the residual).
    """

    benchmark: str
    profiler: str
    period: int
    slowdown: float
    nmi_cycles: int
    daemon_cycles: int
    agent_cycles: int
    residual_cycles: int
    base_wall_cycles: int

    @property
    def nmi_pct(self) -> float:
        return 100.0 * self.nmi_cycles / self.base_wall_cycles

    @property
    def daemon_pct(self) -> float:
        return 100.0 * self.daemon_cycles / self.base_wall_cycles

    @property
    def agent_pct(self) -> float:
        return 100.0 * self.agent_cycles / self.base_wall_cycles

    @property
    def residual_pct(self) -> float:
        return 100.0 * self.residual_cycles / self.base_wall_cycles

    def format_row(self) -> str:
        return (
            f"{self.benchmark:<11}{self.profiler:<10}{self.period:>8} "
            f"{100 * (self.slowdown - 1):>7.2f}% "
            f"nmi {self.nmi_pct:>5.2f}%  daemon {self.daemon_pct:>5.2f}%  "
            f"agent {self.agent_pct:>5.2f}%  other {self.residual_pct:>5.2f}%"
        )


def decompose_overhead(base_run, profiled_run) -> OverheadBreakdown:
    """Attribute a profiled run's extra wall cycles to their sources.

    Args:
        base_run: unprofiled :class:`~repro.system.engine.RunResult` of the
            same workload/seed/scale.
        profiled_run: the profiled run to decompose.
    """
    extra = profiled_run.wall_cycles - base_run.wall_cycles
    nmi = profiled_run.cpu_stats.nmi_handler_cycles
    daemon = profiled_run.ledger.layer_cycles(Layer.DAEMON)
    agent = profiled_run.ledger.layer_cycles(Layer.AGENT)
    residual = extra - nmi - daemon - agent
    cfg = profiled_run.config
    return OverheadBreakdown(
        benchmark=profiled_run.workload_name,
        profiler=profiled_run.mode.value,
        period=(
            cfg.profile_config.primary_period if cfg.profile_config else 0
        ),
        slowdown=profiled_run.wall_cycles / base_run.wall_cycles,
        nmi_cycles=nmi,
        daemon_cycles=daemon,
        agent_cycles=agent,
        residual_cycles=residual,
        base_wall_cycles=base_run.wall_cycles,
    )
