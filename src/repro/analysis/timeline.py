"""Phase-behaviour timelines from sample streams.

The VIVA project VIProf serves (paper §1) wants to re-optimize the stack
as "the dynamically changing characteristics of program behavior" shift —
which presumes the profile can *show* the shifts.  Samples carry capture
timestamps, so slicing them into windows yields a per-window profile; a
phase transition is a window whose profile diverges from its
predecessor's.

Works on any resolved sample stream (stock OProfile or VIProf), but only
VIProf timelines can tell *which Java method* a new phase is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigError
from repro.profiling.model import ResolvedSample

__all__ = ["TimelineWindow", "Timeline", "build_timeline"]


@dataclass
class TimelineWindow:
    """One time slice of the profile."""

    index: int
    start_cycle: int
    end_cycle: int
    counts: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def share(self, key: tuple[str, str]) -> float:
        return self.counts.get(key, 0) / self.total if self.total else 0.0

    def dominant(self) -> tuple[str, str] | None:
        if not self.counts:
            return None
        return max(self.counts, key=lambda k: (self.counts[k], k))


@dataclass
class Timeline:
    """The full windowed profile plus phase-transition detection."""

    window_cycles: int
    windows: list[TimelineWindow]

    def transitions(self, min_divergence: float = 0.4) -> list[int]:
        """Window indices where behaviour shifted.

        Divergence between consecutive windows is half the L1 distance of
        their share vectors (total-variation distance, in [0, 1]); a
        transition is a window whose divergence from its predecessor is at
        least ``min_divergence``.
        """
        if not 0.0 < min_divergence <= 1.0:
            raise ConfigError("min_divergence must be in (0, 1]")
        out = []
        for prev, cur in zip(self.windows, self.windows[1:]):
            keys = set(prev.counts) | set(cur.counts)
            tv = 0.5 * sum(
                abs(prev.share(k) - cur.share(k)) for k in keys
            )
            if tv >= min_divergence:
                out.append(cur.index)
        return out

    def dominant_sequence(self) -> list[tuple[str, str] | None]:
        return [w.dominant() for w in self.windows]

    def format_table(self, top: int = 1) -> str:
        lines = [f"{'window':>7} {'cycles':>22}  dominant symbol(s)"]
        for w in self.windows:
            ranked = sorted(
                w.counts.items(), key=lambda kv: (-kv[1], kv[0])
            )[:top]
            names = ", ".join(
                f"{sym} ({100 * n / max(1, w.total):.0f}%)"
                for (_, sym), n in ranked
            )
            lines.append(
                f"{w.index:>7} {w.start_cycle:>10}-{w.end_cycle:<11} {names}"
            )
        return "\n".join(lines)


def build_timeline(
    samples: Iterable[ResolvedSample],
    window_cycles: int,
    event: str = "GLOBAL_POWER_EVENTS",
) -> Timeline:
    """Slice resolved samples into fixed windows by capture cycle.

    ``samples`` may be any iterable, including the pipeline's streaming
    resolver output; it is consumed once.
    """
    if window_cycles <= 0:
        raise ConfigError("window_cycles must be positive")
    relevant = [s for s in samples if s.raw.event_name == event]
    if not relevant:
        return Timeline(window_cycles=window_cycles, windows=[])
    last = max(s.raw.cycle for s in relevant)
    n_windows = last // window_cycles + 1
    windows = [
        TimelineWindow(
            index=i,
            start_cycle=i * window_cycles,
            end_cycle=(i + 1) * window_cycles,
        )
        for i in range(n_windows)
    ]
    for s in relevant:
        w = windows[s.raw.cycle // window_cycles]
        w.counts[s.key] = w.counts.get(s.key, 0) + 1
    return Timeline(window_cycles=window_cycles, windows=windows)
