"""Package version, importable without triggering subpackage imports."""

__version__ = "1.0.0"
