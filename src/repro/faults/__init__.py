"""Deterministic fault injection for the collection/resolution stacks.

See :mod:`repro.faults.injector` for the model and
``docs/robustness.md`` for the registry of failure points and the
recovery guarantees tested against them.
"""

from repro.faults.injector import (
    ALL_FAULT_POINT_NAMES,
    ALL_GUEST_FAULT_POINT_NAMES,
    AGENT_MAP_EMIT,
    ARENA_WRITE,
    CODEMAP_WRITE,
    DAEMON_DRAIN,
    FAULT_POINTS,
    GUEST_FAULT_POINTS,
    GUEST_KILL,
    GUEST_MAP_TEAR,
    SESSION_TEARDOWN,
    WRITER_SPILL,
    FaultInjector,
    FaultPlan,
    FaultPoint,
    arm,
    armed,
    current,
    fire,
    point_named,
)

__all__ = [
    "ALL_FAULT_POINT_NAMES",
    "ALL_GUEST_FAULT_POINT_NAMES",
    "AGENT_MAP_EMIT",
    "ARENA_WRITE",
    "CODEMAP_WRITE",
    "DAEMON_DRAIN",
    "FAULT_POINTS",
    "GUEST_FAULT_POINTS",
    "GUEST_KILL",
    "GUEST_MAP_TEAR",
    "SESSION_TEARDOWN",
    "WRITER_SPILL",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "arm",
    "armed",
    "current",
    "fire",
    "point_named",
]
