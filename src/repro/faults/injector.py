"""Deterministic, seedable fault injection for crash-recovery testing.

The collection and resolution stacks are threaded with *named failure
points* — places where a real deployment can die mid-write (a daemon
killed between drain chunks, a torn buffered spill, a half-written epoch
map).  Each site calls :func:`fire` with its point name and an optional
*effect*: a callable that, given the plan's seeded RNG, writes exactly
the partial state a crash there would leave on disk.

Nothing happens unless a test has *armed* a :class:`FaultPlan`:

* **Disarmed** (the default, always, in production): :func:`armed`
  is False and instrumented sites skip the :func:`fire` call entirely —
  one module-global load and a None check, so golden byte-parity and the
  ``BENCH_*`` benchmarks are untouched.
* **Armed**: every ``fire`` increments the point's hit counter; when the
  plan's point reaches its target hit the effect runs (fed a
  ``random.Random(seed)`` so partial damage is reproducible) and
  :class:`~repro.errors.InjectedFault` is raised, which the harness
  treats as the process dying on the spot.
* **Observe mode** (``arm()`` with no plan): hits are counted but
  nothing fires — the crash-matrix test first *learns* how often each
  point is reached in a run, then replays the run crashing at the
  first / middle / last hit.

Determinism is the whole point: the simulated system is deterministic
under a fixed workload + seed, and the injector adds no entropy beyond
the plan's own seed, so a crashed run is byte-identical to its fault-free
twin right up to the injected death.  That is what lets the recovery
tests assert salvaged artifacts are *prefixes* of the undamaged run's.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import InjectedFault, ProfilerError

__all__ = [
    "FaultPoint",
    "FaultPlan",
    "FaultInjector",
    "FAULT_POINTS",
    "ALL_FAULT_POINT_NAMES",
    "GUEST_FAULT_POINTS",
    "ALL_GUEST_FAULT_POINT_NAMES",
    "WRITER_SPILL",
    "DAEMON_DRAIN",
    "CODEMAP_WRITE",
    "AGENT_MAP_EMIT",
    "SESSION_TEARDOWN",
    "ARENA_WRITE",
    "GUEST_KILL",
    "GUEST_MAP_TEAR",
    "arm",
    "armed",
    "fire",
    "current",
]

#: Effect signature: given the plan's seeded RNG, write the partial
#: on-disk damage the crash leaves behind.  Runs at most once per plan.
Effect = Callable[[random.Random], None]


@dataclass(frozen=True, slots=True)
class FaultPoint:
    """One registered failure point: a stable name, the code site, and
    what dying there damages."""

    name: str
    site: str
    description: str


WRITER_SPILL = "writer.spill"
DAEMON_DRAIN = "daemon.drain-chunk"
CODEMAP_WRITE = "codemap.write"
AGENT_MAP_EMIT = "agent.map-emit"
SESSION_TEARDOWN = "session.teardown"
ARENA_WRITE = "arena.write"

#: Every failure point threaded through the stack.  The crash-matrix test
#: parametrizes over this tuple, so adding a point here automatically
#: extends recovery coverage.
FAULT_POINTS: tuple[FaultPoint, ...] = (
    FaultPoint(
        WRITER_SPILL,
        "repro.profiling.record_codec.RecordFileWriter._spill",
        "die mid-spill of a buffered sample-file writer: a prefix of the "
        "pending buffer reaches the OS, cut inside a record (torn file)",
    ),
    FaultPoint(
        DAEMON_DRAIN,
        "repro.oprofile.daemon.OprofileDaemon.wakeup",
        "die between drain chunks: records already handed to writers but "
        "still buffered are lost; sample files keep a record-aligned "
        "prefix",
    ),
    FaultPoint(
        CODEMAP_WRITE,
        "repro.viprof.codemap.CodeMapWriter.write",
        "die mid-write of an epoch map: the map file holds a prefix of "
        "the text cut inside a record line (malformed, quarantinable)",
    ),
    FaultPoint(
        AGENT_MAP_EMIT,
        "repro.viprof.vm_agent.ViprofVmAgent._write_map",
        "die before the agent emits the closing epoch's map: the epoch's "
        "compiles and move flags are lost entirely (missing map)",
    ),
    FaultPoint(
        SESSION_TEARDOWN,
        "repro.viprof.session.ViprofSession.stop",
        "die at session stop before the final drain: undrained kernel "
        "buffer and writer-buffered records are lost; no final flush",
    ),
    FaultPoint(
        ARENA_WRITE,
        "repro.viprof.arena.build_arena",
        "die mid-write of the compiled code-map arena: the arena file "
        "holds a torn byte prefix (bad checksum, detectable; readers "
        "fall back to the text maps)",
    ),
)

GUEST_KILL = "guest.kill"
GUEST_MAP_TEAR = "guest.map-tear"

#: Guest-scoped failure points: these fire inside one guest stack of the
#: multi-stack engine and kill *that guest only* — the hypervisor keeps
#: time-slicing the sibling domains, exactly as a real guest crash leaves
#: the host (and XenoProf's hypervisor-side buffer) running.  They live
#: in their own registry because the single-stack crash matrix asserts
#: every entry of :data:`FAULT_POINTS` is reachable in a single-stack
#: run, which a guest-lifecycle point never is; the guest-kill isolation
#: matrix (``tests/integration/test_guest_isolation.py``) parametrizes
#: over this tuple instead.
GUEST_FAULT_POINTS: tuple[FaultPoint, ...] = (
    FaultPoint(
        GUEST_KILL,
        "repro.xen.engine.MultiStackEngine.run",
        "kill a guest mid-epoch between VM steps: its current epoch's "
        "code map is never emitted (missing map); sibling domains and "
        "the hypervisor-side sample buffer are untouched",
    ),
    FaultPoint(
        GUEST_MAP_TEAR,
        "repro.xen.engine.MultiStackEngine._exec_guest_step",
        "kill a guest during agent work and tear its newest epoch map: "
        "the map file keeps a prefix cut inside a record line "
        "(malformed, quarantinable); sibling domains are untouched",
    ),
)

ALL_FAULT_POINT_NAMES: tuple[str, ...] = tuple(p.name for p in FAULT_POINTS)
ALL_GUEST_FAULT_POINT_NAMES: tuple[str, ...] = tuple(
    p.name for p in GUEST_FAULT_POINTS
)
_BY_NAME: dict[str, FaultPoint] = {
    p.name: p for p in (*FAULT_POINTS, *GUEST_FAULT_POINTS)
}


def point_named(name: str) -> FaultPoint:
    """Look a registered fault point up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ProfilerError(
            f"unknown fault point {name!r} "
            f"(registered: {', '.join(_BY_NAME)})"
        ) from None


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Crash at the ``hit``-th (1-based) firing of ``point``.

    ``seed`` feeds the RNG handed to the point's damage effect, so the
    exact byte cut of the partial write is reproducible.
    """

    point: str
    hit: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        point_named(self.point)
        if self.hit < 1:
            raise ProfilerError(
                f"fault plan hit must be >= 1, got {self.hit}"
            )


@dataclass
class FaultInjector:
    """Counts fault-point hits and fires a plan's crash at its target.

    ``plan=None`` is observe mode: counting only, nothing fires.
    """

    plan: FaultPlan | None = None
    hits: dict[str, int] = field(default_factory=dict)
    fired: InjectedFault | None = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.plan.seed if self.plan else 0)

    def hit(self, point: str, effect: Effect | None = None) -> None:
        """Record one arrival at ``point``; crash if the plan says so."""
        point_named(point)
        n = self.hits.get(point, 0) + 1
        self.hits[point] = n
        plan = self.plan
        if (
            plan is None
            or self.fired is not None
            or plan.point != point
            or n != plan.hit
        ):
            return
        fault = InjectedFault(point=point, hit=n)
        self.fired = fault
        if effect is not None:
            effect(self._rng)
        raise fault


#: The armed injector, if any.  Module-global so instrumented sites pay
#: one load + None check when disarmed.
_ACTIVE: FaultInjector | None = None


def armed() -> bool:
    """True when an injector (plan or observe mode) is armed."""
    return _ACTIVE is not None


def current() -> FaultInjector | None:
    """The armed injector (for tests inspecting hit counts)."""
    return _ACTIVE


def fire(point: str, effect: Effect | None = None) -> None:
    """Announce arrival at a named fault point.

    No-op when disarmed.  Instrumented sites guard the call with
    :func:`armed` so the disarmed fast path never even builds the effect
    closure.
    """
    inj = _ACTIVE
    if inj is not None:
        inj.hit(point, effect)


@contextmanager
def arm(plan: FaultPlan | None = None) -> Iterator[FaultInjector]:
    """Arm an injector for the duration of a ``with`` block.

    ``plan=None`` arms observe mode (hit counting only).  Nesting is an
    error: one crash per simulated process.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ProfilerError("fault injector already armed")
    inj = FaultInjector(plan=plan)
    _ACTIVE = inj
    try:
        yield inj
    finally:
        _ACTIVE = None
