"""The two-pass profile-guided optimization experiment.

Pass 1 profiles a benchmark with VIProf; the hot-method set is extracted
from the resulting vertically integrated profile (only possible *because*
VIProf resolves JIT samples to methods).  Pass 2 re-runs the benchmark with
the guided adaptive system.  Both passes execute the same workload-cycle
budget, so the guided run's win shows up as *throughput*: more application
invocations completed within the budget, because hot methods run at high
optimization from their first call instead of warming up at baseline
quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.pgo.guided import PgoAdaptiveSystem, hot_method_names
from repro.jvm.compiler import CompilerTier
from repro.system.api import base_run, viprof_profile
from repro.workloads.base import Workload

__all__ = ["PgoResult", "run_pgo_experiment"]


@dataclass(frozen=True)
class PgoResult:
    """Outcome of the two-pass experiment.

    Attributes:
        hot_methods: size of the extracted hot set.
        pgo_compiles: hot methods compiled directly at the high tier.
        baseline_invocations / guided_invocations: application throughput
            in each pass (same workload-cycle budget).
        throughput_gain: guided / baseline invocation ratio.
        baseline_compilations / guided_compilations: total compile events
            (the guided run skips intermediate ladder steps for hot code).
    """

    benchmark: str
    hot_methods: int
    pgo_compiles: int
    baseline_invocations: int
    guided_invocations: int
    baseline_compilations: int
    guided_compilations: int

    @property
    def throughput_gain(self) -> float:
        if not self.baseline_invocations:
            return 0.0
        return self.guided_invocations / self.baseline_invocations

    def format_summary(self) -> str:
        return (
            f"{self.benchmark}: {self.hot_methods} hot methods, "
            f"{self.pgo_compiles} direct-opt compiles; throughput "
            f"{self.baseline_invocations} -> {self.guided_invocations} "
            f"invocations ({100 * (self.throughput_gain - 1):+.1f}%)"
        )


def run_pgo_experiment(
    workload_factory,
    time_scale: float = 0.5,
    period: int = 45_000,
    min_share: float = 0.005,
    direct_tier: CompilerTier = CompilerTier.OPT1,
    seed: int = 7,
) -> PgoResult:
    """Run the profile pass then the guided pass.

    Args:
        workload_factory: zero-argument callable returning a fresh
            :class:`Workload` (fresh instances keep the passes independent).
        time_scale / period / seed: run parameters shared by both passes.
        min_share: hot-method threshold over the profile.
        direct_tier: tier hot methods are compiled at immediately.
    """
    wl_profile = workload_factory()
    if not isinstance(wl_profile, Workload):
        raise ConfigError("workload_factory must return a Workload")

    # Pass 1: profile.
    prof_run = viprof_profile(
        wl_profile, period=period, time_scale=time_scale, seed=seed,
        noise=False,
    )
    report = prof_run.viprof_report().report
    hot = hot_method_names(report, min_share=min_share)

    # Baseline pass: normal adaptive system, no profiler attached.
    baseline = base_run(
        workload_factory(), time_scale=time_scale, seed=seed, noise=False
    )

    # Guided pass: same budget, hot set compiled directly at direct_tier.
    from repro.system.engine import EngineConfig, ProfilerMode, SystemEngine

    guided_systems: list[PgoAdaptiveSystem] = []

    def factory() -> PgoAdaptiveSystem:
        s = PgoAdaptiveSystem(
            hot_names=frozenset(hot), direct_tier=direct_tier
        )
        guided_systems.append(s)
        return s

    cfg = EngineConfig(
        mode=ProfilerMode.NONE, seed=seed, time_scale=time_scale,
        noise=False, adaptive_factory=factory,
    )
    guided = SystemEngine(workload_factory(), cfg).run()

    return PgoResult(
        benchmark=wl_profile.name,
        hot_methods=len(hot),
        pgo_compiles=guided_systems[0].pgo_compiles if guided_systems else 0,
        baseline_invocations=baseline.vm_stats.invocations,
        guided_invocations=guided.vm_stats.invocations,
        baseline_compilations=baseline.vm_stats.compilations,
        guided_compilations=guided.vm_stats.compilations,
    )
