"""Future-work extension: profile-guided cross-layer optimization.

The paper's §5: "we plan to investigate profile-guided optimizations across
multiple layers of the execution stack" — VIProf profiles feeding back into
the running system.  This package closes that loop for the VM layer:

* :mod:`repro.pgo.guided` — extract the hot-method set from a VIProf
  profile and build a :class:`PgoAdaptiveSystem` that compiles those
  methods directly at a high optimization tier on first invocation,
  skipping the warm-up ladder;
* :mod:`repro.pgo.experiment` — the two-pass experiment: a profiling run,
  then a guided run, comparing application throughput (invocations per
  workload-cycle budget) and warm-up behaviour.
"""

from repro.pgo.guided import PgoAdaptiveSystem, hot_method_names
from repro.pgo.experiment import PgoResult, run_pgo_experiment

__all__ = [
    "PgoAdaptiveSystem",
    "hot_method_names",
    "PgoResult",
    "run_pgo_experiment",
]
