"""Profile-guided compilation decisions.

The adaptive system's ladder exists because the VM cannot know which
methods will be hot.  A VIProf profile from a previous run *does* know.
:class:`PgoAdaptiveSystem` consumes the hot set and compiles those methods
straight at a high tier on their first invocation — paying the opt-compile
cost once, up front, instead of running them at baseline quality through
the whole warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.jvm.adaptive import AdaptiveSystem
from repro.jvm.compiler import CompilerTier
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.profiling.report import ProfileReport

__all__ = ["hot_method_names", "PgoAdaptiveSystem"]


def hot_method_names(
    report: ProfileReport,
    min_share: float = 0.005,
    event: str = "GLOBAL_POWER_EVENTS",
) -> set[str]:
    """Extract the hot JIT-method set from a VIProf profile.

    Args:
        report: a VIProf :class:`ProfileReport` (JIT rows carry the
            ``JIT.App`` image label).
        min_share: minimum fraction of the event's samples for a method to
            count as hot.
        event: event whose shares drive the decision.
    """
    if not 0.0 < min_share < 1.0:
        raise ConfigError("min_share must be in (0, 1)")
    hot: set[str] = set()
    for row in report.rows:
        if row.image != JIT_APP_IMAGE_LABEL:
            continue
        if report.percent(row, event) / 100.0 >= min_share:
            hot.add(row.symbol)
    return hot


@dataclass
class PgoAdaptiveSystem(AdaptiveSystem):
    """Adaptive system seeded with a hot-method set.

    A hot-listed method's *first* compilation goes straight to
    ``direct_tier``; everything else follows the normal ladder.  Methods
    the profile missed can still climb the ladder, so a phase the profiling
    run never saw is merely un-optimized, never broken.
    """

    hot_names: frozenset[str] = frozenset()
    direct_tier: CompilerTier = CompilerTier.OPT1
    _method_names: dict[int, str] = field(default_factory=dict)
    pgo_compiles: int = 0

    def bind_method_names(self, methods) -> None:
        """Tell the system each index's method name (the engine's adaptive
        factory cannot know the workload, so the machine binds lazily)."""
        self._method_names = {i: m.full_name for i, m in enumerate(methods)}

    def record_invocations(self, method_index: int, count: int = 1):
        first_time = self.current_tier(method_index) is None
        decision = super().record_invocations(method_index, count)
        if (
            first_time
            and decision is CompilerTier.BASELINE
            and self._method_names.get(method_index) in self.hot_names
        ):
            self.pgo_compiles += 1
            return self.direct_tier
        return decision
