"""Future-work extension: Xen-layer profiling (XenoProf integration).

The paper's §5: "we plan to integrate Xen virtualization extensions into
VIProf to integrate profiling of the Xen layer (via XenoProf) as well as
multiple concurrently executing software stacks."

This package builds that system on the same substrate:

* :mod:`repro.xen.hypervisor` — a Xen-like hypervisor: its own symbol
  table above the guest kernels, domains, a credit-style VCPU scheduler,
  and VMEXIT/hypercall cost accounting;
* :mod:`repro.xen.xenoprof` — XenoProf-style sampling: the counter
  overflow handler runs *in the hypervisor*, tags every sample with the
  currently-running domain, and post-processing resolves each sample
  against that domain's own software stack (through the domain's VIProf
  code maps and boot-image map) or against the hypervisor's symbols;
* :mod:`repro.xen.engine` — a multi-stack engine running several isolated
  guest stacks (each a kernel + Jikes-RVM-like VM + workload) time-sliced
  over one physical CPU, the execution model the VIVA project targets;
* :mod:`repro.xen.fleet` — many-guest fleet sessions: the per-domain
  session layout, fresh per-domain/fleet resolver chains (with
  quarantine + degraded modes), and per-domain salvage.
"""

from repro.xen.hypervisor import Domain, Hypervisor, VcpuScheduler, XEN_BASE
from repro.xen.xenoprof import XenoProfBuffer, XenoProfReport, XenoSample
from repro.xen.engine import GuestSpec, MultiStackEngine, MultiStackResult
from repro.xen.fleet import FLEET_SHARD_PATTERN, FleetSession, run_fleet

__all__ = [
    "Domain",
    "Hypervisor",
    "VcpuScheduler",
    "XEN_BASE",
    "XenoSample",
    "XenoProfBuffer",
    "XenoProfReport",
    "GuestSpec",
    "MultiStackEngine",
    "MultiStackResult",
    "FLEET_SHARD_PATTERN",
    "FleetSession",
    "run_fleet",
]
