"""XenoProf-style sampling and cross-stack post-processing.

XenoProf moves the counter-overflow handler into the hypervisor: Xen owns
the hardware counters, tags each sample with the *currently running
domain*, and exposes per-domain sample streams.  Our reproduction keeps the
same structure:

* :class:`XenoSample` — a raw sample plus its domain id;
* :class:`XenoProfBuffer` — the hypervisor-side sample store with
  per-domain accounting (and a bounded capacity, like the real shared
  buffer pages);
* :class:`XenoProfReport` — resolution across *every* layer of *every*
  stack: hypervisor symbols, each guest's kernel, its processes, its boot
  image (via RVM.map), and its JIT code (via that domain's VIProf epoch
  code maps).  This is the paper's "multiple concurrently executing
  software stacks" goal realized end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfilerError
from repro.jvm.bootimage import BOOT_IMAGE_NAME, RVM_MAP_IMAGE_LABEL, RvmMap
from repro.jvm.machine import JIT_APP_IMAGE_LABEL
from repro.os.address_space import VmaKind
from repro.os.binary import NO_SYMBOLS
from repro.os.kernel import Kernel
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import ProfileReport, build_report
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.postprocess import UNRESOLVED_JIT
from repro.xen.hypervisor import Hypervisor

__all__ = ["XenoSample", "XenoProfBuffer", "DomainResolver", "XenoProfReport"]


@dataclass(frozen=True, slots=True)
class XenoSample:
    """One sample tagged with the domain that was running."""

    raw: RawSample
    domain_id: int


@dataclass
class XenoProfBuffer:
    """Hypervisor-side sample store with per-domain counts."""

    capacity: int = 262_144
    _samples: list[XenoSample] = field(default_factory=list)
    lost: int = 0
    per_domain: dict[int, int] = field(default_factory=dict)
    xen_samples: int = 0

    def append(self, sample: XenoSample, in_xen: bool) -> bool:
        if len(self._samples) >= self.capacity:
            self.lost += 1
            return False
        self._samples.append(sample)
        self.per_domain[sample.domain_id] = (
            self.per_domain.get(sample.domain_id, 0) + 1
        )
        if in_xen:
            self.xen_samples += 1
        return True

    @property
    def samples(self) -> tuple[XenoSample, ...]:
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


@dataclass
class DomainResolver:
    """Everything needed to symbolize one guest's samples.

    Attributes:
        kernel: the guest's kernel (own vmlinux + process table).
        vm_task_id: pid of the guest's JVM process.
        heap_bounds: the registered VM heap range.
        codemaps: the guest's VIProf epoch code maps.
        rvm_map: the guest's boot-image map.
    """

    kernel: Kernel
    vm_task_id: int
    heap_bounds: tuple[int, int]
    codemaps: CodeMapIndex
    rvm_map: RvmMap

    def resolve(self, sample: RawSample) -> ResolvedSample:
        pc = sample.pc
        if sample.kernel_mode or self.kernel.is_kernel_address(pc):
            image, symbol = self.kernel.resolve_kernel(pc)
            return ResolvedSample(raw=sample, image=image, symbol=symbol)
        lo, hi = self.heap_bounds
        if sample.task_id == self.vm_task_id and lo <= pc < hi:
            hit = self.codemaps.resolve(sample.epoch, pc)
            if hit is None:
                return ResolvedSample(
                    raw=sample, image=JIT_APP_IMAGE_LABEL, symbol=UNRESOLVED_JIT
                )
            return ResolvedSample(
                raw=sample, image=JIT_APP_IMAGE_LABEL, symbol=hit[0].name
            )
        proc = self.kernel.process(sample.task_id)
        if proc is None:
            return ResolvedSample(raw=sample, image="(unknown)", symbol=NO_SYMBOLS)
        vma = proc.address_space.resolve(pc)
        if vma is None:
            return ResolvedSample(raw=sample, image="(unknown)", symbol=NO_SYMBOLS)
        if vma.kind is VmaKind.FILE:
            assert vma.image is not None
            off = vma.to_image_offset(pc)
            if vma.image.name == BOOT_IMAGE_NAME:
                entry = self.rvm_map.resolve(off)
                return ResolvedSample(
                    raw=sample,
                    image=RVM_MAP_IMAGE_LABEL,
                    symbol=entry.name if entry else NO_SYMBOLS,
                )
            return ResolvedSample(
                raw=sample, image=vma.image.name,
                symbol=vma.image.symbol_name_at(off),
            )
        return ResolvedSample(raw=sample, image=vma.label(), symbol=NO_SYMBOLS)


class XenoProfReport:
    """Cross-stack post-processor over a XenoProf buffer."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        resolvers: dict[int, DomainResolver],
    ) -> None:
        self.hypervisor = hypervisor
        self.resolvers = resolvers

    def _resolve(self, s: XenoSample) -> ResolvedSample:
        if self.hypervisor.is_xen_address(s.raw.pc):
            image, symbol = self.hypervisor.resolve(s.raw.pc)
            return ResolvedSample(raw=s.raw, image=image, symbol=symbol)
        resolver = self.resolvers.get(s.domain_id)
        if resolver is None:
            raise ProfilerError(f"no resolver for domain {s.domain_id}")
        return resolver.resolve(s.raw)

    def domain_report(
        self, buffer: XenoProfBuffer, domain_id: int
    ) -> ProfileReport:
        """Per-domain profile: that guest's samples plus hypervisor work
        performed while it ran (XenoProf's per-domain view)."""
        resolved = [
            self._resolve(s)
            for s in buffer.samples
            if s.domain_id == domain_id
        ]
        return build_report(resolved)

    def unified_report(self, buffer: XenoProfBuffer) -> ProfileReport:
        """One vertically *and horizontally* integrated profile: every
        domain's stack plus the hypervisor, in one listing.  Symbols are
        prefixed with their domain so identical guest symbols stay
        distinguishable."""
        resolved = []
        for s in buffer.samples:
            r = self._resolve(s)
            if self.hypervisor.is_xen_address(s.raw.pc):
                prefix = "xen"
            else:
                prefix = f"dom{s.domain_id}"
            resolved.append(
                ResolvedSample(
                    raw=r.raw, image=f"{prefix}:{r.image}", symbol=r.symbol
                )
            )
        return build_report(resolved)

    def xen_share(self, buffer: XenoProfBuffer) -> float:
        """Fraction of all samples that landed in the hypervisor itself."""
        if not len(buffer):
            return 0.0
        return buffer.xen_samples / len(buffer)
