"""XenoProf-style sampling and cross-stack post-processing.

XenoProf moves the counter-overflow handler into the hypervisor: Xen owns
the hardware counters, tags each sample with the *currently running
domain*, and exposes per-domain sample streams.  Our reproduction keeps the
same structure:

* :class:`XenoSample` — a raw sample plus its domain id;
* :class:`XenoProfBuffer` — the hypervisor-side sample store with
  per-domain accounting (and a bounded capacity, like the real shared
  buffer pages);
* :class:`XenoProfReport` — resolution across *every* layer of *every*
  stack: hypervisor symbols, each guest's kernel, its processes, its boot
  image (via RVM.map), and its JIT code (via that domain's VIProf epoch
  code maps).  This is the paper's "multiple concurrently executing
  software stacks" goal realized end to end.

Resolution is the streaming pipeline's (:mod:`repro.pipeline`): each
:class:`DomainResolver` is one guest's VIProf chain, and the report is a
hypervisor stage in front of a domain-dispatch stage over those chains —
the same stages every other report in the tree composes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.bootimage import RvmMap
from repro.os.kernel import Kernel
from repro.pipeline.resolver import ResolverChain
from repro.pipeline.source import PipelineSample, iter_pipeline_samples
from repro.pipeline.stages import (
    BootImageStage,
    DomainDispatchStage,
    HypervisorStage,
    JitEpochStage,
    KernelSymbolStage,
    TaskVmaStage,
)
from repro.profiling.model import RawSample, ResolvedSample
from repro.profiling.report import ProfileReport, StreamingAggregator
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.runtime_profiler import VmRegistration
from repro.xen.hypervisor import Hypervisor

__all__ = ["XenoSample", "XenoProfBuffer", "DomainResolver", "XenoProfReport"]


@dataclass(frozen=True, slots=True)
class XenoSample:
    """One sample tagged with the domain that was running."""

    raw: RawSample
    domain_id: int


@dataclass
class XenoProfBuffer:
    """Hypervisor-side sample store with per-domain counts."""

    capacity: int = 262_144
    _samples: list[XenoSample] = field(default_factory=list)
    lost: int = 0
    per_domain: dict[int, int] = field(default_factory=dict)
    xen_samples: int = 0

    def append(self, sample: XenoSample, in_xen: bool) -> bool:
        if len(self._samples) >= self.capacity:
            self.lost += 1
            return False
        self._samples.append(sample)
        self.per_domain[sample.domain_id] = (
            self.per_domain.get(sample.domain_id, 0) + 1
        )
        if in_xen:
            self.xen_samples += 1
        return True

    @property
    def samples(self) -> tuple[XenoSample, ...]:
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


@dataclass
class DomainResolver:
    """Everything needed to symbolize one guest's samples.

    Attributes:
        kernel: the guest's kernel (own vmlinux + process table).
        vm_task_id: pid of the guest's JVM process.
        heap_bounds: the registered VM heap range.
        codemaps: the guest's VIProf epoch code maps.
        rvm_map: the guest's boot-image map.

    The resolver is one guest's VIProf chain (kernel → JIT epoch maps →
    boot image → task VMAs), built once and cached; its per-stage counters
    accumulate across every sample the domain resolves.
    """

    kernel: Kernel
    vm_task_id: int
    heap_bounds: tuple[int, int]
    codemaps: CodeMapIndex
    rvm_map: RvmMap

    def __post_init__(self) -> None:
        lo, hi = self.heap_bounds
        self.chain = ResolverChain(
            [
                KernelSymbolStage(self.kernel),
                JitEpochStage(
                    self.codemaps,
                    (VmRegistration(self.vm_task_id, lo, hi),),
                ),
                BootImageStage(self.kernel, self.rvm_map),
                TaskVmaStage(self.kernel),
            ]
        )

    def resolve(self, sample: RawSample) -> ResolvedSample:
        return self.chain.resolve(PipelineSample(raw=sample))


class XenoProfReport:
    """Cross-stack post-processor over a XenoProf buffer."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        resolvers: dict[int, DomainResolver],
    ) -> None:
        self.hypervisor = hypervisor
        self.resolvers = resolvers
        self.chain = ResolverChain(
            [
                HypervisorStage(hypervisor),
                DomainDispatchStage(
                    {d: r.chain for d, r in resolvers.items()}
                ),
            ]
        )

    def _resolve(self, s: XenoSample) -> ResolvedSample:
        return self.chain.resolve(
            PipelineSample(raw=s.raw, domain_id=s.domain_id)
        )

    def domain_report(
        self, buffer: XenoProfBuffer, domain_id: int
    ) -> ProfileReport:
        """Per-domain profile: that guest's samples plus hypervisor work
        performed while it ran (XenoProf's per-domain view)."""
        stream = (s for s in buffer.samples if s.domain_id == domain_id)
        agg = StreamingAggregator()
        for resolved in self.chain.resolve_stream(iter_pipeline_samples(stream)):
            agg.add(resolved)
        return agg.report()

    def unified_report(self, buffer: XenoProfBuffer) -> ProfileReport:
        """One vertically *and horizontally* integrated profile: every
        domain's stack plus the hypervisor, in one listing.  Symbols are
        prefixed with their domain so identical guest symbols stay
        distinguishable."""
        agg = StreamingAggregator()
        for s in buffer.samples:
            r = self._resolve(s)
            if self.hypervisor.is_xen_address(s.raw.pc):
                prefix = "xen"
            else:
                prefix = f"dom{s.domain_id}"
            agg.add(
                ResolvedSample(
                    raw=r.raw, image=f"{prefix}:{r.image}", symbol=r.symbol
                )
            )
        return agg.report()

    def xen_share(self, buffer: XenoProfBuffer) -> float:
        """Fraction of all samples that landed in the hypervisor itself."""
        if not len(buffer):
            return 0.0
        return buffer.xen_samples / len(buffer)
