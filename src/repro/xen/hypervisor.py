"""The Xen-like hypervisor substrate.

Xen occupies the top of the virtual address space, above even guest kernel
space; guest-visible addresses never collide with it, so a sample PC alone
distinguishes "hypervisor" from "inside some guest" — but *which* guest
owns a guest-space PC is only known to the hypervisor's scheduler, which is
exactly why XenoProf must tag samples with the running domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.os.binary import BinaryImage, Symbol

__all__ = ["XEN_BASE", "Domain", "Hypervisor", "VcpuScheduler", "build_xen_image"]

#: Hypervisor virtual base — above the guests' 0xC0000000 kernel space.
XEN_BASE = 0xF800_0000

#: Default VCPU time slice (cycles) — 30 ms at the simulated clock,
#: Xen's credit-scheduler default.
DEFAULT_VCPU_SLICE = 102_000

_XEN_FUNCS: tuple[tuple[str, int], ...] = (
    ("do_sched_op", 0x200),
    ("csched_schedule", 0x400),
    ("context_switch", 0x280),
    ("vmx_vmexit_handler", 0x380),
    ("do_event_channel_op", 0x220),
    ("do_grant_table_op", 0x260),
    ("evtchn_send", 0x120),
    ("do_page_fault_xen", 0x300),
    ("pit_timer_fn", 0x140),
    ("xenoprof_handle_nmi", 0x1A0),
    ("xenoprof_add_sample", 0x120),
)


def build_xen_image() -> BinaryImage:
    """The hypervisor binary (``xen-syms``) with its symbol table."""
    syms, off = [], 0x4000
    for name, size in _XEN_FUNCS:
        syms.append(Symbol(offset=off, size=size, name=name))
        off += size + 32
    return BinaryImage("xen-syms", 0x80_0000, syms)


@dataclass
class Domain:
    """One guest domain.

    Attributes:
        domain_id: Xen domain id (0 is the privileged control domain).
        name: domain name.
        weight: credit-scheduler weight (relative CPU share).
        cpu_cycles: cycles this domain has consumed.
        finished: set by the engine when the guest's workload completes.
    """

    domain_id: int
    name: str
    weight: int = 256
    cpu_cycles: int = 0
    finished: bool = False

    def __post_init__(self) -> None:
        if self.domain_id < 0:
            raise ConfigError("domain id must be non-negative")
        if self.weight <= 0:
            raise ConfigError("scheduler weight must be positive")


class Hypervisor:
    """Hypervisor state: image, domains, and cost accounting."""

    #: cost of a world switch between domains (VMCS swap, TLB flush)
    WORLD_SWITCH_CYCLES = 2_600
    #: cost of servicing one timer VMEXIT
    TIMER_VMEXIT_CYCLES = 420

    def __init__(self) -> None:
        self.image = build_xen_image()
        self._domains: dict[int, Domain] = {}
        self.world_switches = 0

    def create_domain(self, name: str, weight: int = 256) -> Domain:
        did = len(self._domains)
        dom = Domain(domain_id=did, name=name, weight=weight)
        self._domains[did] = dom
        return dom

    @property
    def domains(self) -> tuple[Domain, ...]:
        return tuple(self._domains.values())

    def domain(self, domain_id: int) -> Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise ConfigError(f"no domain {domain_id}") from None

    # -- hypervisor-space symbolization ---------------------------------

    def is_xen_address(self, addr: int) -> bool:
        return addr >= XEN_BASE

    def xen_pc(self, symbol: str) -> int:
        return XEN_BASE + self.image.find_symbol(symbol).offset

    def resolve(self, addr: int) -> tuple[str, str]:
        """Hypervisor PC → (image, symbol)."""
        if not self.is_xen_address(addr):
            raise ConfigError(f"{addr:#x} is not a hypervisor address")
        return self.image.name, self.image.symbol_name_at(addr - XEN_BASE)


class VcpuScheduler:
    """Credit-style weighted round-robin over runnable domains."""

    def __init__(self, hypervisor: Hypervisor, slice_cycles: int = DEFAULT_VCPU_SLICE):
        if slice_cycles <= 0:
            raise ConfigError("VCPU slice must be positive")
        self.hypervisor = hypervisor
        self.slice_cycles = slice_cycles
        self._credits: dict[int, float] = {}

    def pick(self) -> Domain | None:
        """Choose the runnable domain with the most accumulated credit.

        Credits accrue proportionally to weight and are burned when a
        domain runs, yielding weighted fair sharing over time.
        """
        runnable = [d for d in self.hypervisor.domains if not d.finished]
        if not runnable:
            return None
        for d in runnable:
            self._credits[d.domain_id] = (
                self._credits.get(d.domain_id, 0.0) + d.weight
            )
        best = max(
            runnable,
            key=lambda d: (self._credits[d.domain_id], -d.domain_id),
        )
        self._credits[best.domain_id] -= sum(d.weight for d in runnable)
        return best

    def charge(self, domain: Domain, cycles: int) -> None:
        domain.cpu_cycles += cycles
