"""Fleet sessions: many-guest runs with per-domain salvage and resolve.

This is the scale-out face of the multi-stack engine.  A
:class:`FleetSession` wraps one finished
:class:`~repro.xen.engine.MultiStackResult` whose artifacts were saved in
the *fleet layout*:

.. code-block:: text

    session/
      samples/                     # root stream: all domains, per event
        xenoprof.<EVENT>.samples
      dom<N>/                      # one complete sub-session per guest
        samples/xenoprof.<EVENT>.samples
        jit-maps/jit-map.<epoch>

The root stream is what dom0's daemon drains from the hypervisor's
shared buffer; the per-domain sub-sessions are exact partitions of it in
buffer order, each independently loadable — and independently
*salvageable* — as a standard VIProf session directory.  That layout is
what makes guest-kill isolation mechanical: a dead guest's damage is
confined to its own ``dom<N>/`` subtree, and rebuilding its chain with
quarantined epochs never touches a sibling's artifacts.

Resolution goes through the streaming pipeline (:mod:`repro.pipeline`)
rather than the eager :class:`~repro.xen.xenoprof.XenoProfReport` path,
so fleet reports compose with workers/columnar/cache machinery and their
``stats_dict()`` carries the per-domain inner-chain counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ProfilerError
from repro.pipeline import (
    DirectorySource,
    ResolverChain,
    run_pipeline,
    xen_chain,
    xen_domain_chain,
)
from repro.profiling.report import ProfileReport
from repro.viprof.codemap import CodeMapIndex
from repro.viprof.runtime_profiler import VmRegistration
from repro.workloads.base import Workload
from repro.xen.engine import GuestSpec, MultiStackEngine, MultiStackResult

__all__ = ["FLEET_SHARD_PATTERN", "FleetSession", "run_fleet"]

#: Glob (relative to the session root) matching every per-domain sample
#: file — the *sharded* fleet source: N_domains × N_events files, so the
#: shard planner spreads whole domains across workers instead of
#: chunking one big root file.
FLEET_SHARD_PATTERN = "dom*/samples/*.samples"


@dataclass
class FleetSession:
    """One many-guest session: artifacts on disk plus live guest state.

    Chains built here are *fresh per call* — each carries its own
    counters and cache — so a caller can resolve the same session twice
    (say, strict baseline vs degraded post-salvage) without one run's
    statistics bleeding into the other's.
    """

    result: MultiStackResult
    #: ``save_fleet_session()``'s output: ``"root"`` and ``"dom<N>"``
    #: keys to the sample files written for each.
    saved: dict[str, list[Path]] = field(default_factory=dict)

    @property
    def session_dir(self) -> Path:
        return self.result.session_dir

    @property
    def domain_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.result.guests))

    @property
    def killed_domains(self) -> tuple[int, ...]:
        return self.result.killed_domains

    @property
    def damaged_domains(self) -> tuple[int, ...]:
        return self.result.damaged_domains

    def domain_dir(self, domain_id: int) -> Path:
        """The domain's sub-session root (``session/dom<N>``)."""
        return self.session_dir / f"dom{domain_id}"

    # -- chain construction --------------------------------------------

    def domain_chain(
        self,
        domain_id: int,
        quarantined: Iterable[int] = (),
        strict: bool = True,
    ) -> ResolverChain:
        """A fresh VIProf chain for one guest.

        ``quarantined`` epochs become barriers in the domain's code-map
        index (exactly what its salvage report prescribes); pair with
        ``strict=False`` to resolve a salvaged domain in degraded mode.
        """
        g = self._guest(domain_id)
        quarantined = tuple(quarantined)
        if g.map_dir.is_dir():
            codemaps = CodeMapIndex.load_dir(
                g.map_dir, quarantined=quarantined
            )
        else:
            codemaps = CodeMapIndex({})
        lo, hi = g.heap.bounds
        return xen_domain_chain(
            g.kernel,
            codemaps,
            g.boot.rvm_map,
            (VmRegistration(g.vm_pid, lo, hi),),
            strict=strict,
        )

    def fleet_chain(
        self,
        quarantined: Mapping[int, Iterable[int]] | None = None,
        strict: bool = True,
    ) -> ResolverChain:
        """The full multi-stack chain: hypervisor stage over a fresh
        per-domain dispatch.  ``quarantined`` maps domain id to that
        domain's barrier epochs; unlisted domains get clean chains."""
        quarantined = dict(quarantined or {})
        return xen_chain(
            self.result.hypervisor,
            {
                did: self.domain_chain(
                    did, quarantined.get(did, ()), strict=strict
                )
                for did in self.domain_ids
            },
        )

    # -- sources -------------------------------------------------------

    def source(self, sharded: bool = False) -> DirectorySource:
        """The session's sample source.

        ``sharded=False`` streams the root files (one per event);
        ``sharded=True`` streams the per-domain partition via
        :data:`FLEET_SHARD_PATTERN` — same records, same per-domain
        order, but many more files for the shard planner to spread
        across workers.
        """
        if sharded:
            return DirectorySource(
                self.session_dir, pattern=FLEET_SHARD_PATTERN
            )
        return DirectorySource(self.session_dir / "samples")

    def events(self) -> tuple[str, ...]:
        """The session's event columns (deduplicated, time event first)."""
        names = self.source().event_names()
        return tuple(dict.fromkeys(names))

    # -- resolution ----------------------------------------------------

    def resolve(
        self,
        workers: int | str = 1,
        columnar: bool = True,
        sharded: bool = False,
        quarantined: Mapping[int, Iterable[int]] | None = None,
        strict: bool = True,
        warm_top_k: int | bool | None = None,
    ) -> tuple[ProfileReport, ResolverChain]:
        """Resolve the whole fleet stream; returns (report, chain).

        The chain is fresh, so ``chain.stats_dict()`` afterwards covers
        exactly this run — including every domain's inner-chain counters
        under the dispatch stage's ``detail``.
        """
        chain = self.fleet_chain(quarantined, strict=strict)
        report = run_pipeline(
            self.source(sharded=sharded),
            chain,
            events=self.events(),
            workers=workers,
            columnar=columnar,
            warm_top_k=warm_top_k,
        )
        return report, chain

    def domain_resolve(
        self,
        domain_id: int,
        workers: int | str = 1,
        columnar: bool = True,
        quarantined: Iterable[int] = (),
        strict: bool = True,
    ) -> tuple[ProfileReport, ResolverChain]:
        """Resolve one domain's sub-session; returns (report, chain).

        The chain is still hypervisor-first (a guest's stream includes
        samples caught while Xen ran on its behalf) but dispatches to
        that single domain only, so the result is bit-for-bit what the
        fleet run attributes to this domain — the comparison the
        guest-kill isolation matrix is built on.
        """
        chain = xen_chain(
            self.result.hypervisor,
            {
                domain_id: self.domain_chain(
                    domain_id, quarantined, strict=strict
                )
            },
        )
        sample_dir = self.domain_dir(domain_id) / "samples"
        report = run_pipeline(
            DirectorySource(sample_dir),
            chain,
            events=self.events(),
            workers=workers,
            columnar=columnar,
        )
        return report, chain

    # -- salvage -------------------------------------------------------

    def salvage_domain(self, domain_id: int, dry_run: bool = False):
        """Run crash salvage on one guest's sub-session.

        A guest killed before its first GC never created ``jit-maps/``;
        salvage treats that the same as an empty map directory, so it is
        created here rather than special-cased downstream.
        """
        from repro.viprof.salvage import salvage_session

        dom_dir = self.domain_dir(domain_id)
        (dom_dir / "jit-maps").mkdir(parents=True, exist_ok=True)
        return salvage_session(dom_dir, dry_run=dry_run)

    # -- internals -----------------------------------------------------

    def _guest(self, domain_id: int):
        try:
            return self.result.guests[domain_id]
        except KeyError:
            raise ProfilerError(
                f"no domain {domain_id} in this fleet "
                f"(domains: {', '.join(map(str, self.domain_ids))})"
            ) from None


def run_fleet(
    workloads: list[Workload],
    period: int = 90_000,
    time_scale: float = 1.0,
    session_dir: Path | None = None,
    seed: int = 7,
) -> FleetSession:
    """Run N guest stacks and persist the fleet session layout."""
    engine = MultiStackEngine(
        [GuestSpec(w) for w in workloads],
        period=period,
        time_scale=time_scale,
        session_dir=session_dir,
        seed=seed,
    )
    result = engine.run()
    return FleetSession(result=result, saved=result.save_fleet_session())
