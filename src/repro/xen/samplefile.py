"""On-disk format for domain-tagged XenoProf samples (``XPRS``).

XenoProf exposes per-domain sample streams through shared buffer pages
that a domain-0 daemon persists.  We persist the whole tagged stream in
one file: the core sample record plus a domain id column.

The header/record layout is the shared codec in
:mod:`repro.profiling.record_codec`; this module pins the domain-tagged
``XPRS`` codec.  The core and domain formats differ only in the optional
trailing domain column, so any consumer that sniffs the magic (the
streaming pipeline, the artifact analyzer) can read both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.profiling.record_codec import (
    DOMAIN_CODEC,
    RecordFileReader,
    RecordFileWriter,
)
from repro.xen.xenoprof import XenoSample

__all__ = ["XenoSampleFileWriter", "XenoSampleFileReader", "XENO_MAGIC"]

XENO_MAGIC = DOMAIN_CODEC.magic
XENO_VERSION = DOMAIN_CODEC.version


class XenoSampleFileWriter:
    """Streams domain-tagged samples to disk."""

    def __init__(
        self,
        path: Path | str,
        event_name: str,
        period: int,
        buffer_bytes: int | None = None,
    ) -> None:
        self._writer = RecordFileWriter(
            path, DOMAIN_CODEC, event_name, period, buffer_bytes=buffer_bytes
        )
        self.path = self._writer.path
        self.event_name = event_name
        self.period = period

    @property
    def samples_written(self) -> int:
        return self._writer.samples_written

    def write(self, sample: XenoSample) -> None:
        self._writer.write(sample.raw, domain_id=sample.domain_id)

    def write_batch(self, samples: Iterable[XenoSample]) -> int:
        """Bulk-encode a batch (byte-identical to per-sample ``write``)."""
        if not isinstance(samples, (list, tuple)):
            samples = list(samples)
        return self._writer.write_batch(
            [s.raw for s in samples], [s.domain_id for s in samples]
        )

    def write_many(self, samples: Iterable[XenoSample]) -> int:
        return self.write_batch(samples)

    def flush(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "XenoSampleFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class XenoSampleFileReader(RecordFileReader):
    """Reads a XenoProf sample file back, validating integrity."""

    def __init__(self, path: Path | str) -> None:
        super().__init__(path, codec=DOMAIN_CODEC)

    def __iter__(self) -> Iterator[XenoSample]:
        for record in super().__iter__():
            assert record.domain_id is not None
            yield XenoSample(raw=record.sample, domain_id=record.domain_id)
