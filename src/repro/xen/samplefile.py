"""On-disk format for domain-tagged XenoProf samples.

XenoProf exposes per-domain sample streams through shared buffer pages
that a domain-0 daemon persists.  We persist the whole tagged stream in
one file: the core sample record plus a domain id column.

Format (little endian)::

    header:  4s magic "XPRS" | H version | H event-name length | name bytes
             Q sampling period
    record:  Q pc | I task_id | B kernel_mode | Q cycle | q epoch | H domain
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.xen.xenoprof import XenoSample

__all__ = ["XenoSampleFileWriter", "XenoSampleFileReader", "XENO_MAGIC"]

XENO_MAGIC = b"XPRS"
XENO_VERSION = 1

_HEADER_FIXED = struct.Struct("<4sHH")
_HEADER_PERIOD = struct.Struct("<Q")
_RECORD = struct.Struct("<QIBQqH")


class XenoSampleFileWriter:
    """Streams domain-tagged samples to disk."""

    def __init__(self, path: Path | str, event_name: str, period: int) -> None:
        if period <= 0:
            raise SampleFormatError(f"non-positive period {period}")
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        name = event_name.encode("utf-8")
        self._fh.write(_HEADER_FIXED.pack(XENO_MAGIC, XENO_VERSION, len(name)))
        self._fh.write(name)
        self._fh.write(_HEADER_PERIOD.pack(period))
        self.samples_written = 0

    def write(self, sample: XenoSample) -> None:
        r = sample.raw
        self._fh.write(
            _RECORD.pack(
                r.pc, r.task_id, 1 if r.kernel_mode else 0, r.cycle,
                r.epoch, sample.domain_id,
            )
        )
        self.samples_written += 1

    def write_many(self, samples: Iterable[XenoSample]) -> int:
        n = 0
        for s in samples:
            self.write(s)
            n += 1
        return n

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "XenoSampleFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class XenoSampleFileReader:
    """Reads a XenoProf sample file back, validating integrity."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        data = self.path.read_bytes()
        if len(data) < _HEADER_FIXED.size:
            raise SampleFormatError(f"{self.path}: truncated header")
        magic, version, name_len = _HEADER_FIXED.unpack_from(data, 0)
        if magic != XENO_MAGIC:
            raise SampleFormatError(f"{self.path}: bad magic {magic!r}")
        if version != XENO_VERSION:
            raise SampleFormatError(
                f"{self.path}: version {version}, expected {XENO_VERSION}"
            )
        off = _HEADER_FIXED.size
        if len(data) < off + name_len + _HEADER_PERIOD.size:
            raise SampleFormatError(f"{self.path}: truncated header")
        self.event_name = data[off : off + name_len].decode("utf-8")
        off += name_len
        (self.period,) = _HEADER_PERIOD.unpack_from(data, off)
        off += _HEADER_PERIOD.size
        body = data[off:]
        if len(body) % _RECORD.size:
            raise SampleFormatError(f"{self.path}: torn record")
        self._body = body

    def __iter__(self) -> Iterator[XenoSample]:
        for (pc, task, kmode, cycle, epoch, domain) in _RECORD.iter_unpack(
            self._body
        ):
            yield XenoSample(
                raw=RawSample(
                    pc=pc, event_name=self.event_name, task_id=task,
                    kernel_mode=bool(kmode), cycle=cycle, epoch=epoch,
                ),
                domain_id=domain,
            )

    def __len__(self) -> int:
        return len(self._body) // _RECORD.size
