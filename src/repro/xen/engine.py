"""The multi-stack engine: several guest software stacks over one CPU.

Each guest is a full isolated stack — its own kernel, its own Jikes-RVM-like
VM with its own heap, code maps and workload — exactly the VIVA execution
model the paper's introduction describes (one application per virtualized
stack).  The hypervisor time-slices the guests on one physical CPU;
XenoProf owns the counters and tags samples with the running domain.

This is a profiling *prototype* of the paper's future work, so the guest
stacks run without per-guest daemon processes: the hypervisor-side buffer
is large (as XenoProf's shared pages are) and post-processing reads it
directly.  VM-agent costs (code-map writes) are still charged inside each
guest, so per-guest VIProf overhead remains visible.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError, InjectedFault
from repro.faults import injector as faults
from repro.hardware.cache import CacheGeometry, StatisticalCacheModel
from repro.hardware.cpu import CPU, CpuMode, Quantum
from repro.hardware.events import EventCounts
from repro.hardware.interrupts import InterruptFrame
from repro.jvm.bootimage import BootImage, build_boot_image
from repro.jvm.heap import Heap
from repro.jvm.machine import JikesVM, StepKind, VmStep
from repro.oprofile.opcontrol import OprofileConfig
from repro.os.address_space import PAGE_SIZE, VmaKind
from repro.os.kernel import Kernel
from repro.os.loader import ProgramLoader
from repro.os.binary import standard_libraries
from repro.profiling.model import RawSample
from repro.system.engine import build_agent_image, build_jikesrvm_bootstrap
from repro.system.ledger import TruthLedger
from repro.viprof.codemap import CodeMapError, CodeMapIndex, CodeMapWriter
from repro.viprof.vm_agent import ViprofVmAgent
from repro.workloads.base import Workload
from repro.xen.hypervisor import Domain, Hypervisor, VcpuScheduler
from repro.xen.xenoprof import (
    DomainResolver,
    XenoProfBuffer,
    XenoProfReport,
    XenoSample,
)

__all__ = ["GuestSpec", "MultiStackEngine", "MultiStackResult"]

#: cost of the XenoProf NMI handler (runs in the hypervisor)
XEN_NMI_HANDLER_CYCLES = 1_300
#: hypervisor timer interrupt period and cost
XEN_TIMER_PERIOD = 34_000


@dataclass(frozen=True)
class GuestSpec:
    """One guest stack to build."""

    workload: Workload
    weight: int = 256
    seed: int = 7


@dataclass
class _Guest:
    domain: Domain
    kernel: Kernel
    machine: JikesVM
    heap: Heap
    boot: BootImage
    agent: ViprofVmAgent
    map_dir: Path
    vm_pid: int
    cache: StatisticalCacheModel
    budget: int
    ledger: TruthLedger = field(default_factory=TruthLedger)
    workload_cycles: int = 0
    steps: "object" = None  # the machine.run() iterator
    killed: InjectedFault | None = None


@dataclass
class MultiStackResult:
    """Everything a caller needs after a multi-stack run."""

    hypervisor: Hypervisor
    buffer: XenoProfBuffer
    report_builder: XenoProfReport
    guests: dict[int, _Guest]
    wall_cycles: int
    session_dir: Path
    period: int = 90_000
    #: Domains whose code-map directory did not load cleanly after a
    #: guest kill (torn map): resolution for them waits for salvage.
    damaged_domains: tuple[int, ...] = ()

    @property
    def killed_domains(self) -> tuple[int, ...]:
        """Domains whose guest died to an injected fault this run."""
        return tuple(
            did for did, g in sorted(self.guests.items())
            if g.killed is not None
        )

    def _write_event_files(self, dest: Path, samples: list) -> list[Path]:
        """One ``XPRS`` file per event under ``dest`` (created on demand).

        ``samples`` may be empty for an event: the file is still written,
        header-only, so a freshly killed guest's sub-session stays a
        complete (and salvageable) session directory.
        """
        from repro.xen.samplefile import XenoSampleFileWriter

        events = sorted({s.raw.event_name for s in self.buffer.samples})
        by_event: dict[str, list] = {event: [] for event in events}
        for s in samples:
            by_event[s.raw.event_name].append(s)
        dest.mkdir(parents=True, exist_ok=True)
        paths = []
        for event, batch in sorted(by_event.items()):
            path = dest / f"xenoprof.{event}.samples"
            with XenoSampleFileWriter(path, event, period=self.period) as w:
                w.write_batch(batch)
            paths.append(path)
        return paths

    def save_samples(self) -> list[Path]:
        """Persist the tagged sample stream, one file per event, under the
        session directory (what XenoProf's dom0 daemon does)."""
        from repro.xen.samplefile import XenoSampleFileWriter

        by_event: dict[str, list] = {}
        for s in self.buffer.samples:
            by_event.setdefault(s.raw.event_name, []).append(s)
        paths = []
        for event, samples in sorted(by_event.items()):
            path = self.session_dir / f"xenoprof.{event}.samples"
            with XenoSampleFileWriter(path, event, period=self.period) as w:
                w.write_batch(samples)
            paths.append(path)
        return paths

    def save_fleet_session(self) -> dict[str, list[Path]]:
        """Persist the many-guest fleet layout.

        The root stream lands in ``samples/`` (all domains, one ``XPRS``
        file per event — what dom0's daemon drains from the shared
        buffer), and each domain additionally gets its own sub-session
        ``dom{N}/samples/`` next to its ``dom{N}/jit-maps/`` — a complete,
        independently salvageable session per guest.  Per-domain record
        order matches the root stream (both are buffer order), so the
        per-domain files are an exact partition of the root stream.
        """
        out = {
            "root": self._write_event_files(
                self.session_dir / "samples", list(self.buffer.samples)
            )
        }
        for did in sorted(self.guests):
            out[f"dom{did}"] = self._write_event_files(
                self.session_dir / f"dom{did}" / "samples",
                [s for s in self.buffer.samples if s.domain_id == did],
            )
        return out

    def domain_report(self, domain_id: int):
        return self.report_builder.domain_report(self.buffer, domain_id)

    def unified_report(self):
        return self.report_builder.unified_report(self.buffer)

    def xen_share(self) -> float:
        return self.report_builder.xen_share(self.buffer)


class MultiStackEngine:
    """Runs N guest stacks under the hypervisor with XenoProf attached."""

    def __init__(
        self,
        specs: list[GuestSpec],
        period: int = 90_000,
        time_scale: float = 1.0,
        session_dir: Path | None = None,
        seed: int = 7,
    ) -> None:
        if not specs:
            raise ConfigError("at least one guest stack is required")
        self.hypervisor = Hypervisor()
        self.vcpu_sched = VcpuScheduler(self.hypervisor)
        self.cpu = CPU()
        self.buffer = XenoProfBuffer()
        self.config = OprofileConfig.paper_config(period)
        self.session_dir = session_dir or Path(
            tempfile.mkdtemp(prefix="xenoprof-")
        )
        self.seed = seed
        self._current_domain: int = 0
        self._in_xen_quantum = False
        self.guests: dict[int, _Guest] = {}
        for spec in specs:
            g = self._build_guest(spec, time_scale)
            self.guests[g.domain.domain_id] = g

        for espec in self.config.events:
            self.cpu.counters.program(espec.to_counter_config())
        self.cpu.nmi.register(self._handle_nmi)

    # ------------------------------------------------------------------

    def _build_guest(self, spec: GuestSpec, time_scale: float) -> _Guest:
        wl = spec.workload
        domain = self.hypervisor.create_domain(wl.name, weight=spec.weight)
        kernel = Kernel()
        proc = kernel.spawn("JikesRVM")
        loader = ProgramLoader(proc.address_space, kernel.layout)
        loader.load_executable(build_jikesrvm_bootstrap())
        for img in standard_libraries():
            loader.load_library(img)
        loader.load_library(build_agent_image())
        boot = build_boot_image()
        boot_vma = loader.map_file_segment(boot.image, at=kernel.layout.anon_base)
        nursery_vma = loader.map_anonymous(
            wl.nursery_bytes, at=boot_vma.end + PAGE_SIZE
        )
        mature_vma = loader.map_anonymous(
            wl.mature_bytes, at=nursery_vma.end + PAGE_SIZE
        )
        heap = Heap(
            nursery_base=nursery_vma.start, nursery_size=wl.nursery_bytes,
            mature_base=mature_vma.start, mature_size=wl.mature_bytes,
        )
        map_dir = self.session_dir / f"dom{domain.domain_id}" / "jit-maps"
        agent = ViprofVmAgent(writer=CodeMapWriter(map_dir))

        def resolver(image_name: str, symbol: str) -> tuple[int, int]:
            for vma in proc.address_space:
                if vma.kind is VmaKind.FILE and vma.image is not None:
                    if vma.image.name == image_name:
                        sym = vma.image.find_symbol(symbol)
                        return vma.start + sym.offset, sym.size
            raise ConfigError(f"{image_name!r} not mapped in {wl.name}")

        machine = JikesVM(
            boot=boot, boot_base=boot_vma.start, heap=heap, workload=wl,
            native_resolver=resolver,
            seed=spec.seed ^ (wl.seed << 8) ^ (domain.domain_id << 17),
            hooks=agent,
        )
        guest = _Guest(
            domain=domain, kernel=kernel, machine=machine, heap=heap,
            boot=boot, agent=agent, map_dir=map_dir, vm_pid=proc.pid,
            cache=StatisticalCacheModel(
                CacheGeometry.paper_l2(),
                seed=spec.seed ^ domain.domain_id,
            ),
            budget=wl.budget_cycles(time_scale),
        )
        guest.steps = machine.run()
        return guest

    # ------------------------------------------------------------------

    def _handle_nmi(self, frame: InterruptFrame) -> int:
        in_xen = self.hypervisor.is_xen_address(frame.pc)
        guest = self.guests[self._current_domain]
        self.buffer.append(
            XenoSample(
                raw=RawSample(
                    pc=frame.pc,
                    event_name=frame.event_name,
                    task_id=frame.task_id,
                    kernel_mode=frame.mode is CpuMode.KERNEL,
                    cycle=frame.cycle,
                    epoch=guest.machine.epoch,
                ),
                domain_id=self._current_domain,
            ),
            in_xen=in_xen,
        )
        return XEN_NMI_HANDLER_CYCLES

    def _exec_xen(self, symbol: str, cycles: int) -> None:
        pc = self.hypervisor.xen_pc(symbol)
        sym = self.hypervisor.image.find_symbol(symbol)
        counts = EventCounts(cycles=cycles, instructions=cycles // 2)
        self.cpu.execute(
            Quantum(pc_start=pc, code_len=sym.size, counts=counts,
                    mode=CpuMode.KERNEL)
        )

    def _tear_newest_map_effect(self, guest: _Guest):
        """Damage effect for :data:`~repro.faults.GUEST_MAP_TEAR`: cut the
        guest's newest epoch map three characters into its last record
        line — the partial state a crash mid-emission leaves, malformed
        enough that salvage must quarantine the epoch (a cut at a line
        boundary would instead *parse* as a silently shorter map)."""

        def effect(rng) -> None:
            if not guest.map_dir.is_dir():
                return
            maps = sorted(
                p for p in guest.map_dir.iterdir()
                if p.is_file() and p.name.startswith("jit-map.")
            )
            if not maps:
                return
            path = maps[-1]
            data = path.read_bytes()
            cut = data.rstrip(b"\n").rfind(b"\n")
            if cut < 0:
                return
            path.write_bytes(data[: cut + 1 + 3])

        return effect

    def _kill_guest(self, guest: _Guest, fault: InjectedFault) -> None:
        """An injected fault inside one guest kills that guest only: the
        domain stops being scheduled (and never runs its final flush, so
        its current epoch's map stays unwritten), while the hypervisor,
        the sample buffer, and every sibling domain carry on."""
        guest.killed = fault
        guest.domain.finished = True

    def _exec_guest_step(self, guest: _Guest, step: VmStep) -> None:
        if faults.armed() and step.kind is StepKind.AGENT:
            faults.fire(
                faults.GUEST_MAP_TEAR, self._tear_newest_map_effect(guest)
            )
        misses = 0
        if step.working_set is not None and step.accesses > 0:
            misses = guest.cache.misses_for(step.working_set, step.accesses)
        counts = EventCounts(
            cycles=step.cycles,
            instructions=step.instructions,
            l2_references=step.accesses,
            l2_misses=misses,
            branches=step.instructions // 6,
        )
        self.cpu.current_task_id = guest.vm_pid
        self.cpu.execute(
            Quantum(pc_start=step.pc, code_len=step.code_len, counts=counts)
        )
        guest.ledger.record(step.truth, step.cycles, misses)
        if step.kind is not StepKind.AGENT:
            guest.workload_cycles += step.cycles

    # ------------------------------------------------------------------

    def run(self) -> MultiStackResult:
        next_timer = XEN_TIMER_PERIOD
        while True:
            domain = self.vcpu_sched.pick()
            if domain is None:
                break
            guest = self.guests[domain.domain_id]
            self._current_domain = domain.domain_id

            # World switch into the guest.
            self._exec_xen("context_switch", Hypervisor.WORLD_SWITCH_CYCLES)
            self.hypervisor.world_switches += 1

            slice_end = self.cpu.cycle + self.vcpu_sched.slice_cycles
            start = self.cpu.cycle
            try:
                while (
                    self.cpu.cycle < slice_end
                    and guest.workload_cycles < guest.budget
                ):
                    if self.cpu.cycle >= next_timer:
                        self._exec_xen(
                            "vmx_vmexit_handler",
                            Hypervisor.TIMER_VMEXIT_CYCLES,
                        )
                        self._exec_xen("pit_timer_fn", 140)
                        next_timer += XEN_TIMER_PERIOD
                        continue
                    if faults.armed():
                        faults.fire(faults.GUEST_KILL)
                    self._exec_guest_step(guest, next(guest.steps))
            except InjectedFault as fault:
                self._kill_guest(guest, fault)
            self.vcpu_sched.charge(domain, self.cpu.cycle - start)

            if guest.workload_cycles >= guest.budget and not domain.finished:
                try:
                    for step in guest.machine.finish():
                        self._exec_guest_step(guest, step)
                except InjectedFault as fault:
                    self._kill_guest(guest, fault)
                domain.finished = True

        resolvers: dict[int, DomainResolver] = {}
        damaged: list[int] = []
        for did, g in self.guests.items():
            try:
                codemaps = (
                    CodeMapIndex.load_dir(g.map_dir)
                    if g.map_dir.is_dir()
                    else CodeMapIndex({})
                )
            except CodeMapError:
                if g.killed is None:
                    raise
                # A torn map from the guest kill: the eager report keeps
                # running (the domain's heap samples fall to
                # "(unresolved jit)"); exact accounting for this domain
                # waits for salvage + a quarantined rebuild
                # (repro.xen.fleet.FleetSession.domain_chain).
                codemaps = CodeMapIndex({})
                damaged.append(did)
            resolvers[did] = DomainResolver(
                kernel=g.kernel,
                vm_task_id=g.vm_pid,
                heap_bounds=g.heap.bounds,
                codemaps=codemaps,
                rvm_map=g.boot.rvm_map,
            )
        return MultiStackResult(
            hypervisor=self.hypervisor,
            buffer=self.buffer,
            report_builder=XenoProfReport(self.hypervisor, resolvers),
            guests=self.guests,
            wall_cycles=self.cpu.cycle,
            session_dir=self.session_dir,
            period=self.config.primary_period,
            damaged_domains=tuple(damaged),
        )
