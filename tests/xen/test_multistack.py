"""Integration tests for the multi-stack XenoProf engine."""

import pytest

from repro.errors import ConfigError
from repro.xen import GuestSpec, MultiStackEngine
from tests.conftest import make_tiny_workload


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    engine = MultiStackEngine(
        [
            GuestSpec(make_tiny_workload("guest-a", base_time_s=0.2)),
            GuestSpec(
                make_tiny_workload("guest-b", base_time_s=0.3), weight=512
            ),
        ],
        period=30_000,
        session_dir=tmp_path_factory.mktemp("xeno"),
    )
    return engine.run()


class TestMultiStackRun:
    def test_requires_guests(self):
        with pytest.raises(ConfigError):
            MultiStackEngine([])

    def test_both_guests_complete(self, result):
        for g in result.guests.values():
            assert g.workload_cycles >= g.budget
            assert g.domain.finished

    def test_samples_tagged_per_domain(self, result):
        assert set(result.buffer.per_domain) == {0, 1}
        assert all(n > 0 for n in result.buffer.per_domain.values())

    def test_world_switches_happened(self, result):
        assert result.hypervisor.world_switches > 2

    def test_weighted_domain_gets_more_cpu(self, result):
        d0 = result.guests[0].domain
        d1 = result.guests[1].domain
        # guest-b has double weight AND a larger budget.
        assert d1.cpu_cycles > d0.cpu_cycles


class TestCrossStackReports:
    def test_domain_reports_isolated(self, result):
        r0 = result.domain_report(0)
        r1 = result.domain_report(1)
        # Both guests run the same tiny workload population; isolation shows
        # in the totals matching the per-domain sample counts.
        assert r0.totals["GLOBAL_POWER_EVENTS"] + r0.totals.get(
            "BSQ_CACHE_REFERENCE", 0
        ) == result.buffer.per_domain[0]
        assert sum(r1.totals.values()) == result.buffer.per_domain[1]

    def test_domain_jit_samples_resolve(self, result):
        for did in (0, 1):
            rep = result.domain_report(did)
            jit_rows = [r for r in rep.rows if r.image == "JIT.App"]
            assert jit_rows, f"domain {did} resolved no JIT methods"
            assert not any(
                r.symbol == "(unresolved jit)" and r.count("GLOBAL_POWER_EVENTS") > 2
                for r in jit_rows
            )

    def test_unified_report_prefixes_domains(self, result):
        rep = result.unified_report()
        images = {r.image for r in rep.rows}
        assert any(i.startswith("dom0:") for i in images)
        assert any(i.startswith("dom1:") for i in images)

    def test_epochs_flow_from_each_guest(self, result):
        for s in result.buffer.samples:
            assert s.raw.epoch >= 0

    def test_xen_share_bounded(self, result):
        assert 0.0 <= result.xen_share() < 0.2
