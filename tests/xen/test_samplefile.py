"""Tests for the XenoProf sample-file format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SampleFormatError
from repro.profiling.model import RawSample
from repro.xen.samplefile import (
    XENO_MAGIC,
    XenoSampleFileReader,
    XenoSampleFileWriter,
)
from repro.xen.xenoprof import XenoSample


def xsample(pc=0x1000, domain=1, epoch=3):
    return XenoSample(
        raw=RawSample(
            pc=pc, event_name="GLOBAL_POWER_EVENTS", task_id=1000,
            kernel_mode=False, cycle=7, epoch=epoch,
        ),
        domain_id=domain,
    )


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "x.samples"
        originals = [xsample(0x1000, 0), xsample(0x2000, 1), xsample(0x3000, 2)]
        with XenoSampleFileWriter(p, "GLOBAL_POWER_EVENTS", 90_000) as w:
            w.write_many(originals)
        back = list(XenoSampleFileReader(p))
        assert back == originals

    def test_header(self, tmp_path):
        p = tmp_path / "x.samples"
        with XenoSampleFileWriter(p, "BSQ_CACHE_REFERENCE", 2_000):
            pass
        r = XenoSampleFileReader(p)
        assert r.event_name == "BSQ_CACHE_REFERENCE"
        assert r.period == 2_000
        assert len(r) == 0

    def test_distinct_magic_from_core_format(self, tmp_path):
        from repro.profiling.samplefile import MAGIC

        assert XENO_MAGIC != MAGIC
        p = tmp_path / "x.samples"
        with XenoSampleFileWriter(p, "E", 1000) as w:
            w.write(xsample())
        from repro.profiling.samplefile import SampleFileReader

        with pytest.raises(SampleFormatError, match="bad magic"):
            SampleFileReader(p)

    def test_torn_record_rejected(self, tmp_path):
        p = tmp_path / "x.samples"
        with XenoSampleFileWriter(p, "E", 1000) as w:
            w.write(xsample())
        p.write_bytes(p.read_bytes()[:-2])
        with pytest.raises(SampleFormatError, match="torn"):
            XenoSampleFileReader(p)

    @given(
        domains=st.lists(
            st.integers(min_value=0, max_value=65535), max_size=30
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_domain_ids_roundtrip(self, tmp_path_factory, domains):
        p = tmp_path_factory.mktemp("x") / "d.samples"
        samples = [xsample(domain=d) for d in domains]
        with XenoSampleFileWriter(p, "E", 1000) as w:
            w.write_many(samples)
        assert [s.domain_id for s in XenoSampleFileReader(p)] == domains


class TestEnginePersistence:
    def test_save_samples_roundtrip(self, tmp_path):
        from repro.xen import GuestSpec, MultiStackEngine
        from tests.conftest import make_tiny_workload

        engine = MultiStackEngine(
            [GuestSpec(make_tiny_workload(base_time_s=0.1))],
            period=30_000,
            session_dir=tmp_path,
        )
        result = engine.run()
        paths = result.save_samples()
        assert paths
        reloaded = []
        for p in paths:
            reloaded.extend(XenoSampleFileReader(p))
        assert len(reloaded) == len(result.buffer)
        # Per-domain counts survive the round trip.
        from collections import Counter

        on_disk = Counter(s.domain_id for s in reloaded)
        assert dict(on_disk) == result.buffer.per_domain
