"""Property tests for the fleet rollup's algebra.

Two contracts make ``viprof report --per-domain`` trustworthy:

* **merge-order invariance** — merging the per-domain summaries in any
  order and normalizing yields byte-identical canonical JSON to
  :func:`~repro.metrics.fleet.fleet_rollup`;
* **permutation equivariance** — relabeling domain ids permutes the
  per-domain outputs (``dom<N>.*`` panels, per-domain report-doc
  entries) but never mixes one domain's counters into another's, and
  leaves every fleet-wide aggregate untouched.

The summaries are generated in the exact shape
:func:`~repro.metrics.fleet.domain_summary` produces: shared panels,
``dom<N>.``-prefixed copies, and a ``fleet`` panel counting the domain
itself.  Panel values are integers only — the rollup is exact counter
summation, and these properties are what guarantee it stays that way.
"""

import re

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.fleet import (
    domain_summary,
    fleet_report_doc,
    fleet_rollup,
    normalize_summary,
)
from repro.metrics.model import KIND_PROFILE, SessionSummary, SymbolEntry
from repro.workloads.fleet import fleet_workloads
from repro.xen.fleet import run_fleet

EVENTS = ("GLOBAL_POWER_EVENTS", "BSQ_CACHE_REFERENCE", "ITLB_MISS")
IMAGES = ("JIT.App", "vmlinux", "RVM.map", "xen-syms")
PANEL_NAMES = ("layers", "jit", "cache", "degraded")
METRIC_NAMES = ("hits", "misses", "resolved", "blocked")

_DOM_PANEL = re.compile(r"^dom(\d+)\.(.+)$")

_counts = st.dictionaries(
    st.sampled_from(EVENTS), st.integers(1, 10**9), min_size=1, max_size=3
)
_symbols = st.lists(
    st.builds(
        SymbolEntry,
        image=st.sampled_from(IMAGES),
        symbol=st.text("abcdef", min_size=1, max_size=6),
        counts=_counts,
    ),
    max_size=6,
    unique_by=lambda e: e.key,
)
_panels = st.dictionaries(
    st.sampled_from(PANEL_NAMES),
    st.dictionaries(
        st.sampled_from(METRIC_NAMES),
        st.integers(0, 10**9),
        min_size=1,
        max_size=3,
    ),
    max_size=len(PANEL_NAMES),
)


@st.composite
def fleet_inputs(draw):
    """``{domain_id: content}`` for 1..5 domains out of ids 0..7."""
    n = draw(st.integers(1, 5))
    dids = draw(st.permutations(range(8)))[:n]
    return {
        did: {
            "events": tuple(
                draw(
                    st.lists(
                        st.sampled_from(EVENTS),
                        unique=True,
                        min_size=1,
                        max_size=3,
                    )
                )
            ),
            "totals": draw(_counts),
            "symbols": draw(_symbols),
            "panels": draw(_panels),
        }
        for did in dids
    }


def make_summary(did: int, content: dict) -> SessionSummary:
    """Materialize one domain's summary in ``domain_summary``'s shape."""
    panels = {name: dict(p) for name, p in content["panels"].items()}
    panels.update(
        {f"dom{did}.{name}": dict(p) for name, p in panels.items()}
    )
    panels["fleet"] = {"domains": 1}
    return SessionSummary(
        kind=KIND_PROFILE,
        events=content["events"],
        totals=dict(content["totals"]),
        symbols=[
            SymbolEntry(image=e.image, symbol=e.symbol, counts=dict(e.counts))
            for e in content["symbols"]
        ],
        panels=panels,
        meta={"domain_id": did},
    )


def _shared_panels(panels: dict) -> dict:
    return {k: v for k, v in panels.items() if not _DOM_PANEL.match(k)}


def _dom_panels(panels: dict) -> dict:
    """``dom<N>.<name>`` panels keyed ``(N, name)``."""
    out = {}
    for key, panel in panels.items():
        m = _DOM_PANEL.match(key)
        if m:
            out[(int(m.group(1)), m.group(2))] = panel
    return out


class TestMergeOrder:
    @given(fleet_inputs(), st.randoms(use_true_random=False))
    def test_any_merge_order_equals_rollup(self, inputs, rng):
        summaries = {d: make_summary(d, c) for d, c in inputs.items()}
        reference = fleet_rollup(summaries).to_canonical_json()

        order = list(summaries)
        rng.shuffle(order)
        merged = None
        for did in order:
            copy = SessionSummary.from_dict(summaries[did].to_dict())
            merged = copy if merged is None else merged.merge(copy)
        assert normalize_summary(merged).to_canonical_json() == reference

    @given(fleet_inputs())
    def test_rollup_counts_domains_and_keeps_inputs_intact(self, inputs):
        summaries = {d: make_summary(d, c) for d, c in inputs.items()}
        before = {d: s.to_canonical_json() for d, s in summaries.items()}
        rollup = fleet_rollup(summaries)
        assert rollup.panels["fleet"] == {"domains": len(inputs)}
        # The rollup copies; the per-domain inputs are not mutated.
        assert before == {
            d: s.to_canonical_json() for d, s in summaries.items()
        }
        # Fleet totals are the exact per-domain sums.
        for ev in rollup.totals:
            assert rollup.totals[ev] == sum(
                c["totals"].get(ev, 0) for c in inputs.values()
            )


class TestPermutation:
    @given(fleet_inputs())
    def test_rollup_never_mixes_domains(self, inputs):
        summaries = {d: make_summary(d, c) for d, c in inputs.items()}
        rollup = fleet_rollup(summaries)
        for did, content in inputs.items():
            for name, panel in content["panels"].items():
                assert rollup.panels[f"dom{did}.{name}"] == panel

    @given(fleet_inputs(), st.permutations(range(8)))
    def test_domain_relabel_permutes_outputs(self, inputs, perm):
        orig = {d: make_summary(d, c) for d, c in inputs.items()}
        relabeled = {
            perm[d]: make_summary(perm[d], c) for d, c in inputs.items()
        }
        doc_a = fleet_report_doc(orig)
        doc_b = fleet_report_doc(relabeled)

        # Per-domain entries move to their new id, byte-for-byte.
        assert set(doc_b["domains"]) == {
            f"dom{perm[d]}" for d in inputs
        }
        for d in inputs:
            assert doc_b["domains"][f"dom{perm[d]}"] == (
                doc_a["domains"][f"dom{d}"]
            )

        # Fleet-wide aggregates are relabel-invariant ...
        fa, fb = doc_a["fleet"], doc_b["fleet"]
        assert fb["events"] == fa["events"]
        assert fb["totals"] == fa["totals"]
        assert fb["top_symbols"] == fa["top_symbols"]
        assert _shared_panels(fb["panels"]) == _shared_panels(fa["panels"])
        # ... and the dom-prefixed panels permute without mixing.
        assert _dom_panels(fb["panels"]) == {
            (perm[d], name): panel
            for (d, name), panel in _dom_panels(fa["panels"]).items()
        }


def test_real_fleet_summaries_have_the_generated_shape(tmp_path):
    """Ground the strategies: ``domain_summary`` output from a real fleet
    run carries exactly the shape the properties above generate."""
    fs = run_fleet(
        fleet_workloads(2, base_time_s=0.02),
        period=20_000,
        session_dir=tmp_path / "fleet",
    )
    summaries = {}
    for did in fs.domain_ids:
        report, chain = fs.domain_resolve(did)
        summaries[did] = domain_summary(
            did, report, stats=chain.stats_dict()
        )
    for did, s in summaries.items():
        assert s.panels["fleet"] == {"domains": 1}
        for (d, name), panel in _dom_panels(s.panels).items():
            assert d == did
            assert panel == s.panels[name]
    rollup = fleet_rollup(summaries)
    assert rollup.panels["fleet"] == {"domains": len(summaries)}
    for did, s in summaries.items():
        for name, panel in _shared_panels(s.panels).items():
            if name == "fleet":
                continue
            assert rollup.panels[f"dom{did}.{name}"] == panel
