"""Property-based tests for the credit VCPU scheduler."""

from hypothesis import given, settings, strategies as st

from repro.xen.hypervisor import Hypervisor, VcpuScheduler


class TestCreditScheduling:
    @given(
        weights=st.lists(
            st.sampled_from([128, 256, 512, 1024]), min_size=2, max_size=5
        ),
        n_picks=st.integers(min_value=200, max_value=600),
    )
    @settings(max_examples=40, deadline=None)
    def test_cpu_share_proportional_to_weight(self, weights, n_picks):
        hv = Hypervisor()
        for i, w in enumerate(weights):
            hv.create_domain(f"d{i}", weight=w)
        sched = VcpuScheduler(hv)
        counts = [0] * len(weights)
        for _ in range(n_picks):
            counts[sched.pick().domain_id] += 1
        total_w = sum(weights)
        for i, w in enumerate(weights):
            expected = n_picks * w / total_w
            # Weighted round robin converges within a few slices.
            assert abs(counts[i] - expected) <= len(weights) + 2

    @given(
        weights=st.lists(
            st.sampled_from([256, 512]), min_size=2, max_size=4
        ),
        finish_idx=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_finished_domain_never_picked(self, weights, finish_idx):
        hv = Hypervisor()
        for i, w in enumerate(weights):
            hv.create_domain(f"d{i}", weight=w)
        finish_idx %= len(weights)
        hv.domain(finish_idx).finished = True
        sched = VcpuScheduler(hv)
        for _ in range(50):
            picked = sched.pick()
            assert picked is not None
            assert picked.domain_id != finish_idx
