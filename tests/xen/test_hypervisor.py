"""Unit tests for the hypervisor substrate."""

import pytest

from repro.errors import ConfigError
from repro.xen.hypervisor import (
    XEN_BASE,
    Domain,
    Hypervisor,
    VcpuScheduler,
    build_xen_image,
)


class TestXenImage:
    def test_core_symbols_present(self):
        img = build_xen_image()
        for name in ("csched_schedule", "vmx_vmexit_handler",
                     "xenoprof_handle_nmi", "context_switch"):
            img.find_symbol(name)


class TestDomains:
    def test_domain_ids_sequential(self):
        hv = Hypervisor()
        d0 = hv.create_domain("dom0")
        d1 = hv.create_domain("guest1")
        assert (d0.domain_id, d1.domain_id) == (0, 1)
        assert hv.domain(1) is d1

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigError):
            Hypervisor().domain(5)

    def test_domain_validation(self):
        with pytest.raises(ConfigError):
            Domain(domain_id=-1, name="x")
        with pytest.raises(ConfigError):
            Domain(domain_id=0, name="x", weight=0)


class TestXenResolution:
    def test_xen_pc_roundtrip(self):
        hv = Hypervisor()
        pc = hv.xen_pc("vmx_vmexit_handler")
        assert hv.is_xen_address(pc)
        image, sym = hv.resolve(pc)
        assert image == "xen-syms"
        assert sym == "vmx_vmexit_handler"

    def test_guest_address_not_xen(self):
        hv = Hypervisor()
        assert not hv.is_xen_address(0xC010_0000)  # guest kernel space
        with pytest.raises(ConfigError):
            hv.resolve(0xC010_0000)

    def test_xen_above_guest_kernels(self):
        from repro.os.loader import Layout

        assert XEN_BASE > Layout().kernel_base


class TestVcpuScheduler:
    def test_round_robin_equal_weights(self):
        hv = Hypervisor()
        a, b = hv.create_domain("a"), hv.create_domain("b")
        sched = VcpuScheduler(hv)
        picks = [sched.pick().name for _ in range(10)]
        assert picks.count("a") == 5
        assert picks.count("b") == 5

    def test_weighted_sharing(self):
        hv = Hypervisor()
        heavy = hv.create_domain("heavy", weight=768)
        light = hv.create_domain("light", weight=256)
        sched = VcpuScheduler(hv)
        picks = [sched.pick().name for _ in range(100)]
        assert abs(picks.count("heavy") - 75) <= 5

    def test_finished_domains_excluded(self):
        hv = Hypervisor()
        a, b = hv.create_domain("a"), hv.create_domain("b")
        sched = VcpuScheduler(hv)
        a.finished = True
        assert all(sched.pick() is b for _ in range(5))
        b.finished = True
        assert sched.pick() is None

    def test_bad_slice_rejected(self):
        with pytest.raises(ConfigError):
            VcpuScheduler(Hypervisor(), slice_cycles=0)
