"""Golden parity for multi-domain ``XPRS`` sessions: the sequential
scalar resolve is the reference, and every other execution strategy —
columnar batching, sharded workers (1/2/4), the per-domain sharded file
layout — must reproduce its report bytes *and* its statistics exactly.

The multi-stack chain's dispatch stage owns inner chains, so the outer
chain must refuse columnar batching (``supports_columnar`` False) and
fall back to the scalar inner-chain walk; this file pins that fallback:
if batch resolution ever reaches the inner chains without replaying
their counters, the stats parity below breaks first.
"""

import json

import pytest

from repro.workloads.fleet import FLEET_PROFILES, fleet_workloads
from repro.xen.fleet import run_fleet

_FLEET_N = 4
_PERIOD = 20_000
_BASE_TIME = 0.1


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    return run_fleet(
        fleet_workloads(_FLEET_N, base_time_s=_BASE_TIME),
        period=_PERIOD,
        session_dir=tmp_path_factory.mktemp("fleet-parity"),
    )


@pytest.fixture(scope="module")
def reference(session):
    """The sequential scalar run: report bytes + canonical stats."""
    report, chain = session.resolve(workers=1, columnar=False)
    return {
        "table": report.format_table(limit=10_000),
        "stats": json.dumps(chain.stats_dict(), sort_keys=True),
    }


def test_outer_chain_pins_scalar_fallback(session):
    chain = session.fleet_chain()
    dispatch = chain.stage("domain-dispatch")
    assert dispatch.owns_inner_chains is True
    assert chain.supports_columnar is False
    # The inner chains stay independently cacheable and columnar-capable.
    for did in session.domain_ids:
        inner = session.domain_chain(did)
        assert inner.supports_columnar is True
        assert inner.cache is not None


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("columnar", [False, True])
def test_fleet_parity_root_stream(session, reference, workers, columnar):
    report, chain = session.resolve(workers=workers, columnar=columnar)
    assert report.format_table(limit=10_000) == reference["table"]
    assert (
        json.dumps(chain.stats_dict(), sort_keys=True) == reference["stats"]
    )


@pytest.fixture(scope="module")
def sharded_reference(session):
    """Sequential scalar run over the per-domain file layout."""
    report, chain = session.resolve(workers=1, columnar=False, sharded=True)
    return {
        "table": report.format_table(limit=10_000),
        "stats": json.dumps(chain.stats_dict(), sort_keys=True),
        "rows": _canonical_rows(report),
        "totals": dict(report.totals),
    }


def _canonical_rows(report):
    """Rows as a sorted multiset — file visit order feeds the
    aggregator's insertion order, which breaks ties in ``format_table``
    between the two layouts, so cross-layout comparison canonicalizes."""
    return sorted(
        (
            row.image,
            row.symbol,
            tuple((ev, row.count(ev)) for ev in sorted(report.events)),
        )
        for row in report.sorted_rows()
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fleet_parity_sharded_layout(session, sharded_reference, workers):
    """The per-domain layout holds the same records in the same
    per-domain order, so resolving it shards across whole domains and
    still reproduces the layout's sequential bytes and statistics."""
    report, chain = session.resolve(workers=workers, sharded=True)
    assert report.format_table(limit=10_000) == sharded_reference["table"]
    assert (
        json.dumps(chain.stats_dict(), sort_keys=True)
        == sharded_reference["stats"]
    )


def test_fleet_layouts_agree(session, reference, sharded_reference):
    """Root stream and per-domain layout resolve to the same profile:
    identical row multisets, totals, and chain statistics (per-domain
    record order is preserved by both, so even the inner caches see the
    same per-domain stream)."""
    report, chain = session.resolve(workers=1, columnar=False)
    assert _canonical_rows(report) == sharded_reference["rows"]
    assert dict(report.totals) == sharded_reference["totals"]
    assert reference["stats"] == sharded_reference["stats"]


def test_fleet_members_cycle_profiles():
    wls = fleet_workloads(len(FLEET_PROFILES) * 2, base_time_s=0.01)
    names = [w.name for w in wls]
    assert names == sorted(names)  # fleet-00, fleet-01, ... stable order
    for i, wl in enumerate(wls):
        assert FLEET_PROFILES[i % len(FLEET_PROFILES)] in wl.name
    # Deterministic in (index, seed): two builds are identical.
    again = fleet_workloads(len(FLEET_PROFILES) * 2, base_time_s=0.01)
    assert [repr(w.methods) for w in again] == [
        repr(w.methods) for w in wls
    ]
