"""Unit tests for the cross-layer call graph."""

from repro.profiling.model import Layer
from repro.viprof.callgraph import CrossLayerCallGraph, LayeredNode


def node(layer, image, symbol):
    return LayeredNode(layer=layer, image=image, symbol=symbol)


APP = node(Layer.APP_JIT, "JIT.App", "app.Main.hot")
VM = node(Layer.VM, "RVM.map", "com.ibm.jikesrvm.VM_MainThread.run")
LIBC = node(Layer.NATIVE, "libc-2.3.2.so", "memset")
APP2 = node(Layer.APP_JIT, "JIT.App", "app.Main.helper")


class TestCrossLayerCallGraph:
    def test_layers_tracked(self):
        g = CrossLayerCallGraph()
        g.record(VM, APP, "EV")
        assert g.layer_of(APP.key) is Layer.APP_JIT
        assert g.layer_of(VM.key) is Layer.VM

    def test_cross_layer_arcs_only(self):
        g = CrossLayerCallGraph()
        g.record(VM, APP, "EV")     # cross: VM -> APP
        g.record(APP, APP2, "EV")   # same layer
        g.record(APP, LIBC, "EV")   # cross: APP -> NATIVE
        arcs = g.cross_layer_arcs("EV")
        pairs = {(l_from, l_to) for _, _, l_from, l_to in arcs}
        assert (Layer.VM, Layer.APP_JIT) in pairs
        assert (Layer.APP_JIT, Layer.NATIVE) in pairs
        assert (Layer.APP_JIT, Layer.APP_JIT) not in pairs

    def test_weights_sorted(self):
        g = CrossLayerCallGraph()
        for _ in range(5):
            g.record(APP, LIBC, "EV")
        g.record(VM, APP, "EV")
        arcs = g.cross_layer_arcs("EV")
        assert arcs[0][1] == 5

    def test_transition_matrix(self):
        g = CrossLayerCallGraph()
        g.record(VM, APP, "EV")
        g.record(VM, APP, "EV")
        g.record(APP, LIBC, "EV")
        m = g.layer_transition_matrix("EV")
        assert m[(Layer.VM, Layer.APP_JIT)] == 2
        assert m[(Layer.APP_JIT, Layer.NATIVE)] == 1

    def test_root_samples_have_no_arc(self):
        g = CrossLayerCallGraph()
        g.record(None, APP, "EV")
        assert g.cross_layer_arcs("EV") == []
        assert g.recorder.self_samples[APP.key]["EV"] == 1

    def test_format_table(self):
        g = CrossLayerCallGraph()
        g.record(APP, LIBC, "EV")
        txt = g.format_cross_layer_table("EV")
        assert "app-jit:app.Main.hot -> native:memset" in txt
